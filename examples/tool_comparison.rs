//! Run every comparison tool (plain notebook, Lux, Count, Hex, PI2) on a
//! scenario of your choice and print what each produces — Table 1, live.
//!
//! ```sh
//! cargo run --release -p pi2-bench --example tool_comparison [covid|sdss|sp500]
//! ```

use pi2_baselines::{all_tools, expresses_log};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "sdss".to_string());
    let scenario = pi2_datasets::demo_scenarios()
        .into_iter()
        .find(|s| s.name == wanted)
        .unwrap_or_else(|| {
            eprintln!("unknown scenario '{wanted}', expected covid|sdss|sp500");
            std::process::exit(2);
        });

    println!("scenario: {} ({} queries)\n", scenario.name, scenario.queries.len());
    for q in &scenario.queries {
        println!("  {q}");
    }
    println!();

    for tool in all_tools() {
        match tool.generate(&scenario.queries, &scenario.catalog) {
            Ok(o) => {
                let s = o.interface.feature_summary();
                println!(
                    "{:<13} {} chart(s) + {} table(s), {} widget(s), {} viz interaction(s); \
                     manual steps {}; expresses whole log: {}",
                    o.tool,
                    s.charts,
                    s.tables,
                    s.widgets,
                    s.viz_interactions,
                    o.manual_steps,
                    if expresses_log(&o, &scenario.queries) { "yes" } else { "NO" },
                );
                for n in &o.notes {
                    println!("{:<13}   ({n})", "");
                }
                for w in &o.interface.widgets {
                    println!("{:<13}   widget: {}", "", pi2_render::render_widget(w));
                }
            }
            Err(e) => println!("{:<13} failed: {e}", tool.name()),
        }
        println!();
    }
}
