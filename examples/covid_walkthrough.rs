//! The paper's §3.2 use case, replayed interactively: Jane analyzes a
//! COVID-19 dataset in a notebook, generating interface versions V1–V3.
//! Also exports each version as a standalone HTML file under `target/`.
//!
//! ```sh
//! cargo run --release -p pi2-bench --example covid_walkthrough
//! ```

use pi2_core::prelude::*;
use pi2_notebook::Notebook;

fn main() {
    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    let pi2 = Pi2::builder(catalog)
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: 80,
            rollout_depth: 3,
            seed: 7,
            ..Default::default()
        }))
        .build();
    let mut nb = Notebook::with_pi2(pi2);

    let demo = pi2_datasets::covid::demo_queries();

    println!("=== Step 1: overview, then two half-month detail windows ===");
    for q in &demo[..3] {
        let id = nb.add_cell(q.to_string());
        let rows = nb.run_cell(id).expect("cell executes").len();
        println!("In[{}] ({rows} rows): {q}", id + 1);
    }
    let v1 = nb.generate_interface().expect("V1 generates");
    show_version(&nb, v1);

    // Brush the overview; the detail view follows.
    let mut session = nb.open_session(v1).expect("session opens");
    if let Some(chart) =
        session.interface().charts.iter().find(|c| !c.interactions.is_empty()).map(|c| c.id)
    {
        let lo = Date::parse("2021-12-20").expect("valid date").0 as f64;
        let hi = Date::parse("2021-12-28").expect("valid date").0 as f64;
        let updates = session.dispatch(Event::Brush { chart, low: lo, high: hi }).expect("brush");
        println!("brushed G{} over 2021-12-20..28; updated charts:", chart + 1);
        for u in &updates {
            println!("  G{} → {}", u.chart + 1, u.query);
        }
    }

    println!("\n=== Step 2: drill down to state level ===");
    let id = nb.add_cell(demo[3].to_string());
    nb.run_cell(id).expect("cell executes");
    let v2 = nb.generate_interface().expect("V2 generates");
    show_version(&nb, v2);

    println!("\n=== Step 3: focused region investigation ===");
    for q in &demo[4..6] {
        let id = nb.add_cell(q.to_string());
        nb.run_cell(id).expect("cell executes");
    }
    let v3 = nb.generate_interface().expect("V3 generates");
    show_version(&nb, v3);

    // Render V3 and export every version as HTML.
    let session = nb.open_session(v3).expect("session opens");
    let updates = session.refresh_all().expect("refresh");
    println!("{}", pi2_render::AsciiRenderer.render(session.interface(), &updates));

    std::fs::create_dir_all("target/pi2-exports").expect("create export dir");
    for v in nb.versions() {
        let session = nb.open_session(v.number).expect("session opens");
        let updates = session.refresh_all().expect("refresh");
        let html = pi2_render::export_html(
            &format!("PI2 COVID-19 walkthrough — {}", v.label()),
            &v.generated.interface,
            &updates,
            &v.query_log,
        );
        let path = format!("target/pi2-exports/covid_{}.html", v.label().to_lowercase());
        std::fs::write(&path, html).expect("write export");
        println!("exported {path}");
    }
}

fn show_version(nb: &Notebook, number: usize) {
    let v = nb.version(number).expect("version exists");
    println!(
        "{} generated in {:?}: {} charts, {} widgets, {} viz interactions (cost {:.3})",
        v.label(),
        v.generated.stats.elapsed,
        v.generated.interface.charts.len(),
        v.generated.interface.widgets.len(),
        v.generated.interface.interaction_count(),
        v.generated.cost.total,
    );
}
