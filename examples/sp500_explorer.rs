//! S&P 500 exploration: a log of ticker/sector analyses becomes one
//! interface; the emitted Vega-Lite-style JSON spec is printed (the shape a
//! browser front end would consume).
//!
//! ```sh
//! cargo run --release -p pi2-bench --example sp500_explorer
//! ```

use pi2_core::prelude::*;

fn main() {
    let catalog = pi2_datasets::sp500::catalog(&pi2_datasets::sp500::Config::default());
    let queries = pi2_datasets::sp500::demo_queries();
    println!("query log ({} queries):", queries.len());
    for q in &queries {
        println!("  {q}");
    }

    let pi2 = Pi2::builder(catalog).build();
    let generated = pi2.generate(&queries).expect("generation succeeds");
    println!(
        "\ninterface: {} charts / {} widgets / {} viz interactions (cost {:.3}, {:?})\n",
        generated.interface.charts.len(),
        generated.interface.widgets.len(),
        generated.interface.interaction_count(),
        generated.cost.total,
        generated.stats.elapsed,
    );

    let mut session = pi2.session(&generated);
    let updates = session.refresh_all().expect("refresh");
    println!("{}", pi2_render::AsciiRenderer.render(&generated.interface, &updates));

    // Switch the ticker if a discrete widget came out of the ANY/hole over
    // 'AAPL' / 'MSFT'.
    let widgets = generated.interface.widgets.clone();
    for w in &widgets {
        let options = match &w.kind {
            pi2_interface::WidgetKind::Radio { options }
            | pi2_interface::WidgetKind::ButtonGroup { options }
            | pi2_interface::WidgetKind::Dropdown { options }
            | pi2_interface::WidgetKind::Tabs { options } => options.clone(),
            _ => continue,
        };
        if let Some(idx) = options.iter().position(|o| o.contains("MSFT")) {
            let updates = session
                .dispatch(Event::SetWidget { widget: w.id, value: WidgetValue::Pick(idx) })
                .expect("widget dispatch");
            println!("picked '{}' on widget '{}':", options[idx], w.label);
            for u in &updates {
                println!("  chart {} → {}", u.chart, u.query);
            }
            break;
        }
    }

    // Emit the interface spec (truncated for the console).
    let updates = session.refresh_all().expect("refresh");
    let spec = pi2_render::SpecRenderer.render(session.interface(), &updates);
    let text = serde_json::to_string_pretty(&spec).expect("serializes");
    let lines: Vec<&str> = text.lines().collect();
    println!("\ninterface spec (first 40 of {} lines):", lines.len());
    for l in lines.iter().take(40) {
        println!("{l}");
    }
}
