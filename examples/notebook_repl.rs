//! An interactive terminal notebook: write SQL cells, select them, generate
//! interfaces, and drive the generated interfaces — the complete demo loop
//! of paper §3, in a REPL.
//!
//! ```sh
//! cargo run --release -p pi2-bench --example notebook_repl [covid|sdss|sp500|toy]
//! ```
//!
//! Commands:
//! ```text
//! <SQL>                 add a cell and run it
//! :cells                list cells with selection checkboxes
//! :select N on|off      set cell N's checkbox
//! :generate             the Generate Interface button
//! :versions             the Generated Interfaces panel
//! :show [V]             render version V (default: latest) with live data
//! :brush V C LO HI      brush chart C of version V (dates as YYYY-MM-DD)
//! :pan V C DX DY        pan chart C
//! :zoom V C FACTOR      zoom chart C
//! :widget V W VALUE     operate widget W (index, on/off, or number)
//! :log V                show version V's archived query log
//! :help                 this text
//! :quit
//! ```
//!
//! When stdin is not a terminal the REPL consumes a scripted session, so it
//! is pipeable: `echo ':help' | cargo run … --example notebook_repl`.

use pi2_core::prelude::*;
use pi2_notebook::Notebook;
use std::collections::HashMap;
use std::io::{BufRead, Write};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "covid".to_string());
    let catalog = match which.as_str() {
        "covid" => pi2_datasets::covid::catalog(&Default::default()),
        "sdss" => pi2_datasets::sdss::catalog(&Default::default()),
        "sp500" => pi2_datasets::sp500::catalog(&Default::default()),
        "toy" => pi2_datasets::toy::default_catalog(),
        other => {
            eprintln!("unknown dataset '{other}' (covid|sdss|sp500|toy)");
            std::process::exit(2);
        }
    };
    println!("PI2 notebook over '{which}' — tables: {}", catalog.table_names().join(", "));
    println!("type SQL, or :help for commands\n");

    let mut nb = Notebook::new(catalog);
    // Live sessions per generated version.
    let mut sessions: HashMap<usize, InterfaceSession> = HashMap::new();
    let _ = &mut sessions;

    let stdin = std::io::stdin();
    loop {
        print!("pi2> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            if !run_command(cmd, &mut nb, &mut sessions) {
                break;
            }
        } else {
            let id = nb.add_cell(line);
            match nb.run_cell(id) {
                Ok(result) => {
                    let mut capped = result.clone();
                    capped.rows.truncate(8);
                    println!("{}", capped.to_ascii_table());
                    if result.len() > 8 {
                        println!("… {} more rows", result.len() - 8);
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
    }
}

/// Returns false to quit.
fn run_command(
    cmd: &str,
    nb: &mut Notebook,
    sessions: &mut HashMap<usize, InterfaceSession>,
) -> bool {
    let parts: Vec<&str> = cmd.split_whitespace().collect();
    match parts.first().copied() {
        Some("quit") | Some("q") => return false,
        Some("help") => println!(
            ":cells | :select N on|off | :generate | :versions | :show [V] | \
             :brush V C LO HI | :pan V C DX DY | :zoom V C F | :widget V W VALUE | :log V | :quit"
        ),
        Some("cells") => {
            for c in nb.cells() {
                println!(
                    "[{}] In[{}] {}",
                    if c.selected { "x" } else { " " },
                    c.id + 1,
                    c.source.chars().take(90).collect::<String>()
                );
            }
        }
        Some("select") => {
            let (Some(n), Some(flag)) = (parts.get(1), parts.get(2)) else {
                println!("usage: :select N on|off");
                return true;
            };
            let id: usize = match n.parse::<usize>() {
                Ok(v) if v >= 1 => v - 1,
                _ => {
                    println!("bad cell number");
                    return true;
                }
            };
            match nb.set_selected(id, *flag == "on") {
                Ok(()) => println!("cell {n} {}", flag),
                Err(e) => println!("error: {e}"),
            }
        }
        Some("generate") => match nb.generate_interface() {
            Ok(v) => {
                let version = nb.version(v).expect("just generated");
                println!(
                    "generated {} in {:?}: {} charts, {} widgets, {} viz interactions",
                    version.label(),
                    version.generated.stats.elapsed,
                    version.generated.interface.charts.len(),
                    version.generated.interface.widgets.len(),
                    version.generated.interface.interaction_count(),
                );
                sessions.insert(v, nb.open_session(v).expect("session opens"));
            }
            Err(e) => println!("error: {e}"),
        },
        Some("versions") => {
            for v in nb.versions() {
                println!(
                    "{}: {} charts / {} widgets / {} interactions — log of {}",
                    v.label(),
                    v.generated.interface.charts.len(),
                    v.generated.interface.widgets.len(),
                    v.generated.interface.interaction_count(),
                    v.query_log.len()
                );
            }
        }
        Some("log") => {
            let v = parse_version(&parts, 1, nb);
            match nb.version(v) {
                Ok(version) => {
                    for (i, q) in version.query_log.iter().enumerate() {
                        match pi2_sql::parse_query(q) {
                            Ok(parsed) => {
                                println!("  Q{}:", i + 1);
                                for line in pi2_sql::format_query(&parsed, 2).lines() {
                                    println!("    {line}");
                                }
                            }
                            Err(_) => println!("  Q{}: {q}", i + 1),
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
        Some("show") => {
            let v = parse_version(&parts, 1, nb);
            match sessions.get(&v) {
                Some(session) => match pi2_render::AsciiRenderer.render_live(session) {
                    Ok(text) => println!("{text}"),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("no such version (generate first)"),
            }
        }
        Some("brush") | Some("pan") | Some("zoom") | Some("widget") => {
            dispatch_event(parts, nb, sessions);
        }
        _ => println!("unknown command; :help"),
    }
    true
}

fn parse_version(parts: &[&str], idx: usize, nb: &Notebook) -> usize {
    parts
        .get(idx)
        .and_then(|s| s.trim_start_matches(['v', 'V']).parse().ok())
        .unwrap_or_else(|| nb.versions().len())
}

fn num(parts: &[&str], idx: usize) -> Option<f64> {
    let raw = parts.get(idx)?;
    if let Ok(v) = raw.parse::<f64>() {
        return Some(v);
    }
    pi2_sql::Date::parse(raw).map(|d| d.0 as f64)
}

fn dispatch_event(
    parts: Vec<&str>,
    nb: &mut Notebook,
    sessions: &mut HashMap<usize, InterfaceSession>,
) {
    let v = parse_version(&parts, 1, nb);
    let Some(session) = sessions.get_mut(&v) else {
        println!("no such version (generate first)");
        return;
    };
    let chart_or_widget = parts.get(2).and_then(|s| s.parse::<usize>().ok()).unwrap_or(0);
    let event = match parts[0] {
        "brush" => match (num(&parts, 3), num(&parts, 4)) {
            (Some(low), Some(high)) => Event::Brush { chart: chart_or_widget, low, high },
            _ => {
                println!("usage: :brush V C LO HI");
                return;
            }
        },
        "pan" => Event::Pan {
            chart: chart_or_widget,
            dx: num(&parts, 3).unwrap_or(0.0),
            dy: num(&parts, 4).unwrap_or(0.0),
        },
        "zoom" => Event::Zoom { chart: chart_or_widget, factor: num(&parts, 3).unwrap_or(0.5) },
        "widget" => {
            let raw = parts.get(3).copied().unwrap_or("0");
            // Interpret the value according to the widget's kind.
            let kind = session
                .interface()
                .widgets
                .iter()
                .find(|w| w.id == chart_or_widget)
                .map(|w| w.kind.clone());
            let value = match (raw, &kind) {
                ("on", _) => WidgetValue::Bool(true),
                ("off", _) => WidgetValue::Bool(false),
                (_, Some(pi2_interface::WidgetKind::Slider { .. })) => match num(&parts, 3) {
                    Some(f) => WidgetValue::Scalar(f),
                    None => {
                        println!("usage: :widget V W <number|date>");
                        return;
                    }
                },
                (_, Some(pi2_interface::WidgetKind::RangeSlider { .. })) => {
                    match (num(&parts, 3), num(&parts, 4)) {
                        (Some(lo), Some(hi)) => WidgetValue::Range(lo, hi),
                        _ => {
                            println!("usage: :widget V W LO HI");
                            return;
                        }
                    }
                }
                (s, _) => match s.parse::<usize>() {
                    Ok(i) => WidgetValue::Pick(i),
                    Err(_) => {
                        println!("usage: :widget V W <index|on|off|number>");
                        return;
                    }
                },
            };
            Event::SetWidget { widget: chart_or_widget, value }
        }
        _ => unreachable!("guarded by caller"),
    };
    match session.dispatch(event) {
        Ok(updates) => {
            for u in &updates {
                println!("G{} → {} ({} rows)", u.chart + 1, u.query, u.result.len());
            }
        }
        Err(e) => println!("error: {e}"),
    }
}
