//! Figure 1(c) live: two SDSS region queries become one scatter plot with
//! 2-D pan/zoom; dragging and scrolling rewrites the ra/dec ranges.
//!
//! ```sh
//! cargo run --release -p pi2-bench --example sdss_panzoom
//! ```

use pi2_core::prelude::*;

fn main() {
    let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
    let queries = pi2_datasets::sdss::demo_queries();
    println!("query log:");
    for q in &queries {
        println!("  {q}");
    }

    let pi2 = Pi2::builder(catalog).build();
    let generated = pi2.generate(&queries).expect("generation succeeds");
    println!(
        "\nPI2 produced {} chart(s) with {} in-visualization interaction(s) and {} widget(s)\n",
        generated.interface.charts.len(),
        generated.interface.interaction_count(),
        generated.interface.widgets.len(),
    );

    let mut session = pi2.session(&generated);
    let updates = session.refresh_all().expect("refresh");
    println!("{}", pi2_render::AsciiRenderer.render(&generated.interface, &updates));

    // Simulate the user's exploration: pan east, zoom out, zoom back in.
    let gestures = [
        ("pan east by 1.5°", Event::Pan { chart: 0, dx: 1.5, dy: 0.0 }),
        ("pan north by 0.8°", Event::Pan { chart: 0, dx: 0.0, dy: 0.8 }),
        ("zoom out 2×", Event::Zoom { chart: 0, factor: 2.0 }),
        ("zoom in 4×", Event::Zoom { chart: 0, factor: 0.25 }),
    ];
    for (label, event) in gestures {
        let updates = session.dispatch(event).expect("gesture dispatch");
        let u = &updates[0];
        println!("{label}:");
        println!("  SQL  → {}", u.query);
        println!("  rows → {}", u.result.len());
    }

    // The final view, rendered.
    let updates = session.refresh_all().expect("refresh");
    println!("\nfinal view:\n{}", pi2_render::AsciiRenderer.render(&generated.interface, &updates));
}
