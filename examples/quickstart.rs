//! Quickstart: generate an interactive interface from two similar queries
//! and drive it.
//!
//! ```sh
//! cargo run --release -p pi2-bench --example quickstart
//! ```

use pi2_core::prelude::*;

fn main() {
    // 1. A catalog: the toy table t(p, a, b) from the paper's §2 example.
    let catalog = pi2_datasets::toy::default_catalog();

    // 2. The analyst's query log: two queries that differ in one literal.
    let log = [
        "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
        "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    ];
    println!("query log:");
    for q in &log {
        println!("  {q}");
    }

    // 3. Generate: PI2 merges the queries into a DiffTree, maps the choice
    //    nodes to interactions, and returns the lowest-cost interface.
    let pi2 = Pi2::builder(catalog).build();
    let generated = pi2.generate_sql(&log).expect("generation succeeds");
    println!(
        "\ngenerated in {:?}: {} chart(s), {} widget(s), {} viz interaction(s), cost {:.3}",
        generated.stats.elapsed,
        generated.interface.charts.len(),
        generated.interface.widgets.len(),
        generated.interface.interaction_count(),
        generated.cost.total,
    );

    // 4. Render the initial state.
    let mut session = generated.session(pi2.catalog());
    let updates = session.refresh_all().expect("executes");
    println!("\n{}", pi2_render::AsciiRenderer.render(&generated.interface, &updates));

    // 5. Interact: operate the first widget (or chart interaction) and
    //    watch the SQL change underneath.
    if let Some(w) = generated.interface.widgets.first() {
        let value = match &w.kind {
            pi2_interface::WidgetKind::Slider { max, .. } => WidgetValue::Scalar(*max),
            pi2_interface::WidgetKind::Toggle => WidgetValue::Bool(false),
            _ => WidgetValue::Pick(1),
        };
        let updates =
            session.dispatch(Event::SetWidget { widget: w.id, value }).expect("dispatch succeeds");
        for u in &updates {
            println!("after operating '{}', chart {} runs:\n  {}", w.label, u.chart, u.query);
        }
    } else if generated.interface.interaction_count() > 0 {
        let updates = session.dispatch(Event::Click { chart: 0, value: pi2_sql::Literal::Int(3) });
        if let Ok(updates) = updates {
            for u in &updates {
                println!("after clicking, chart {} runs:\n  {}", u.chart, u.query);
            }
        }
    }
}
