#!/usr/bin/env bash
# Local CI: the same gates the GitHub Actions workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo build --examples =="
cargo build --workspace --examples

echo "== cargo test =="
cargo test --workspace -q

echo "== conformance smoke (fixed seed, bounded budget) =="
cargo run -q -p pi2-conformance --release -- --seed 7 --runs 50 --budget-secs 60 --no-save --quiet

echo "== fault-injection smoke (each fault class once, bounded) =="
for fault in worker-panic deadline-search deadline-map exec-overrun \
             journal-torn-write checkpoint-crash recovery-fsync; do
    cargo run -q -p pi2-conformance --release -- \
        --fault "$fault" --seed 7 --runs 5 --budget-secs 30 --no-save --quiet
done

echo "== server smoke (open/run/generate/gesture/render over real TCP) =="
cargo run -q --release -p pi2-server -- --smoke --scenario sdss

echo "== recovery smoke (journaled server killed -9, restarted, resumed) =="
cargo run -q --release -p pi2-server -- --recovery-smoke

echo "== reactor soak smoke (1k-session churn over TCP, release) =="
PI2_SOAK_SESSIONS=1000 cargo test -q --release -p pi2-server --test soak

echo "== benchmark artifacts (regen + schema check) =="
cargo run -q --release -p pi2-bench --bin regen_latency > /dev/null
# The interaction regen includes the latency-vs-data-size sweep at a
# reduced 1M-row top size by default; set PI2_BENCH_SCALE=10000000 for
# the full 10M-row run. bench_check enforces the sweep's sub-linearity
# gate (top-size warm pan p50 <= 10x the mid-size p50).
PI2_BENCH_SCALE="${PI2_BENCH_SCALE:-1000000}" \
    cargo run -q --release -p pi2-bench --bin regen_interaction > /dev/null
cargo run -q --release -p pi2-bench --bin regen_server > /dev/null
cargo run -q --release -p pi2-bench --bin regen_fleet > /dev/null
# The load storm sustains >= 1k live sessions over the reactor;
# bench_check enforces its headline (storm p99 <= 20x single-session p99).
cargo run -q --release -p pi2-bench --bin regen_load > /dev/null
# The recovery storm kills 1k journaled sessions mid-storm; bench_check
# enforces 100% byte-identical resumes, the 2s resume p99 budget, and
# zero leakage of closed sessions through recovery.
cargo run -q --release -p pi2-bench --bin regen_recovery > /dev/null
# The render storm drives the SDSS gesture cycle through the retained
# scene graph; bench_check enforces the streaming headline (delta frame
# bytes <= 25% of a full-spec re-render at p50).
cargo run -q --release -p pi2-bench --bin regen_render > /dev/null
cargo run -q --release -p pi2-bench --bin bench_check

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

# pi2-core denies clippy::unwrap_used in non-test code at the crate level
# (see crates/core/src/lib.rs); this run checks it without the `faults`
# feature that the workspace-wide run unifies on. The fleet module
# (crates/core/src/fleet.rs) — shared generation cache, single-flight
# table, admission limiter — is covered by this same gate: its lock
# handling must never unwrap in non-test code.
echo "== cargo clippy pi2-core (no unwrap in non-test code, no faults) =="
cargo clippy -p pi2-core --all-targets -- -D warnings

# pi2-server likewise denies clippy::unwrap_used in non-test code
# (see crates/server/src/lib.rs).
echo "== cargo clippy pi2-server (no unwrap in non-test code) =="
cargo clippy -p pi2-server --all-targets -- -D warnings

# pi2-render likewise denies clippy::unwrap_used in non-test code
# (see crates/render/src/lib.rs): the scene codec and the renderer
# backends surface malformed frames as errors, never panics.
echo "== cargo clippy pi2-render (no unwrap in non-test code) =="
cargo clippy -p pi2-render --all-targets -- -D warnings

echo "CI OK"
