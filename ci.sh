#!/usr/bin/env bash
# Local CI: the same gates the GitHub Actions workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo build --examples =="
cargo build --workspace --examples

echo "== cargo test =="
cargo test --workspace -q

echo "== conformance smoke (fixed seed, bounded budget) =="
cargo run -q -p pi2-conformance --release -- --seed 7 --runs 50 --budget-secs 60 --no-save --quiet

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
