#!/usr/bin/env bash
# Local CI: the same gates the GitHub Actions workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
