//! The DiffTree node model.
//!
//! A [`DiffNode`] is a labeled ordered tree. Structural labels mirror the
//! SQL AST one-to-one (so that any query lifts losslessly); the three
//! choice labels — `Any`, `Opt`, `Hole` — encode variation. Every node
//! carries a [`NodeId`] so interactions can bind to choice nodes stably.

use pi2_sql::{BinaryOp, ColumnRef, Date, JoinKind, Literal, SortDir, UnaryOp, F64};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifier of a node within one [`DiffTree`].
pub type NodeId = u32;

/// The domain of a value [`NodeKind::Hole`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// An explicit list of alternatives (the literals observed in the log,
    /// or a column's full distinct-value list after generalization).
    Discrete(Vec<Literal>),
    /// A continuous integer range, inclusive.
    IntRange {
        /// Minimum value.
        min: i64,
        /// Maximum value.
        max: i64,
    },
    /// A continuous float range, inclusive.
    FloatRange {
        /// Minimum value.
        min: F64,
        /// Maximum value.
        max: F64,
    },
    /// A continuous date range, inclusive.
    DateRange {
        /// Minimum value.
        min: Date,
        /// Maximum value.
        max: Date,
    },
}

impl Domain {
    /// Does `lit` fall inside this domain?
    pub fn contains(&self, lit: &Literal) -> bool {
        match (self, lit) {
            (Domain::Discrete(items), l) => items.contains(l),
            (Domain::IntRange { min, max }, Literal::Int(v)) => v >= min && v <= max,
            (Domain::FloatRange { min, max }, Literal::Float(v)) => v >= min && v <= max,
            (Domain::FloatRange { min, max }, Literal::Int(v)) => {
                let f = F64(*v as f64);
                f >= *min && f <= *max
            }
            (Domain::DateRange { min, max }, Literal::Date(d)) => d >= min && d <= max,
            _ => false,
        }
    }

    /// True for the continuous range variants.
    pub fn is_continuous(&self) -> bool {
        !matches!(self, Domain::Discrete(_))
    }

    /// Number of alternatives for a discrete domain.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Discrete(items) => Some(items.len()),
            Domain::IntRange { min, max } => Some((max - min + 1).max(0) as usize),
            Domain::DateRange { min, max } => Some((max.0 - min.0 + 1).max(0) as usize),
            Domain::FloatRange { .. } => None,
        }
    }
}

/// The label of a [`DiffNode`].
///
/// Structural variants mirror [`pi2_sql`]'s AST; the final three are the
/// choice nodes. Variable-length constructs (projection lists, conjunct
/// lists, CASE branches) get explicit wrapper labels so that lowering is
/// unambiguous and merging can align their children.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    // ---- query structure ----
    /// Root of a SELECT query. Children: Projection, From, Where, GroupBy,
    /// Having, OrderBy, LimitSlot, OffsetSlot — always all eight, in order.
    Query {
        /// `DISTINCT` flag.
        distinct: bool,
    },
    /// Children: SelectItem / Wildcard / QualifiedWildcard nodes.
    Projection,
    /// One projection item; child: the expression.
    SelectItem {
        /// Optional alias.
        alias: Option<String>,
    },
    /// `*` as a projection item or `count(*)` argument.
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// Children: table references (comma list).
    From,
    /// A named base table (leaf).
    TableNamed {
        /// The name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A derived table; child: Query.
    TableSubquery {
        /// Optional alias.
        alias: String,
    },
    /// A join; children: left, right, On.
    Join {
        /// The kind.
        kind: JoinKind,
    },
    /// Join condition wrapper; zero children (cross) or the conjuncts.
    On,
    /// WHERE wrapper; children: the top-level conjuncts (possibly none).
    Where,
    /// Children: grouping expressions.
    GroupBy,
    /// HAVING wrapper; children: conjuncts.
    Having,
    /// Children: OrderItem nodes.
    OrderBy,
    /// One ORDER BY term; child: the expression.
    OrderItem {
        /// Sort direction.
        dir: SortDir,
    },
    /// LIMIT wrapper; zero children or one Limit leaf.
    LimitSlot,
    /// The LIMIT value (leaf).
    Limit(u64),
    /// OFFSET wrapper; zero children or one Offset leaf.
    OffsetSlot,
    /// The OFFSET value (leaf).
    Offset(u64),

    // ---- expressions ----
    /// Column.
    Column(ColumnRef),
    /// Lit.
    Lit(Literal),
    /// Unary.
    Unary(UnaryOp),
    /// Binary.
    Binary(BinaryOp),
    /// Children: argument expressions.
    Function {
        /// The name.
        name: String,
        /// `DISTINCT` flag.
        distinct: bool,
    },
    /// Children: CaseOperand, CaseBranches, CaseElse.
    Case,
    /// Zero or one child.
    CaseOperand,
    /// Children: CaseBranch nodes.
    CaseBranches,
    /// Children: when-expression, then-expression.
    CaseBranch,
    /// Zero or one child.
    CaseElse,
    /// Children: probe expression, then the list items.
    InList {
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Children: probe expression, Query.
    InSubquery {
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Child: Query.
    Exists {
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Children: expr, low, high.
    Between {
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Child: Query.
    ScalarSubquery,
    /// Child: expr.
    IsNull {
        /// True for the `NOT` form.
        negated: bool,
    },
    /// Children: expr, pattern.
    Like {
        /// True for the `NOT` form.
        negated: bool,
    },

    // ---- choice nodes ----
    /// Choose exactly one child.
    Any,
    /// Include the single child, or not.
    Opt,
    /// A typed value hole (leaf). `source_column` is the column the value
    /// is compared against, when that is syntactically evident — it powers
    /// visualization-interaction matching (click/brush on a chart whose
    /// axis shows that column).
    Hole {
        /// The value domain.
        domain: Domain,
        /// Default value when unbound.
        default: Literal,
        /// Column the value constrains, when known.
        source_column: Option<ColumnRef>,
    },
}

impl NodeKind {
    /// Is this one of the three choice labels?
    pub fn is_choice(&self) -> bool {
        matches!(self, NodeKind::Any | NodeKind::Opt | NodeKind::Hole { .. })
    }

    /// Can nodes of this kind have a variable number of children (list
    /// semantics), as opposed to fixed arity?
    pub fn is_list(&self) -> bool {
        matches!(
            self,
            NodeKind::Projection
                | NodeKind::From
                | NodeKind::Where
                | NodeKind::GroupBy
                | NodeKind::Having
                | NodeKind::OrderBy
                | NodeKind::On
                | NodeKind::CaseBranches
                | NodeKind::InList { .. }
                | NodeKind::Function { .. }
                | NodeKind::LimitSlot
                | NodeKind::OffsetSlot
                | NodeKind::CaseOperand
                | NodeKind::CaseElse
                | NodeKind::Any
        )
    }
}

/// A node of a DiffTree: a label, ordered children, and a stable id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffNode {
    /// The kind.
    pub kind: NodeKind,
    /// Children.
    pub children: Vec<DiffNode>,
    /// Stable identifier.
    pub id: NodeId,
}

impl DiffNode {
    /// A leaf with id 0 (ids are assigned by [`DiffTree::renumber`]).
    pub fn leaf(kind: NodeKind) -> Self {
        DiffNode { kind, children: Vec::new(), id: 0 }
    }

    /// An internal node with id 0.
    pub fn new(kind: NodeKind, children: Vec<DiffNode>) -> Self {
        DiffNode { kind, children, id: 0 }
    }

    /// Structural hash ignoring ids.
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into(&self, h: &mut DefaultHasher) {
        self.kind.hash(h);
        self.children.len().hash(h);
        for c in &self.children {
            c.hash_into(h);
        }
    }

    /// Hash of the tree's *shape*: like [`DiffNode::structural_hash`] but
    /// with literal values and hole domains erased. Two queries that differ
    /// only in constants have equal shape hashes — the "many similar static
    /// visualizations" the paper's walkthrough complains about.
    pub fn shape_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.shape_into(&mut h);
        h.finish()
    }

    fn shape_into(&self, h: &mut DefaultHasher) {
        match &self.kind {
            NodeKind::Lit(l) => {
                "lit".hash(h);
                std::mem::discriminant(l).hash(h);
            }
            NodeKind::Hole { .. } => "hole".hash(h),
            other => other.hash(h),
        }
        self.children.len().hash(h);
        for c in &self.children {
            c.shape_into(h);
        }
    }

    /// Number of choice nodes nested beneath another choice node. Such
    /// controls are conditionally dead (e.g. holes inside an excluded OPT),
    /// which the cost model penalizes.
    pub fn nested_choice_count(&self) -> usize {
        fn go(n: &DiffNode, under_choice: bool) -> usize {
            let mut count = 0;
            if n.kind.is_choice() && under_choice {
                count += 1;
            }
            let next_under = under_choice || n.kind.is_choice();
            count + n.children.iter().map(|c| go(c, next_under)).sum::<usize>()
        }
        go(self, false)
    }

    /// Structural equality ignoring ids.
    pub fn structurally_eq(&self, other: &DiffNode) -> bool {
        self.kind == other.kind
            && self.children.len() == other.children.len()
            && self.children.iter().zip(&other.children).all(|(a, b)| a.structurally_eq(b))
    }

    /// Total number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(DiffNode::size).sum::<usize>()
    }

    /// Number of choice nodes in the subtree.
    pub fn choice_count(&self) -> usize {
        (self.kind.is_choice() as usize)
            + self.children.iter().map(DiffNode::choice_count).sum::<usize>()
    }

    /// Depth-first pre-order visit.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a DiffNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Find a node by id.
    pub fn find(&self, id: NodeId) -> Option<&DiffNode> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(id))
    }

    /// Find a node by id, mutably.
    pub fn find_mut(&mut self, id: NodeId) -> Option<&mut DiffNode> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter_mut().find_map(|c| c.find_mut(id))
    }

    /// A short human-readable summary of the subtree, used as widget option
    /// labels (e.g. the two radio entries `a = 1` / `b = 2` in Figure 3a).
    pub fn summary(&self) -> String {
        match &self.kind {
            NodeKind::Column(c) => c.to_string(),
            NodeKind::Lit(l) => l.to_string(),
            NodeKind::Wildcard => "*".into(),
            NodeKind::QualifiedWildcard(t) => format!("{t}.*"),
            NodeKind::Hole { default, .. } => format!("?{default}"),
            NodeKind::Any => {
                let opts: Vec<String> = self.children.iter().map(|c| c.summary()).collect();
                format!("⟨{}⟩", opts.join(" | "))
            }
            NodeKind::Opt => {
                format!("[{}]", self.children.first().map(|c| c.summary()).unwrap_or_default())
            }
            NodeKind::Unary(UnaryOp::Not) => {
                format!("NOT {}", self.children.first().map(|c| c.summary()).unwrap_or_default())
            }
            NodeKind::Unary(UnaryOp::Neg) => {
                format!("-{}", self.children.first().map(|c| c.summary()).unwrap_or_default())
            }
            NodeKind::Binary(op) => {
                let l = self.children.first().map(|c| c.summary()).unwrap_or_default();
                let r = self.children.get(1).map(|c| c.summary()).unwrap_or_default();
                format!("{l} {} {r}", op.sql())
            }
            NodeKind::Function { name, distinct } => {
                let args: Vec<String> = self.children.iter().map(|c| c.summary()).collect();
                format!("{name}({}{})", if *distinct { "DISTINCT " } else { "" }, args.join(", "))
            }
            NodeKind::Between { negated } => {
                let e = self.children.first().map(|c| c.summary()).unwrap_or_default();
                let lo = self.children.get(1).map(|c| c.summary()).unwrap_or_default();
                let hi = self.children.get(2).map(|c| c.summary()).unwrap_or_default();
                format!("{e} {}BETWEEN {lo} AND {hi}", if *negated { "NOT " } else { "" })
            }
            NodeKind::InList { negated } => {
                let e = self.children.first().map(|c| c.summary()).unwrap_or_default();
                let items: Vec<String> =
                    self.children.iter().skip(1).map(|c| c.summary()).collect();
                format!("{e} {}IN ({})", if *negated { "NOT " } else { "" }, items.join(", "))
            }
            NodeKind::InSubquery { negated } => {
                let e = self.children.first().map(|c| c.summary()).unwrap_or_default();
                format!("{e} {}IN (…)", if *negated { "NOT " } else { "" })
            }
            NodeKind::Exists { negated } => {
                format!("{}EXISTS (…)", if *negated { "NOT " } else { "" })
            }
            NodeKind::IsNull { negated } => {
                let e = self.children.first().map(|c| c.summary()).unwrap_or_default();
                format!("{e} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            NodeKind::Like { negated } => {
                let e = self.children.first().map(|c| c.summary()).unwrap_or_default();
                let p = self.children.get(1).map(|c| c.summary()).unwrap_or_default();
                format!("{e} {}LIKE {p}", if *negated { "NOT " } else { "" })
            }
            NodeKind::SelectItem { alias } => {
                let e = self.children.first().map(|c| c.summary()).unwrap_or_default();
                match alias {
                    Some(a) => format!("{e} AS {a}"),
                    None => e,
                }
            }
            NodeKind::TableNamed { name, alias } => match alias {
                Some(a) => format!("{name} {a}"),
                None => name.clone(),
            },
            NodeKind::Query { .. } => "SELECT …".into(),
            NodeKind::ScalarSubquery => "(SELECT …)".into(),
            NodeKind::Where => {
                let parts: Vec<String> = self.children.iter().map(|c| c.summary()).collect();
                parts.join(" AND ")
            }
            other => {
                let parts: Vec<String> = self.children.iter().map(|c| c.summary()).collect();
                if parts.is_empty() {
                    format!("{other:?}")
                } else {
                    parts.join(", ")
                }
            }
        }
    }
}

/// A DiffTree: a root node plus bookkeeping — which input queries it was
/// merged from, and the id counter for fresh nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffTree {
    /// Root.
    pub root: DiffNode,
    /// Indices into the input query log this tree covers.
    pub source_queries: Vec<usize>,
    next_id: NodeId,
}

impl DiffTree {
    /// Wrap a root node, assigning fresh ids to every node.
    pub fn new(root: DiffNode, source_queries: Vec<usize>) -> Self {
        let mut t = DiffTree { root, source_queries, next_id: 0 };
        t.renumber();
        t
    }

    /// Reassign ids depth-first (used after structural surgery).
    pub fn renumber(&mut self) {
        let mut next = 1;
        fn go(n: &mut DiffNode, next: &mut NodeId) {
            n.id = *next;
            *next += 1;
            for c in &mut n.children {
                go(c, next);
            }
        }
        go(&mut self.root, &mut next);
        self.next_id = next;
    }

    /// Structural hash of the whole tree (ignores ids).
    pub fn structural_hash(&self) -> u64 {
        self.root.structural_hash()
    }

    /// Shape hash of the whole tree (literal values erased).
    pub fn shape_hash(&self) -> u64 {
        self.root.shape_hash()
    }

    /// All choice-node ids in pre-order.
    pub fn choice_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.root.walk(&mut |n| {
            if n.kind.is_choice() {
                out.push(n.id);
            }
        });
        out
    }
}

impl fmt::Display for DiffNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(n: &DiffNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            let label = match &n.kind {
                NodeKind::Any => "ANY".to_string(),
                NodeKind::Opt => "OPT".to_string(),
                NodeKind::Hole { domain, .. } => format!("HOLE{domain:?}"),
                NodeKind::Lit(l) => format!("Lit({l})"),
                NodeKind::Column(c) => format!("Col({c})"),
                NodeKind::Binary(op) => format!("Bin({})", op.sql()),
                other => format!("{other:?}"),
            };
            writeln!(f, "{pad}{label}")?;
            for c in &n.children {
                go(c, depth + 1, f)?;
            }
            Ok(())
        }
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_contains() {
        let d = Domain::Discrete(vec![Literal::Int(1), Literal::Int(2)]);
        assert!(d.contains(&Literal::Int(1)));
        assert!(!d.contains(&Literal::Int(3)));
        let r = Domain::IntRange { min: 0, max: 10 };
        assert!(r.contains(&Literal::Int(10)));
        assert!(!r.contains(&Literal::Int(11)));
        let f = Domain::FloatRange { min: F64(0.0), max: F64(1.0) };
        assert!(f.contains(&Literal::Float(F64(0.5))));
        assert!(f.contains(&Literal::Int(1)));
        assert!(!f.contains(&Literal::Float(F64(1.5))));
        let dr = Domain::DateRange {
            min: Date::parse("2021-01-01").unwrap(),
            max: Date::parse("2021-12-31").unwrap(),
        };
        assert!(dr.contains(&Literal::Date(Date::parse("2021-06-15").unwrap())));
        assert!(!dr.contains(&Literal::Int(5)));
    }

    #[test]
    fn structural_hash_ignores_ids() {
        let a = DiffNode::new(NodeKind::Any, vec![DiffNode::leaf(NodeKind::Lit(Literal::Int(1)))]);
        let mut b = a.clone();
        b.id = 99;
        b.children[0].id = 100;
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert!(a.structurally_eq(&b));
    }

    #[test]
    fn renumber_assigns_unique_ids() {
        let n = DiffNode::new(
            NodeKind::Any,
            vec![
                DiffNode::leaf(NodeKind::Lit(Literal::Int(1))),
                DiffNode::leaf(NodeKind::Lit(Literal::Int(2))),
            ],
        );
        let t = DiffTree::new(n, vec![0]);
        let mut ids = Vec::new();
        t.root.walk(&mut |n| ids.push(n.id));
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn find_by_id() {
        let n = DiffNode::new(NodeKind::Any, vec![DiffNode::leaf(NodeKind::Lit(Literal::Int(7)))]);
        let t = DiffTree::new(n, vec![0]);
        let child_id = t.root.children[0].id;
        let found = t.root.find(child_id).unwrap();
        assert_eq!(found.kind, NodeKind::Lit(Literal::Int(7)));
        assert!(t.root.find(9999).is_none());
    }

    #[test]
    fn summary_of_predicates() {
        let n = DiffNode::new(
            NodeKind::Binary(BinaryOp::Eq),
            vec![
                DiffNode::leaf(NodeKind::Column(ColumnRef::bare("a"))),
                DiffNode::leaf(NodeKind::Lit(Literal::Int(1))),
            ],
        );
        assert_eq!(n.summary(), "a = 1");
        let any = DiffNode::new(NodeKind::Any, vec![n]);
        assert_eq!(any.summary(), "⟨a = 1⟩");
    }

    #[test]
    fn counts() {
        let n = DiffNode::new(
            NodeKind::Any,
            vec![
                DiffNode::leaf(NodeKind::Lit(Literal::Int(1))),
                DiffNode::new(NodeKind::Opt, vec![DiffNode::leaf(NodeKind::Lit(Literal::Int(2)))]),
            ],
        );
        assert_eq!(n.size(), 4);
        assert_eq!(n.choice_count(), 2);
    }
}
