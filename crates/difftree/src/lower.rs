//! Lowering DiffTrees back to concrete SQL queries under a [`Bindings`].
//!
//! Lowering is the inverse of lifting: choice nodes resolve through the
//! bindings (`Any` → chosen child, `Opt` → included or dropped, `Hole` →
//! bound literal), then the structural labels rebuild the AST.

use crate::bindings::{Binding, Bindings};
use crate::node::{DiffNode, DiffTree, NodeKind};
use pi2_sql::visit::conjoin;
use pi2_sql::{Expr, OrderByItem, Query, SelectItem, TableRef};
use std::fmt;

/// Errors raised during lowering (malformed tree shapes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lower error: {}", self.0)
    }
}
impl std::error::Error for LowerError {}

type Result<T> = std::result::Result<T, LowerError>;

/// Lower a DiffTree to a concrete query under `bindings`. Unbound choice
/// nodes use defaults: `Any` picks its first child, `Opt` includes its
/// child, `Hole` uses its stored default literal.
pub fn lower_query(tree: &DiffTree, bindings: &Bindings) -> Result<Query> {
    let node = &tree.root;
    // The root may itself be a choice (e.g. ANY over whole queries).
    let resolved = resolve(node, bindings)?;
    match resolved {
        Some(n) => lower_query_node(n, bindings),
        None => Err(LowerError("root resolved to nothing".into())),
    }
}

/// Resolve choice nodes at `node`: returns the effective structural node,
/// or `None` if an `Opt` excludes it.
fn resolve<'a>(node: &'a DiffNode, bindings: &Bindings) -> Result<Option<&'a DiffNode>> {
    match &node.kind {
        NodeKind::Any => {
            let idx = match bindings.get(node.id) {
                Some(Binding::Pick(i)) => *i,
                Some(other) => {
                    return Err(LowerError(format!("ANY node {} bound with {other:?}", node.id)))
                }
                None => 0,
            };
            let child = node.children.get(idx).ok_or_else(|| {
                LowerError(format!(
                    "ANY node {}: pick {idx} out of range {}",
                    node.id,
                    node.children.len()
                ))
            })?;
            resolve(child, bindings)
        }
        NodeKind::Opt => {
            let include = match bindings.get(node.id) {
                Some(Binding::Include(b)) => *b,
                Some(other) => {
                    return Err(LowerError(format!("OPT node {} bound with {other:?}", node.id)))
                }
                None => true,
            };
            if !include {
                return Ok(None);
            }
            let child = node
                .children
                .first()
                .ok_or_else(|| LowerError(format!("OPT node {} has no child", node.id)))?;
            resolve(child, bindings)
        }
        _ => Ok(Some(node)),
    }
}

/// Lower a list-semantics child vector, dropping excluded OPTs.
fn lower_list<'a>(children: &'a [DiffNode], bindings: &Bindings) -> Result<Vec<&'a DiffNode>> {
    let mut out = Vec::with_capacity(children.len());
    for c in children {
        if let Some(n) = resolve(c, bindings)? {
            out.push(n);
        }
    }
    Ok(out)
}

/// Resolve a fixed-arity child (must be present).
fn required<'a>(
    node: &'a DiffNode,
    idx: usize,
    bindings: &Bindings,
    what: &str,
) -> Result<&'a DiffNode> {
    let c = node
        .children
        .get(idx)
        .ok_or_else(|| LowerError(format!("{what}: missing child {idx} of {:?}", node.kind)))?;
    resolve(c, bindings)?.ok_or_else(|| LowerError(format!("{what}: child {idx} excluded by OPT")))
}

pub(crate) fn lower_query_node(node: &DiffNode, bindings: &Bindings) -> Result<Query> {
    let NodeKind::Query { distinct } = &node.kind else {
        return Err(LowerError(format!("expected Query node, got {:?}", node.kind)));
    };
    if node.children.len() != 8 {
        return Err(LowerError(format!(
            "Query node has {} slots, expected 8",
            node.children.len()
        )));
    }
    let mut q = Query::new();
    q.distinct = *distinct;

    let projection = required(node, 0, bindings, "projection slot")?;
    for item in lower_list(&projection.children, bindings)? {
        q.projection.push(lower_select_item(item, bindings)?);
    }
    if q.projection.is_empty() {
        return Err(LowerError("projection resolved to no items".into()));
    }

    let from = required(node, 1, bindings, "from slot")?;
    for t in lower_list(&from.children, bindings)? {
        q.from.push(lower_table_ref(t, bindings)?);
    }

    let where_node = required(node, 2, bindings, "where slot")?;
    let where_parts: Vec<Expr> = lower_list(&where_node.children, bindings)?
        .into_iter()
        .map(|n| lower_expr(n, bindings))
        .collect::<Result<_>>()?;
    q.where_clause = conjoin(where_parts);

    let group_by = required(node, 3, bindings, "group-by slot")?;
    for g in lower_list(&group_by.children, bindings)? {
        q.group_by.push(lower_expr(g, bindings)?);
    }

    let having = required(node, 4, bindings, "having slot")?;
    let having_parts: Vec<Expr> = lower_list(&having.children, bindings)?
        .into_iter()
        .map(|n| lower_expr(n, bindings))
        .collect::<Result<_>>()?;
    q.having = conjoin(having_parts);

    let order_by = required(node, 5, bindings, "order-by slot")?;
    for o in lower_list(&order_by.children, bindings)? {
        let NodeKind::OrderItem { dir } = &o.kind else {
            return Err(LowerError(format!("expected OrderItem, got {:?}", o.kind)));
        };
        let expr = lower_expr(required(o, 0, bindings, "order item")?, bindings)?;
        q.order_by.push(OrderByItem { expr, dir: *dir });
    }

    let limit = required(node, 6, bindings, "limit slot")?;
    if let Some(l) = lower_list(&limit.children, bindings)?.first() {
        let NodeKind::Limit(v) = &l.kind else {
            return Err(LowerError(format!("expected Limit leaf, got {:?}", l.kind)));
        };
        q.limit = Some(*v);
    }

    let offset = required(node, 7, bindings, "offset slot")?;
    if let Some(o) = lower_list(&offset.children, bindings)?.first() {
        let NodeKind::Offset(v) = &o.kind else {
            return Err(LowerError(format!("expected Offset leaf, got {:?}", o.kind)));
        };
        q.offset = Some(*v);
    }

    Ok(q)
}

fn lower_select_item(node: &DiffNode, bindings: &Bindings) -> Result<SelectItem> {
    match &node.kind {
        NodeKind::Wildcard => Ok(SelectItem::Wildcard),
        NodeKind::QualifiedWildcard(t) => Ok(SelectItem::QualifiedWildcard(t.clone())),
        NodeKind::SelectItem { alias } => {
            let expr = lower_expr(required(node, 0, bindings, "select item")?, bindings)?;
            Ok(SelectItem::Expr { expr, alias: alias.clone() })
        }
        other => Err(LowerError(format!("expected select item, got {other:?}"))),
    }
}

fn lower_table_ref(node: &DiffNode, bindings: &Bindings) -> Result<TableRef> {
    match &node.kind {
        NodeKind::TableNamed { name, alias } => {
            Ok(TableRef::Named { name: name.clone(), alias: alias.clone() })
        }
        NodeKind::TableSubquery { alias } => {
            let inner = required(node, 0, bindings, "derived table")?;
            Ok(TableRef::Subquery {
                query: Box::new(lower_query_node(inner, bindings)?),
                alias: alias.clone(),
            })
        }
        NodeKind::Join { kind } => {
            let left = lower_table_ref(required(node, 0, bindings, "join left")?, bindings)?;
            let right = lower_table_ref(required(node, 1, bindings, "join right")?, bindings)?;
            let on_node = required(node, 2, bindings, "join on")?;
            let on_parts: Vec<Expr> = lower_list(&on_node.children, bindings)?
                .into_iter()
                .map(|n| lower_expr(n, bindings))
                .collect::<Result<_>>()?;
            Ok(TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind: *kind,
                on: conjoin(on_parts),
            })
        }
        other => Err(LowerError(format!("expected table ref, got {other:?}"))),
    }
}

pub(crate) fn lower_expr(node: &DiffNode, bindings: &Bindings) -> Result<Expr> {
    let node = resolve(node, bindings)?
        .ok_or_else(|| LowerError("expression excluded by OPT in scalar position".into()))?;
    match &node.kind {
        NodeKind::Column(c) => Ok(Expr::Column(c.clone())),
        NodeKind::Lit(l) => Ok(Expr::Literal(l.clone())),
        NodeKind::Wildcard => Ok(Expr::Wildcard),
        NodeKind::Hole { domain, default, .. } => {
            let value = match bindings.get(node.id) {
                Some(Binding::Value(v)) => v.clone(),
                Some(other) => {
                    return Err(LowerError(format!("HOLE node {} bound with {other:?}", node.id)))
                }
                None => default.clone(),
            };
            // Clamp to the domain: interfaces must not produce queries the
            // tree does not express.
            if !domain.contains(&value) {
                return Err(LowerError(format!(
                    "value {value} outside hole domain {domain:?} (node {})",
                    node.id
                )));
            }
            Ok(Expr::Literal(value))
        }
        NodeKind::Unary(op) => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(lower_expr(required(node, 0, bindings, "unary")?, bindings)?),
        }),
        NodeKind::Binary(op) => Ok(Expr::Binary {
            left: Box::new(lower_expr(required(node, 0, bindings, "binary left")?, bindings)?),
            op: *op,
            right: Box::new(lower_expr(required(node, 1, bindings, "binary right")?, bindings)?),
        }),
        NodeKind::Function { name, distinct } => {
            let args: Vec<Expr> = lower_list(&node.children, bindings)?
                .into_iter()
                .map(|n| lower_expr(n, bindings))
                .collect::<Result<_>>()?;
            Ok(Expr::Function { name: name.clone(), args, distinct: *distinct })
        }
        NodeKind::Case => {
            let operand_node = required(node, 0, bindings, "case operand slot")?;
            let operand = match lower_list(&operand_node.children, bindings)?.first() {
                Some(o) => Some(Box::new(lower_expr(o, bindings)?)),
                None => None,
            };
            let branches_node = required(node, 1, bindings, "case branches")?;
            let mut branches = Vec::new();
            for b in lower_list(&branches_node.children, bindings)? {
                let w = lower_expr(required(b, 0, bindings, "case when")?, bindings)?;
                let t = lower_expr(required(b, 1, bindings, "case then")?, bindings)?;
                branches.push((w, t));
            }
            let else_node = required(node, 2, bindings, "case else slot")?;
            let else_expr = match lower_list(&else_node.children, bindings)?.first() {
                Some(e) => Some(Box::new(lower_expr(e, bindings)?)),
                None => None,
            };
            Ok(Expr::Case { operand, branches, else_expr })
        }
        NodeKind::InList { negated } => {
            let resolved = lower_list(&node.children, bindings)?;
            let (first, rest) = resolved
                .split_first()
                .ok_or_else(|| LowerError("IN list with no probe expression".into()))?;
            let list: Vec<Expr> =
                rest.iter().map(|n| lower_expr(n, bindings)).collect::<Result<_>>()?;
            Ok(Expr::InList {
                expr: Box::new(lower_expr(first, bindings)?),
                list,
                negated: *negated,
            })
        }
        NodeKind::InSubquery { negated } => Ok(Expr::InSubquery {
            expr: Box::new(lower_expr(
                required(node, 0, bindings, "in-subquery probe")?,
                bindings,
            )?),
            subquery: Box::new(lower_query_node(
                required(node, 1, bindings, "in-subquery body")?,
                bindings,
            )?),
            negated: *negated,
        }),
        NodeKind::Exists { negated } => Ok(Expr::Exists {
            subquery: Box::new(lower_query_node(
                required(node, 0, bindings, "exists body")?,
                bindings,
            )?),
            negated: *negated,
        }),
        NodeKind::Between { negated } => Ok(Expr::Between {
            expr: Box::new(lower_expr(required(node, 0, bindings, "between expr")?, bindings)?),
            low: Box::new(lower_expr(required(node, 1, bindings, "between low")?, bindings)?),
            high: Box::new(lower_expr(required(node, 2, bindings, "between high")?, bindings)?),
            negated: *negated,
        }),
        NodeKind::ScalarSubquery => Ok(Expr::ScalarSubquery(Box::new(lower_query_node(
            required(node, 0, bindings, "scalar subquery")?,
            bindings,
        )?))),
        NodeKind::IsNull { negated } => Ok(Expr::IsNull {
            expr: Box::new(lower_expr(required(node, 0, bindings, "is-null")?, bindings)?),
            negated: *negated,
        }),
        NodeKind::Like { negated } => Ok(Expr::Like {
            expr: Box::new(lower_expr(required(node, 0, bindings, "like expr")?, bindings)?),
            pattern: Box::new(lower_expr(required(node, 1, bindings, "like pattern")?, bindings)?),
            negated: *negated,
        }),
        other => Err(LowerError(format!("expected expression node, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::lift_query;
    use crate::node::Domain;
    use pi2_sql::{normalize, parse_query, Literal};

    fn roundtrip(sql: &str) {
        let q = parse_query(sql).unwrap();
        let tree = lift_query(&q, 0);
        let lowered = lower_query(&tree, &Bindings::new()).unwrap();
        assert_eq!(lowered, normalize::normalized(&q), "roundtrip failed for {sql}");
    }

    #[test]
    fn lift_lower_roundtrips() {
        for sql in [
            "SELECT a FROM t",
            "SELECT DISTINCT a, b AS x FROM t WHERE a = 1 AND b > 2 GROUP BY a, b HAVING count(*) > 3 ORDER BY a DESC LIMIT 5 OFFSET 2",
            "SELECT * FROM t JOIN u ON t.id = u.id LEFT JOIN v ON u.x = v.x",
            "SELECT a FROM (SELECT b AS a FROM t) AS s",
            "SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t",
            "SELECT CASE a WHEN 1 THEN 'one' END FROM t",
            "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT c FROM u)",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT a FROM t WHERE d BETWEEN DATE '2021-01-01' AND DATE '2021-12-31'",
            "SELECT a FROM t WHERE name LIKE 'N%' AND x IS NOT NULL",
            "SELECT count(DISTINCT a), sum(b + c) FROM t",
            "SELECT a FROM t WHERE x > (SELECT avg(x) FROM t)",
            "SELECT t.* FROM t CROSS JOIN u",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn any_binding_selects_child() {
        // Build ANY over two predicates manually inside a WHERE.
        let q1 = parse_query("SELECT p FROM t WHERE a = 1").unwrap();
        let mut tree = lift_query(&q1, 0);
        // Wrap the single conjunct in an ANY with an alternative b = 2.
        let alt = crate::lift::lift_expr(&pi2_sql::Expr::eq(
            pi2_sql::Expr::col("b"),
            pi2_sql::Expr::int(2),
        ));
        let where_node = &mut tree.root.children[2];
        let original = where_node.children.remove(0);
        where_node.children.push(DiffNode::new(NodeKind::Any, vec![original, alt]));
        tree.renumber();

        let any_id = tree.choice_ids()[0];
        let q_default = lower_query(&tree, &Bindings::new()).unwrap();
        assert_eq!(q_default.to_string(), "SELECT p FROM t WHERE a = 1");
        let q_second = lower_query(&tree, &Bindings::new().with(any_id, Binding::Pick(1))).unwrap();
        assert_eq!(q_second.to_string(), "SELECT p FROM t WHERE b = 2");
        // Out-of-range pick is an error.
        assert!(lower_query(&tree, &Bindings::new().with(any_id, Binding::Pick(5))).is_err());
    }

    #[test]
    fn opt_binding_toggles_conjunct() {
        let q = parse_query("SELECT p FROM t WHERE a = 1 AND b = 2").unwrap();
        let mut tree = lift_query(&q, 0);
        let where_node = &mut tree.root.children[2];
        let second = where_node.children.remove(1);
        where_node.children.push(DiffNode::new(NodeKind::Opt, vec![second]));
        tree.renumber();
        let opt_id = tree.choice_ids()[0];

        let on = lower_query(&tree, &Bindings::new()).unwrap();
        assert!(on.to_string().contains("b = 2"));
        let off =
            lower_query(&tree, &Bindings::new().with(opt_id, Binding::Include(false))).unwrap();
        assert_eq!(off.to_string(), "SELECT p FROM t WHERE a = 1");
    }

    #[test]
    fn hole_binding_substitutes_value() {
        let q = parse_query("SELECT p FROM t WHERE a = 1").unwrap();
        let mut tree = lift_query(&q, 0);
        // Replace the literal 1 with a hole over 0..10.
        let pred = &mut tree.root.children[2].children[0];
        pred.children[1] = DiffNode::leaf(NodeKind::Hole {
            domain: Domain::IntRange { min: 0, max: 10 },
            default: Literal::Int(1),
            source_column: Some(pi2_sql::ColumnRef::bare("a")),
        });
        tree.renumber();
        let hole_id = tree.choice_ids()[0];

        let q_default = lower_query(&tree, &Bindings::new()).unwrap();
        assert_eq!(q_default.to_string(), "SELECT p FROM t WHERE a = 1");
        let q7 =
            lower_query(&tree, &Bindings::new().with(hole_id, Binding::Value(Literal::Int(7))))
                .unwrap();
        assert_eq!(q7.to_string(), "SELECT p FROM t WHERE a = 7");
        // Out-of-domain value is rejected.
        assert!(lower_query(
            &tree,
            &Bindings::new().with(hole_id, Binding::Value(Literal::Int(99)))
        )
        .is_err());
    }

    #[test]
    fn wrong_binding_kind_is_error() {
        let q = parse_query("SELECT p FROM t WHERE a = 1").unwrap();
        let mut tree = lift_query(&q, 0);
        let where_node = &mut tree.root.children[2];
        let original = where_node.children.remove(0);
        where_node.children.push(DiffNode::new(NodeKind::Any, vec![original]));
        tree.renumber();
        let any_id = tree.choice_ids()[0];
        assert!(lower_query(&tree, &Bindings::new().with(any_id, Binding::Include(false))).is_err());
    }
}
