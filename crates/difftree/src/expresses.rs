//! The expressiveness check: can a DiffTree express a given query?
//!
//! PI2's hard constraint is that the returned interface must express every
//! query in the input log (paper §2: "return the lowest cost interface that
//! can express all queries in Q"). This module decides expressiveness by
//! matching the lifted, normalized query against the tree with
//! backtracking over choice nodes, and returns the witnessing bindings.

use crate::bindings::{Binding, Bindings};
use crate::lift::lift_query_node;
use crate::node::{DiffNode, DiffTree, NodeKind};
use pi2_sql::{normalize, Query};

/// Default bindings for a tree: the witness bindings of the *first* source
/// query the tree can still express. This guarantees the tree's default
/// instantiation is a real query from the log — important when a merge
/// interleaves structurally different queries, where naive defaults (first
/// `Any` child + every `Opt` included) can be an invalid mixture.
pub fn default_bindings(tree: &DiffTree, log: &[Query]) -> Bindings {
    for &qi in &tree.source_queries {
        if let Some(q) = log.get(qi) {
            if let Some(b) = expresses(tree, q) {
                return b;
            }
        }
    }
    // Fall back to structural defaults.
    Bindings::new()
}

/// If `tree` can express `query`, return bindings under which
/// [`crate::lower_query`] reproduces it (up to normalization).
pub fn expresses(tree: &DiffTree, query: &Query) -> Option<Bindings> {
    let target = lift_query_node(&normalize::normalized(query));
    let mut b = Bindings::new();
    if match_node(&tree.root, &target, &mut b) {
        Some(b)
    } else {
        None
    }
}

/// Match a pattern node (may contain choices) against a concrete target.
fn match_node(pattern: &DiffNode, target: &DiffNode, b: &mut Bindings) -> bool {
    match &pattern.kind {
        NodeKind::Any => {
            for (i, alt) in pattern.children.iter().enumerate() {
                let snapshot = b.clone();
                b.set(pattern.id, Binding::Pick(i));
                if match_node(alt, target, b) {
                    return true;
                }
                *b = snapshot;
            }
            false
        }
        NodeKind::Opt => {
            // In scalar position an OPT must be included to match anything.
            let snapshot = b.clone();
            b.set(pattern.id, Binding::Include(true));
            if match_node(&pattern.children[0], target, b) {
                return true;
            }
            *b = snapshot;
            false
        }
        NodeKind::Hole { domain, .. } => {
            if let NodeKind::Lit(l) = &target.kind {
                if domain.contains(l) {
                    b.set(pattern.id, Binding::Value(l.clone()));
                    return true;
                }
            }
            false
        }
        kind => {
            if *kind != target.kind {
                return false;
            }
            if is_set_semantics(kind) {
                match_set(&pattern.children, &target.children, b)
            } else {
                match_seq(&pattern.children, &target.children, b)
            }
        }
    }
}

/// Conjunct lists are order-insensitive.
fn is_set_semantics(kind: &NodeKind) -> bool {
    matches!(kind, NodeKind::Where | NodeKind::Having | NodeKind::On | NodeKind::GroupBy)
}

/// If the pattern node can resolve to *nothing* (an excluded OPT, possibly
/// through a chain of ANY picks), record the bindings that make it vanish
/// and return true.
fn bind_vanished(p: &DiffNode, b: &mut Bindings) -> bool {
    match &p.kind {
        NodeKind::Opt => {
            b.set(p.id, Binding::Include(false));
            true
        }
        NodeKind::Any => {
            for (i, alt) in p.children.iter().enumerate() {
                let snapshot = b.clone();
                b.set(p.id, Binding::Pick(i));
                if bind_vanished(alt, b) {
                    return true;
                }
                *b = snapshot;
            }
            false
        }
        _ => false,
    }
}

/// Ordered matching: pattern children consume target children left to
/// right; `Opt` pattern children may also consume nothing.
fn match_seq(pats: &[DiffNode], targets: &[DiffNode], b: &mut Bindings) -> bool {
    if pats.is_empty() {
        return targets.is_empty();
    }
    let p = &pats[0];
    if let Some(t0) = targets.first() {
        let snapshot = b.clone();
        if match_node(p, t0, b) && match_seq(&pats[1..], &targets[1..], b) {
            return true;
        }
        *b = snapshot;
    }
    {
        let snapshot = b.clone();
        if bind_vanished(p, b) && match_seq(&pats[1..], targets, b) {
            return true;
        }
        *b = snapshot;
    }
    false
}

/// Set matching: each pattern child consumes one unused target child (an
/// `Opt` may consume none); every target child must be consumed.
fn match_set(pats: &[DiffNode], targets: &[DiffNode], b: &mut Bindings) -> bool {
    fn go(pats: &[DiffNode], targets: &[DiffNode], used: &mut Vec<bool>, b: &mut Bindings) -> bool {
        if pats.is_empty() {
            return used.iter().all(|u| *u);
        }
        let p = &pats[0];
        for i in 0..targets.len() {
            if used[i] {
                continue;
            }
            let snapshot = b.clone();
            used[i] = true;
            if match_node(p, &targets[i], b) && go(&pats[1..], targets, used, b) {
                return true;
            }
            used[i] = false;
            *b = snapshot;
        }
        {
            let snapshot = b.clone();
            if bind_vanished(p, b) && go(&pats[1..], targets, used, b) {
                return true;
            }
            *b = snapshot;
        }
        false
    }
    let mut used = vec![false; targets.len()];
    go(pats, targets, &mut used, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_query;
    use crate::merge::merge_queries;
    use pi2_sql::parse_query;

    fn merged(sqls: &[&str]) -> (DiffTree, Vec<Query>) {
        let queries: Vec<Query> = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        let indexed: Vec<(usize, &Query)> = queries.iter().enumerate().collect();
        (merge_queries(&indexed), queries)
    }

    #[test]
    fn merged_tree_expresses_all_inputs() {
        let (tree, queries) = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM t GROUP BY a",
        ]);
        for q in &queries {
            let b =
                expresses(&tree, q).unwrap_or_else(|| panic!("cannot express {q}\n{}", tree.root));
            let lowered = lower_query(&tree, &b).unwrap();
            assert_eq!(pi2_sql::normalize::normalized(&lowered), pi2_sql::normalize::normalized(q));
        }
    }

    #[test]
    fn does_not_express_unrelated_query() {
        let (tree, _) = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        assert!(expresses(&tree, &parse_query("SELECT z FROM other").unwrap()).is_none());
        assert!(expresses(
            &tree,
            &parse_query("SELECT p, count(*) FROM t WHERE a = 99 GROUP BY p").unwrap()
        )
        .is_none());
    }

    #[test]
    fn factored_tree_expresses_generalizations() {
        let (tree, _) = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        // The factored ANY(a,b) = ANY(1,2) also expresses b = 1 (paper §2).
        let gen = parse_query("SELECT p, count(*) FROM t WHERE b = 1 GROUP BY p").unwrap();
        assert!(expresses(&tree, &gen).is_some());
    }

    #[test]
    fn conjunct_order_does_not_matter() {
        let (tree, _) = merged(&["SELECT x FROM t WHERE a = 1 AND b = 2"]);
        let reordered = parse_query("SELECT x FROM t WHERE b = 2 AND a = 1").unwrap();
        assert!(expresses(&tree, &reordered).is_some());
    }

    #[test]
    fn opt_conjunct_matches_present_and_absent() {
        let (tree, queries) =
            merged(&["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 1 AND y = 2"]);
        for q in &queries {
            assert!(expresses(&tree, q).is_some(), "cannot express {q}");
        }
        // But not a query with only the optional conjunct.
        assert!(expresses(&tree, &parse_query("SELECT a FROM t WHERE y = 2").unwrap()).is_none());
    }

    #[test]
    fn hole_expresses_in_domain_values_only() {
        use crate::node::Domain;
        let q = parse_query("SELECT p FROM t WHERE a = 1").unwrap();
        let mut tree = crate::lift::lift_query(&q, 0);
        tree.root.children[2].children[0].children[1] = DiffNode::leaf(NodeKind::Hole {
            domain: Domain::IntRange { min: 0, max: 10 },
            default: pi2_sql::Literal::Int(1),
            source_column: None,
        });
        tree.renumber();
        assert!(expresses(&tree, &parse_query("SELECT p FROM t WHERE a = 7").unwrap()).is_some());
        assert!(expresses(&tree, &parse_query("SELECT p FROM t WHERE a = 11").unwrap()).is_none());
        assert!(expresses(&tree, &parse_query("SELECT p FROM t WHERE a = 'x'").unwrap()).is_none());
    }

    #[test]
    fn default_bindings_fall_back_to_structural_defaults() {
        // A tree whose source queries are all absent from the provided log
        // (stale indices after a notebook edit) cannot produce a witness;
        // default_bindings must fall back to empty structural defaults,
        // under which lowering still yields a valid query (first ANY
        // child, every OPT included, hole defaults).
        let (mut tree, _) = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        // Log slot 0 exists but holds an inexpressible query; slot 7 is
        // out of range entirely.
        tree.source_queries = vec![0, 7];
        let log = vec![parse_query("SELECT z FROM other").unwrap()];
        let b = default_bindings(&tree, &log);
        assert!(b.is_empty(), "expected structural-defaults fallback, got {b:?}");
        let lowered = lower_query(&tree, &b).unwrap();
        assert_eq!(lowered.to_string(), "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p");
    }

    #[test]
    fn default_bindings_skip_stale_sources_for_first_expressible() {
        // Source 0 is stale (log changed underneath), source 1 still
        // matches: the witness must come from source 1.
        let (mut tree, queries) = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        tree.source_queries = vec![0, 1];
        let log = vec![parse_query("SELECT z FROM other").unwrap(), queries[1].clone()];
        let b = default_bindings(&tree, &log);
        assert!(!b.is_empty());
        let lowered = lower_query(&tree, &b).unwrap();
        assert_eq!(lowered.to_string(), "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p");
    }

    #[test]
    fn witness_bindings_reproduce_each_demo_covid_query() {
        let queries = pi2_datasets::covid::demo_queries();
        let indexed: Vec<(usize, &Query)> = queries.iter().enumerate().collect();
        let tree = merge_queries(&indexed);
        for q in &queries {
            let b = expresses(&tree, q).unwrap_or_else(|| panic!("cannot express {q}"));
            let lowered = lower_query(&tree, &b).unwrap();
            assert_eq!(pi2_sql::normalize::normalized(&lowered), pi2_sql::normalize::normalized(q));
        }
    }
}
