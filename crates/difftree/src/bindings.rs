//! Choice-node bindings: the state an interface manipulates.
//!
//! Every widget event in a generated interface ultimately updates one
//! binding: a radio/dropdown/tab picks an `Any` child, a toggle flips an
//! `Opt`, a slider/click/brush writes a `Hole` value.

use crate::node::NodeId;
use pi2_sql::Literal;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The binding of one choice node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Binding {
    /// For `Any`: the chosen child index.
    Pick(usize),
    /// For `Opt`: whether the child is included.
    Include(bool),
    /// For `Hole`: the bound literal.
    Value(Literal),
}

/// A set of bindings, keyed by choice-node id. Missing entries fall back to
/// each node's default (first `Any` child, `Opt` included, `Hole` default).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bindings {
    map: BTreeMap<NodeId, Binding>,
}

impl Bindings {
    /// Empty bindings (all defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the binding for a choice node.
    pub fn set(&mut self, id: NodeId, b: Binding) {
        self.map.insert(id, b);
    }

    /// Builder-style [`Bindings::set`].
    pub fn with(mut self, id: NodeId, b: Binding) -> Self {
        self.set(id, b);
        self
    }

    /// The binding for `id`, if set.
    pub fn get(&self, id: NodeId) -> Option<&Binding> {
        self.map.get(&id)
    }

    /// Remove a binding, reverting the node to its default.
    pub fn clear(&mut self, id: NodeId) {
        self.map.remove(&id);
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no explicit bindings are set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over (id, binding) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &Binding)> {
        self.map.iter()
    }

    /// Merge `other` into `self`, with `other` winning conflicts.
    pub fn overlay(&mut self, other: &Bindings) {
        for (id, b) in other.iter() {
            self.map.insert(*id, b.clone());
        }
    }

    /// A stable 64-bit fingerprint of the binding set, suitable as a cache
    /// key component (sessions memoize the instantiated query per
    /// (tree, bindings-fingerprint)). BTreeMap iteration order makes it
    /// deterministic for equal binding sets.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (id, b) in &self.map {
            id.hash(&mut h);
            b.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        b.set(3, Binding::Pick(1));
        assert_eq!(b.get(3), Some(&Binding::Pick(1)));
        b.clear(3);
        assert!(b.get(3).is_none());
    }

    #[test]
    fn overlay_wins() {
        let mut a = Bindings::new().with(1, Binding::Include(true)).with(2, Binding::Pick(0));
        let b = Bindings::new().with(2, Binding::Pick(1));
        a.overlay(&b);
        assert_eq!(a.get(2), Some(&Binding::Pick(1)));
        assert_eq!(a.get(1), Some(&Binding::Include(true)));
    }
}
