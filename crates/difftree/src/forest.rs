//! Forests of DiffTrees: partitions of a query log.
//!
//! A forest is the search state of PI2's optimizer. Each tree covers a
//! subset of the input queries; the paper's §2 discusses both options for
//! Q1–Q3 — "partition the queries into two clusters" (two trees → two
//! visualizations) versus "merge all three queries into a single DiffTree"
//! (one tree → one interactive visualization). Forest-level actions move
//! between those designs; tree-level transformation rules refine each tree.

use crate::merge::{merge_queries, merge_trees};
use crate::node::DiffTree;
use pi2_sql::Query;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A partition of the input query log into DiffTrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffForest {
    /// Trees.
    pub trees: Vec<DiffTree>,
}

impl DiffForest {
    /// One tree per query (the state right after parsing — paper Figure 6
    /// step ①).
    pub fn singletons(queries: &[Query]) -> Self {
        DiffForest {
            trees: queries.iter().enumerate().map(|(i, q)| crate::lift::lift_query(q, i)).collect(),
        }
    }

    /// All queries merged into one tree.
    pub fn fully_merged(queries: &[Query]) -> Self {
        let indexed: Vec<(usize, &Query)> = queries.iter().enumerate().collect();
        DiffForest { trees: vec![merge_queries(&indexed)] }
    }

    /// Total number of choice nodes across trees.
    pub fn choice_count(&self) -> usize {
        self.trees.iter().map(|t| t.root.choice_count()).sum()
    }

    /// Total node count across trees.
    pub fn size(&self) -> usize {
        self.trees.iter().map(|t| t.root.size()).sum()
    }

    /// Order-insensitive structural hash of the forest (used to dedup
    /// search states).
    pub fn structural_hash(&self) -> u64 {
        let mut hashes: Vec<u64> = self.trees.iter().map(DiffTree::structural_hash).collect();
        hashes.sort_unstable();
        let mut h = DefaultHasher::new();
        hashes.hash(&mut h);
        h.finish()
    }

    /// Order-*sensitive* structural hash, additionally covering each
    /// tree's source-query set.
    ///
    /// Anything that references trees **by index** — memoized interfaces,
    /// whose widget/chart targets carry `Target { tree, .. }` — must be
    /// keyed by this hash, not by [`structural_hash`]: two forests that
    /// are structurally equal as *sets* can still order their trees
    /// differently (duplicate queries in the log give structurally
    /// identical trees different source sets, and the canonical
    /// earliest-source sort then permutes them), which silently remaps
    /// every target. Found by the pi2-conformance fuzzer.
    ///
    /// [`structural_hash`]: DiffForest::structural_hash
    pub fn indexed_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for t in &self.trees {
            t.structural_hash().hash(&mut h);
            t.source_queries.hash(&mut h);
        }
        h.finish()
    }

    /// Merge trees `i` and `j` into one (forest-level action).
    pub fn merge_pair(&self, i: usize, j: usize) -> Option<DiffForest> {
        if i == j || i >= self.trees.len() || j >= self.trees.len() {
            return None;
        }
        let merged = merge_trees(&self.trees[i], &self.trees[j]);
        let mut trees: Vec<DiffTree> = self
            .trees
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != i && *k != j)
            .map(|(_, t)| t.clone())
            .collect();
        trees.push(merged);
        Some(DiffForest { trees })
    }

    /// Split tree `i` back into one tree per source query (forest-level
    /// action; requires the original log).
    pub fn split_tree(&self, i: usize, log: &[Query]) -> Option<DiffForest> {
        let tree = self.trees.get(i)?;
        if tree.source_queries.len() <= 1 {
            return None;
        }
        let mut trees: Vec<DiffTree> = self
            .trees
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != i)
            .map(|(_, t)| t.clone())
            .collect();
        for &qi in &tree.source_queries {
            trees.push(crate::lift::lift_query(log.get(qi)?, qi));
        }
        Some(DiffForest { trees })
    }

    /// Does every query in the log have a tree that expresses it?
    pub fn expresses_all(&self, log: &[Query]) -> bool {
        log.iter().all(|q| self.trees.iter().any(|t| crate::expresses::expresses(t, q).is_some()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_sql::parse_query;

    fn log() -> Vec<Query> {
        [
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM t GROUP BY a",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect()
    }

    #[test]
    fn singletons_have_one_tree_per_query() {
        let f = DiffForest::singletons(&log());
        assert_eq!(f.trees.len(), 3);
        assert_eq!(f.choice_count(), 0);
        assert!(f.expresses_all(&log()));
    }

    #[test]
    fn fully_merged_is_one_tree() {
        let f = DiffForest::fully_merged(&log());
        assert_eq!(f.trees.len(), 1);
        assert!(f.choice_count() > 0);
        assert!(f.expresses_all(&log()));
    }

    #[test]
    fn merge_pair_reduces_tree_count() {
        let f = DiffForest::singletons(&log());
        let merged = f.merge_pair(0, 1).unwrap();
        assert_eq!(merged.trees.len(), 2);
        assert!(merged.expresses_all(&log()));
        assert!(f.merge_pair(0, 0).is_none());
        assert!(f.merge_pair(0, 9).is_none());
    }

    #[test]
    fn split_tree_restores_singletons() {
        let queries = log();
        let f = DiffForest::fully_merged(&queries);
        let split = f.split_tree(0, &queries).unwrap();
        assert_eq!(split.trees.len(), 3);
        assert!(split.expresses_all(&queries));
        // Splitting a singleton tree is a no-op.
        assert!(split.split_tree(0, &queries).is_none());
    }

    #[test]
    fn forest_hash_is_order_insensitive() {
        let queries = log();
        let f1 = DiffForest::singletons(&queries);
        let mut f2 = f1.clone();
        f2.trees.reverse();
        assert_eq!(f1.structural_hash(), f2.structural_hash());
    }

    #[test]
    fn indexed_hash_is_order_sensitive() {
        let queries = log();
        let f1 = DiffForest::singletons(&queries);
        let mut f2 = f1.clone();
        f2.trees.reverse();
        assert_ne!(f1.indexed_hash(), f2.indexed_hash());
        assert_eq!(f1.indexed_hash(), f1.clone().indexed_hash());
    }

    #[test]
    fn indexed_hash_covers_source_queries() {
        // Duplicate queries give structurally identical trees; swapping
        // their source sets must still change the indexed hash, because
        // default bindings (the initial view) depend on the sources.
        let queries = log();
        let f1 = DiffForest::singletons(&queries);
        let mut f2 = f1.clone();
        f2.trees[0].source_queries = vec![1];
        f2.trees[1].source_queries = vec![0];
        assert_ne!(f1.indexed_hash(), f2.indexed_hash());
    }

    #[test]
    fn hash_distinguishes_merged_from_singletons() {
        let queries = log();
        assert_ne!(
            DiffForest::singletons(&queries).structural_hash(),
            DiffForest::fully_merged(&queries).structural_hash()
        );
    }
}
