//! The tree transformation rule library (paper §2 "Tree Transformations").
//!
//! Each rule enumerates the node locations where it applies and rewrites
//! the tree at one location. Rules are semantics-preserving in one
//! direction: the transformed tree expresses *at least* the queries the
//! original expressed (some rules — literal collapse, domain
//! generalization — deliberately generalize further, which is how a slider
//! over a whole column range arises from two observed literals).

use crate::node::{DiffNode, DiffTree, Domain, NodeId, NodeKind};
use pi2_engine::{Catalog, Value};
use pi2_sql::Literal;

/// A tree transformation rule.
///
/// `Send + Sync` so rule sets can be shared by the parallel interface
/// search's worker threads.
pub trait Rule: Send + Sync {
    /// Stable rule name (used in traces and ablation benches).
    fn name(&self) -> &'static str;
    /// Node ids at which this rule currently applies.
    fn applications(&self, tree: &DiffTree) -> Vec<NodeId>;
    /// Apply at `loc`, returning the transformed tree (renumbered), or
    /// `None` if the location no longer matches.
    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree>;
}

/// One applicable (rule, location) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleApplication {
    /// Index of the rule in the rule set.
    pub rule_idx: usize,
    /// Node id the rule applies at.
    pub loc: NodeId,
}

/// The full rule set. `catalog` (when given) powers
/// [`GeneralizeHoleDomain`], which widens hole domains to column
/// statistics.
pub fn all_rules(catalog: Option<Catalog>) -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = vec![
        Box::new(CollapseLiteralAny),
        Box::new(FactorCommonHead),
        Box::new(ExpandAnyChild),
        Box::new(SortAnyChildren),
        Box::new(ParameterizeLiteral),
    ];
    if let Some(c) = catalog {
        rules.push(Box::new(GeneralizeHoleDomain { catalog: c }));
    }
    rules
}

/// Apply the always-beneficial normalization rules — collapse-literal-any
/// and (when a catalog is available) generalize-hole-domain — to fixpoint.
/// These rules never lose expressiveness and always improve the interface
/// (literal ANYs become typed holes, holes widen to column domains), so
/// the search pipeline applies them eagerly after every merge.
pub fn canonicalize(tree: &DiffTree, catalog: Option<&Catalog>) -> DiffTree {
    let rules = all_rules(catalog.cloned());
    let mut current = tree.clone();
    loop {
        let mut progressed = false;
        for rule in &rules {
            if rule.name() != "collapse-literal-any" && rule.name() != "generalize-hole-domain" {
                continue;
            }
            while let Some(&loc) = rule.applications(&current).first() {
                match rule.apply(&current, loc) {
                    Some(next) => {
                        current = next;
                        progressed = true;
                    }
                    None => break,
                }
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Enumerate every applicable (rule, location) pair for a tree.
pub fn applications(rules: &[Box<dyn Rule>], tree: &DiffTree) -> Vec<RuleApplication> {
    rules
        .iter()
        .enumerate()
        .flat_map(|(rule_idx, r)| {
            r.applications(tree).into_iter().map(move |loc| RuleApplication { rule_idx, loc })
        })
        .collect()
}

fn rewrite_at(
    tree: &DiffTree,
    loc: NodeId,
    f: impl FnOnce(&DiffNode) -> Option<DiffNode>,
) -> Option<DiffTree> {
    let mut new = tree.clone();
    let node = new.root.find_mut(loc)?;
    let replacement = f(node)?;
    *node = replacement;
    new.renumber();
    Some(new)
}

// ---------------------------------------------------------------------------

/// `ANY` over same-typed literals collapses into a typed `Hole` with a
/// discrete domain (the first step toward sliders/dropdowns; paper Figure
/// 3c's slider starts here).
pub struct CollapseLiteralAny;

impl CollapseLiteralAny {
    fn matches(node: &DiffNode) -> bool {
        matches!(node.kind, NodeKind::Any)
            && node.children.len() >= 2
            && node.children.iter().all(|c| matches!(c.kind, NodeKind::Lit(_)))
            && {
                let first = match &node.children[0].kind {
                    NodeKind::Lit(l) => std::mem::discriminant(l),
                    _ => unreachable!(),
                };
                node.children.iter().all(|c| match &c.kind {
                    NodeKind::Lit(l) => std::mem::discriminant(l) == first,
                    _ => false,
                })
            }
    }
}

impl Rule for CollapseLiteralAny {
    fn name(&self) -> &'static str {
        "collapse-literal-any"
    }

    fn applications(&self, tree: &DiffTree) -> Vec<NodeId> {
        let mut out = Vec::new();
        tree.root.walk(&mut |n| {
            if Self::matches(n) {
                out.push(n.id);
            }
        });
        out
    }

    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree> {
        // The compared column is computed from the choice context so the
        // hole knows which column it constrains.
        let source_column = crate::choices::choices(tree)
            .into_iter()
            .find(|c| c.id == loc)
            .and_then(|c| c.context.compared_column);
        rewrite_at(tree, loc, |node| {
            if !Self::matches(node) {
                return None;
            }
            let lits: Vec<Literal> = node
                .children
                .iter()
                .map(|c| match &c.kind {
                    NodeKind::Lit(l) => l.clone(),
                    _ => unreachable!("checked by matches()"),
                })
                .collect();
            let default = lits[0].clone();
            Some(DiffNode::leaf(NodeKind::Hole {
                domain: Domain::Discrete(lits),
                default,
                source_column,
            }))
        })
    }
}

// ---------------------------------------------------------------------------

/// `ANY` whose children all share the same head label and arity factors the
/// head above the `ANY`, producing per-position `ANY`s (Figure 3a → 3b).
pub struct FactorCommonHead;

impl FactorCommonHead {
    fn matches(node: &DiffNode) -> bool {
        if !matches!(node.kind, NodeKind::Any) || node.children.len() < 2 {
            return false;
        }
        let head = &node.children[0];
        if head.kind.is_choice() || head.children.is_empty() {
            return false;
        }
        node.children.iter().all(|c| c.kind == head.kind && c.children.len() == head.children.len())
    }
}

impl Rule for FactorCommonHead {
    fn name(&self) -> &'static str {
        "factor-common-head"
    }

    fn applications(&self, tree: &DiffTree) -> Vec<NodeId> {
        let mut out = Vec::new();
        tree.root.walk(&mut |n| {
            if Self::matches(n) {
                out.push(n.id);
            }
        });
        out
    }

    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree> {
        rewrite_at(tree, loc, |node| {
            if !Self::matches(node) {
                return None;
            }
            let head_kind = node.children[0].kind.clone();
            let arity = node.children[0].children.len();
            let mut new_children = Vec::with_capacity(arity);
            for i in 0..arity {
                let mut any = DiffNode::new(NodeKind::Any, Vec::new());
                for alt in &node.children {
                    let sub = alt.children[i].clone();
                    let h = sub.structural_hash();
                    if !any.children.iter().any(|c| c.structural_hash() == h) {
                        any.children.push(sub);
                    }
                }
                new_children.push(if any.children.len() == 1 {
                    any.children.pop().expect("one child")
                } else {
                    any
                });
            }
            Some(DiffNode::new(head_kind, new_children))
        })
    }
}

// ---------------------------------------------------------------------------

/// The inverse of factoring: a structural node with an `ANY` child expands
/// into an `ANY` over fully-instantiated copies (Figure 3b → 3a). Bounded
/// to small alternatives to avoid blow-up.
pub struct ExpandAnyChild;

const EXPAND_MAX_ALTERNATIVES: usize = 4;

impl ExpandAnyChild {
    /// Applies at the *parent* of an ANY child; returns matching parents.
    fn matches(node: &DiffNode) -> bool {
        !node.kind.is_choice()
            && !matches!(node.kind, NodeKind::Query { .. })
            && node.children.iter().any(|c| {
                matches!(c.kind, NodeKind::Any) && c.children.len() <= EXPAND_MAX_ALTERNATIVES
            })
    }
}

impl Rule for ExpandAnyChild {
    fn name(&self) -> &'static str {
        "expand-any-child"
    }

    fn applications(&self, tree: &DiffTree) -> Vec<NodeId> {
        let mut out = Vec::new();
        tree.root.walk(&mut |n| {
            if Self::matches(n) {
                out.push(n.id);
            }
        });
        out
    }

    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree> {
        rewrite_at(tree, loc, |node| {
            if !Self::matches(node) {
                return None;
            }
            let any_pos = node.children.iter().position(|c| {
                matches!(c.kind, NodeKind::Any) && c.children.len() <= EXPAND_MAX_ALTERNATIVES
            })?;
            let alternatives = node.children[any_pos].children.clone();
            let mut any = DiffNode::new(NodeKind::Any, Vec::new());
            for alt in alternatives {
                let mut copy = node.clone();
                copy.children[any_pos] = alt;
                let h = copy.structural_hash();
                if !any.children.iter().any(|c| c.structural_hash() == h) {
                    any.children.push(copy);
                }
            }
            Some(any)
        })
    }
}

// ---------------------------------------------------------------------------

/// Canonicalize `ANY` child order (sort by summary) so that equivalent
/// states hash identically during search.
pub struct SortAnyChildren;

impl Rule for SortAnyChildren {
    fn name(&self) -> &'static str {
        "sort-any-children"
    }

    fn applications(&self, tree: &DiffTree) -> Vec<NodeId> {
        let mut out = Vec::new();
        tree.root.walk(&mut |n| {
            if matches!(n.kind, NodeKind::Any) {
                let sorted = n.children.windows(2).all(|w| w[0].summary() <= w[1].summary());
                if !sorted {
                    out.push(n.id);
                }
            }
        });
        out
    }

    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree> {
        rewrite_at(tree, loc, |node| {
            if !matches!(node.kind, NodeKind::Any) {
                return None;
            }
            let mut copy = node.clone();
            copy.children.sort_by_key(|c| c.summary());
            Some(copy)
        })
    }
}

// ---------------------------------------------------------------------------

/// Turn a single observed literal (compared against a column) into a hole,
/// making it interactive even though the log never varied it. This is how
/// a lone query's date window becomes brushable (paper §3.2: brushing
/// configures G3's query even though Q3 appeared only once), and how the
/// Hex baseline models manual parameterization.
pub struct ParameterizeLiteral;

impl ParameterizeLiteral {
    /// Applies at a literal node that is a direct operand of a comparison,
    /// BETWEEN, or IN list whose probe side is a column.
    fn candidates(tree: &DiffTree) -> Vec<NodeId> {
        let mut out = Vec::new();
        fn go(node: &DiffNode, out: &mut Vec<NodeId>) {
            let eligible = match &node.kind {
                NodeKind::Binary(op) => op.is_comparison(),
                NodeKind::Between { .. } | NodeKind::InList { .. } => true,
                _ => false,
            };
            if eligible {
                let has_column_probe =
                    node.children.iter().any(|c| matches!(c.kind, NodeKind::Column(_)));
                if has_column_probe {
                    for c in &node.children {
                        if matches!(c.kind, NodeKind::Lit(_)) {
                            out.push(c.id);
                        }
                    }
                }
            }
            for c in &node.children {
                go(c, out);
            }
        }
        go(&tree.root, &mut out);
        out
    }
}

impl Rule for ParameterizeLiteral {
    fn name(&self) -> &'static str {
        "parameterize-literal"
    }

    fn applications(&self, tree: &DiffTree) -> Vec<NodeId> {
        Self::candidates(tree)
    }

    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree> {
        if !Self::candidates(tree).contains(&loc) {
            return None;
        }
        // Compute the compared column before surgery (the literal has no
        // choice context yet, so inspect the parent directly).
        let mut source_column = None;
        tree.root.walk(&mut |n| {
            if n.children.iter().any(|c| c.id == loc) {
                source_column = n.children.iter().find_map(|c| match &c.kind {
                    NodeKind::Column(col) => Some(col.clone()),
                    _ => None,
                });
            }
        });
        rewrite_at(tree, loc, |node| {
            let NodeKind::Lit(l) = &node.kind else { return None };
            Some(DiffNode::leaf(NodeKind::Hole {
                domain: Domain::Discrete(vec![l.clone()]),
                default: l.clone(),
                source_column,
            }))
        })
    }
}

// ---------------------------------------------------------------------------

/// Widen a hole's discrete domain to the full domain of its source column,
/// using catalog statistics: numeric/date columns widen to their
/// `[min, max]` range (→ sliders spanning the data), low-cardinality string
/// columns widen to their distinct-value list (→ dropdowns over all
/// values). This is the paper's generalization "beyond the input queries".
pub struct GeneralizeHoleDomain {
    /// Catalog.
    pub catalog: Catalog,
}

impl GeneralizeHoleDomain {
    /// Find statistics for `column` in any table of the catalog that the
    /// tree references.
    fn stats_for(
        &self,
        tree: &DiffTree,
        column: &pi2_sql::ColumnRef,
    ) -> Option<pi2_engine::ColumnStats> {
        let mut tables: Vec<String> = Vec::new();
        tree.root.walk(&mut |n| {
            if let NodeKind::TableNamed { name, .. } = &n.kind {
                tables.push(name.clone());
            }
        });
        tables.iter().find_map(|t| self.catalog.column_stats(t, &column.column))
    }

    fn widened(&self, tree: &DiffTree, node: &DiffNode) -> Option<Domain> {
        let NodeKind::Hole { domain: Domain::Discrete(items), source_column: Some(col), .. } =
            &node.kind
        else {
            return None;
        };
        let stats = self.stats_for(tree, col)?;
        let min = stats.min.clone()?;
        let max = stats.max.clone()?;
        let new = match (&min, &max) {
            (Value::Int(a), Value::Int(b)) => Domain::IntRange { min: *a, max: *b },
            (Value::Float(a), Value::Float(b)) => {
                Domain::FloatRange { min: pi2_sql::F64(*a), max: pi2_sql::F64(*b) }
            }
            (Value::Date(a), Value::Date(b)) => Domain::DateRange { min: *a, max: *b },
            (Value::Str(_), Value::Str(_)) => {
                let values = stats.distinct_values?;
                Domain::Discrete(values.iter().map(Value::to_literal).collect())
            }
            _ => return None,
        };
        // Only generalize when the widened domain still covers the
        // observed literals (it must keep expressing the input queries).
        if items.iter().all(|l| new.contains(l)) && new != Domain::Discrete(items.clone()) {
            Some(new)
        } else {
            None
        }
    }
}

impl Rule for GeneralizeHoleDomain {
    fn name(&self) -> &'static str {
        "generalize-hole-domain"
    }

    fn applications(&self, tree: &DiffTree) -> Vec<NodeId> {
        let mut candidates = Vec::new();
        tree.root.walk(&mut |n| {
            if matches!(
                &n.kind,
                NodeKind::Hole { domain: Domain::Discrete(_), source_column: Some(_), .. }
            ) {
                candidates.push(n.id);
            }
        });
        candidates
            .into_iter()
            .filter(|id| tree.root.find(*id).and_then(|n| self.widened(tree, n)).is_some())
            .collect()
    }

    fn apply(&self, tree: &DiffTree, loc: NodeId) -> Option<DiffTree> {
        let node = tree.root.find(loc)?;
        let new_domain = self.widened(tree, node)?;
        let NodeKind::Hole { default, source_column, .. } = &node.kind else {
            return None;
        };
        let (default, source_column) = (default.clone(), source_column.clone());
        rewrite_at(tree, loc, |_| {
            Some(DiffNode::leaf(NodeKind::Hole { domain: new_domain, default, source_column }))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::Bindings;
    use crate::expresses::expresses;
    use crate::lower::lower_query;
    use crate::merge::merge_queries;
    use pi2_sql::{parse_query, Query};

    fn merged(sqls: &[&str]) -> (DiffTree, Vec<Query>) {
        let queries: Vec<Query> = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        let indexed: Vec<(usize, &Query)> = queries.iter().enumerate().collect();
        (merge_queries(&indexed), queries)
    }

    #[test]
    fn collapse_literal_any_creates_hole() {
        let (tree, queries) =
            merged(&["SELECT p FROM t WHERE a = 1", "SELECT p FROM t WHERE a = 2"]);
        let rule = CollapseLiteralAny;
        let apps = rule.applications(&tree);
        assert_eq!(apps.len(), 1);
        let new = rule.apply(&tree, apps[0]).unwrap();
        let mut holes = 0;
        new.root.walk(&mut |n| {
            if let NodeKind::Hole { domain, source_column, .. } = &n.kind {
                holes += 1;
                assert_eq!(*domain, Domain::Discrete(vec![Literal::Int(1), Literal::Int(2)]));
                assert_eq!(source_column.as_ref().map(|c| c.column.as_str()), Some("a"));
            }
        });
        assert_eq!(holes, 1);
        // Still expresses both inputs.
        for q in &queries {
            assert!(expresses(&new, q).is_some());
        }
    }

    #[test]
    fn factor_common_head_splits_predicate_any() {
        // Build the unfactored ANY(a=1, b=2) via expand, then factor back.
        let (tree, queries) =
            merged(&["SELECT p FROM t WHERE a = 1", "SELECT p FROM t WHERE b = 2"]);
        // The merge already factors; expand to get Figure 3a's shape.
        let expand = ExpandAnyChild;
        let apps = expand.applications(&tree);
        assert!(!apps.is_empty());
        let unfactored = expand.apply(&tree, apps[0]).unwrap();
        // Unfactored: ANY over two `=` predicates.
        let any_over_eq = {
            let mut found = false;
            unfactored.root.walk(&mut |n| {
                if matches!(n.kind, NodeKind::Any)
                    && n.children
                        .iter()
                        .all(|c| matches!(c.kind, NodeKind::Binary(pi2_sql::BinaryOp::Eq)))
                    && n.children.len() == 2
                {
                    found = true;
                }
            });
            found
        };
        assert!(any_over_eq, "{}", unfactored.root);
        for q in &queries {
            assert!(expresses(&unfactored, q).is_some());
        }

        // Factor it back.
        let factor = FactorCommonHead;
        let apps = factor.applications(&unfactored);
        assert!(!apps.is_empty());
        let refactored = factor.apply(&unfactored, apps[0]).unwrap();
        for q in &queries {
            assert!(expresses(&refactored, q).is_some());
        }
    }

    #[test]
    fn expand_then_factor_roundtrip_preserves_expressiveness() {
        let (tree, queries) = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM t GROUP BY a",
        ]);
        let rules = all_rules(None);
        let mut current = tree;
        // Apply a few arbitrary rule applications; expressiveness is invariant.
        for _ in 0..6 {
            let apps = applications(&rules, &current);
            let Some(app) = apps.first() else { break };
            if let Some(next) = rules[app.rule_idx].apply(&current, app.loc) {
                current = next;
            } else {
                break;
            }
            for q in &queries {
                assert!(
                    expresses(&current, q).is_some(),
                    "lost expressiveness of {q} after rules:\n{}",
                    current.root
                );
            }
        }
    }

    #[test]
    fn sort_any_children_canonicalizes() {
        let (tree, _) = merged(&["SELECT p FROM t WHERE b = 2", "SELECT p FROM t WHERE a = 1"]);
        let rule = SortAnyChildren;
        let apps = rule.applications(&tree);
        if let Some(&loc) = apps.first() {
            let sorted = rule.apply(&tree, loc).unwrap();
            assert!(rule.applications(&sorted).iter().all(|l| *l != loc));
        }
    }

    #[test]
    fn generalize_hole_domain_uses_catalog_stats() {
        let catalog = pi2_datasets::toy::default_catalog();
        let (tree, queries) =
            merged(&["SELECT p FROM t WHERE a = 1", "SELECT p FROM t WHERE a = 2"]);
        let collapse = CollapseLiteralAny;
        let tree = collapse.apply(&tree, collapse.applications(&tree)[0]).unwrap();
        let rule = GeneralizeHoleDomain { catalog };
        let apps = rule.applications(&tree);
        assert_eq!(apps.len(), 1);
        let new = rule.apply(&tree, apps[0]).unwrap();
        let mut domain = None;
        new.root.walk(&mut |n| {
            if let NodeKind::Hole { domain: d, .. } = &n.kind {
                domain = Some(d.clone());
            }
        });
        // Toy data has a in 0..5.
        assert_eq!(domain, Some(Domain::IntRange { min: 0, max: 4 }));
        // Widened tree expresses the original queries and new ones.
        for q in &queries {
            assert!(expresses(&new, q).is_some());
        }
        assert!(expresses(&new, &parse_query("SELECT p FROM t WHERE a = 4").unwrap()).is_some());
        assert!(expresses(&new, &parse_query("SELECT p FROM t WHERE a = 9").unwrap()).is_none());
    }

    #[test]
    fn collapse_then_lower_uses_default() {
        let (tree, _) = merged(&["SELECT p FROM t WHERE a = 1", "SELECT p FROM t WHERE a = 2"]);
        let rule = CollapseLiteralAny;
        let new = rule.apply(&tree, rule.applications(&tree)[0]).unwrap();
        let q = lower_query(&new, &Bindings::new()).unwrap();
        assert_eq!(q.to_string(), "SELECT p FROM t WHERE a = 1");
    }
}
