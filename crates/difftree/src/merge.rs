//! Structural merging of queries into a single DiffTree.
//!
//! Merging is bottom-up and positional: nodes with the same label merge
//! their children (lists are aligned with a Needleman–Wunsch pass so that
//! unchanged items pair up and additions become `Opt`s); nodes with
//! different labels become an `Any` over the alternatives. This directly
//! produces the factored forms of the paper's Figure 3(b)/Figure 4 —
//! e.g. merging `WHERE a = 1` with `WHERE b = 2` yields
//! `ANY(a,b) = ANY(1,2)` — and the `Opt` toggles of Figure 7 (a conjunct
//! present in only one query).

use crate::node::{DiffNode, DiffTree, Domain, NodeKind};
use pi2_sql::{Literal, Query};

/// Merge a slice of queries (with their log indices) into one DiffTree by
/// folding pairwise merges in order.
pub fn merge_queries(queries: &[(usize, &Query)]) -> DiffTree {
    assert!(!queries.is_empty(), "merge_queries requires at least one query");
    let mut iter = queries.iter();
    let (first_idx, first) = iter.next().expect("non-empty");
    let mut acc = crate::lift::lift_query(first, *first_idx).root;
    let mut sources = vec![*first_idx];
    for (idx, q) in iter {
        let lifted = crate::lift::lift_query(q, *idx).root;
        acc = merge_nodes(&acc, &lifted);
        sources.push(*idx);
    }
    DiffTree::new(acc, sources)
}

/// Merge two already-built trees (the forest-level MergeTrees rule).
pub fn merge_trees(a: &DiffTree, b: &DiffTree) -> DiffTree {
    let root = merge_nodes(&a.root, &b.root);
    let mut sources = a.source_queries.clone();
    sources.extend(b.source_queries.iter().copied());
    sources.sort_unstable();
    sources.dedup();
    DiffTree::new(root, sources)
}

/// Merge two nodes into one that expresses both.
pub fn merge_nodes(a: &DiffNode, b: &DiffNode) -> DiffNode {
    if a.structurally_eq(b) {
        return a.clone();
    }
    match (&a.kind, &b.kind) {
        // ANY absorbs: an alternative identical to an existing child is
        // dropped; otherwise it is appended (later factoring rules can
        // restructure).
        (NodeKind::Any, NodeKind::Any) => {
            let mut merged = a.clone();
            for c in &b.children {
                absorb_into_any(&mut merged, c);
            }
            merged
        }
        (NodeKind::Any, _) => {
            let mut merged = a.clone();
            absorb_into_any(&mut merged, b);
            merged
        }
        (_, NodeKind::Any) => {
            let mut merged = b.clone();
            absorb_into_any(&mut merged, a);
            merged
        }
        // OPT merges through its child.
        (NodeKind::Opt, NodeKind::Opt) => {
            DiffNode::new(NodeKind::Opt, vec![merge_nodes(&a.children[0], &b.children[0])])
        }
        (NodeKind::Opt, _) => DiffNode::new(NodeKind::Opt, vec![merge_nodes(&a.children[0], b)]),
        (_, NodeKind::Opt) => DiffNode::new(NodeKind::Opt, vec![merge_nodes(a, &b.children[0])]),
        // A hole absorbs literals of a compatible type by widening its domain.
        (NodeKind::Hole { domain, default, source_column }, NodeKind::Lit(l))
            if domain_accepts_type(domain, l) =>
        {
            DiffNode::leaf(NodeKind::Hole {
                domain: widen_domain(domain.clone(), l),
                default: default.clone(),
                source_column: source_column.clone(),
            })
        }
        (NodeKind::Lit(l), NodeKind::Hole { domain, default, source_column })
            if domain_accepts_type(domain, l) =>
        {
            DiffNode::leaf(NodeKind::Hole {
                domain: widen_domain(domain.clone(), l),
                default: default.clone(),
                source_column: source_column.clone(),
            })
        }
        // Comparisons whose literal types disagree must NOT factor into
        // per-operand ANYs: the factored form's mixed picks would be
        // type-invalid queries (`cases = DATE '2021-12-13'`). Keep the
        // whole predicates as alternatives instead. (Found by the
        // pi2-conformance fuzzer; see crates/conformance/corpus.)
        (NodeKind::Binary(op_a), NodeKind::Binary(op_b))
            if op_a == op_b && is_comparison(*op_a) && !comparison_compatible(a, b) =>
        {
            mk_any(a.clone(), b.clone())
        }
        (NodeKind::Between { negated: na }, NodeKind::Between { negated: nb })
            if na == nb && !comparison_compatible(a, b) =>
        {
            mk_any(a.clone(), b.clone())
        }
        (NodeKind::InList { negated: na }, NodeKind::InList { negated: nb })
            if na == nb && !comparison_compatible(a, b) =>
        {
            mk_any(a.clone(), b.clone())
        }
        (ka, kb) if ka == kb => {
            // Same structural label: merge children.
            let children = if ka.is_list() {
                align_merge(&a.children, &b.children)
            } else if a.children.len() == b.children.len() {
                a.children.iter().zip(&b.children).map(|(x, y)| merge_nodes(x, y)).collect()
            } else {
                // Same fixed-arity label with different child counts should
                // not happen for well-formed lifts; fall back to ANY.
                return mk_any(a.clone(), b.clone());
            };
            DiffNode::new(ka.clone(), children)
        }
        _ => mk_any(a.clone(), b.clone()),
    }
}

/// Append `child` to an existing ANY node unless an identical alternative
/// is already present; nested ANYs are flattened.
fn absorb_into_any(any: &mut DiffNode, child: &DiffNode) {
    debug_assert!(matches!(any.kind, NodeKind::Any));
    if matches!(child.kind, NodeKind::Any) {
        for c in &child.children {
            absorb_into_any(any, c);
        }
        return;
    }
    let h = child.structural_hash();
    if !any.children.iter().any(|c| c.structural_hash() == h) {
        any.children.push(child.clone());
    }
}

/// Build an ANY over two alternatives (flattening / deduping).
fn mk_any(a: DiffNode, b: DiffNode) -> DiffNode {
    let mut any = DiffNode::new(NodeKind::Any, Vec::new());
    absorb_into_any(&mut any, &a);
    absorb_into_any(&mut any, &b);
    if any.children.len() == 1 {
        any.children.pop().expect("one child")
    } else {
        any
    }
}

fn mk_opt(x: &DiffNode) -> DiffNode {
    if matches!(x.kind, NodeKind::Opt) {
        x.clone()
    } else {
        DiffNode::new(NodeKind::Opt, vec![x.clone()])
    }
}

fn is_comparison(op: pi2_sql::BinaryOp) -> bool {
    use pi2_sql::BinaryOp::*;
    matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq)
}

/// Coarse comparison-type tag of a literal: Int and Float compare fine
/// with each other, everything else only with itself.
fn lit_tag(l: &Literal) -> Option<u8> {
    match l {
        Literal::Null => None,
        Literal::Bool(_) => Some(0),
        Literal::Int(_) | Literal::Float(_) => Some(1),
        Literal::Str(_) => Some(2),
        Literal::Date(_) => Some(3),
    }
}

fn collect_lit_tags(n: &DiffNode, out: &mut std::collections::BTreeSet<u8>) {
    match &n.kind {
        NodeKind::Lit(l) => {
            out.extend(lit_tag(l));
        }
        NodeKind::Hole { domain, .. } => match domain {
            Domain::IntRange { .. } | Domain::FloatRange { .. } => {
                out.insert(1);
            }
            Domain::DateRange { .. } => {
                out.insert(3);
            }
            Domain::Discrete(items) => {
                for l in items {
                    out.extend(lit_tag(l));
                }
            }
        },
        _ => {
            for c in &n.children {
                collect_lit_tags(c, out);
            }
        }
    }
}

/// Can two comparison predicates factor operand-wise without risking
/// cross-typed mixed picks? True when the literals (and hole domains)
/// across both sides are all of one comparison type; columns carry no tag
/// and never block factoring.
fn comparison_compatible(a: &DiffNode, b: &DiffNode) -> bool {
    let mut tags = std::collections::BTreeSet::new();
    collect_lit_tags(a, &mut tags);
    collect_lit_tags(b, &mut tags);
    tags.len() <= 1
}

fn domain_accepts_type(domain: &Domain, lit: &Literal) -> bool {
    match (domain, lit) {
        (Domain::IntRange { .. }, Literal::Int(_)) => true,
        (Domain::FloatRange { .. }, Literal::Float(_) | Literal::Int(_)) => true,
        (Domain::DateRange { .. }, Literal::Date(_)) => true,
        (Domain::Discrete(items), l) => items
            .first()
            .map(|f| std::mem::discriminant(f) == std::mem::discriminant(l))
            .unwrap_or(true),
        _ => false,
    }
}

fn widen_domain(domain: Domain, lit: &Literal) -> Domain {
    match (domain, lit) {
        (Domain::Discrete(mut items), l) => {
            if !items.contains(l) {
                items.push(l.clone());
            }
            Domain::Discrete(items)
        }
        (Domain::IntRange { min, max }, Literal::Int(v)) => {
            Domain::IntRange { min: min.min(*v), max: max.max(*v) }
        }
        (Domain::FloatRange { min, max }, Literal::Float(v)) => {
            Domain::FloatRange { min: min.min(*v), max: max.max(*v) }
        }
        (Domain::FloatRange { min, max }, Literal::Int(v)) => {
            let f = pi2_sql::F64(*v as f64);
            Domain::FloatRange { min: min.min(f), max: max.max(f) }
        }
        (Domain::DateRange { min, max }, Literal::Date(d)) => {
            Domain::DateRange { min: min.min(*d), max: max.max(*d) }
        }
        (d, _) => d,
    }
}

// ---- list alignment ---------------------------------------------------------

/// Cost of opening a gap (an item present on one side only → `Opt`).
const GAP_COST: f64 = 0.75;

/// Estimated cost of merging two sibling candidates; lower is better.
fn pair_cost(a: &DiffNode, b: &DiffNode) -> f64 {
    if a.structurally_eq(b) {
        return 0.0;
    }
    // See through OPT wrappers with a small discount so a previously
    // optional item re-pairs with its concrete twin.
    if let (NodeKind::Opt, _) = (&a.kind, &b.kind) {
        return 0.05 + 0.9 * pair_cost(&a.children[0], b);
    }
    if let (_, NodeKind::Opt) = (&a.kind, &b.kind) {
        return 0.05 + 0.9 * pair_cost(a, &b.children[0]);
    }
    // ANY pairs well with anything that pairs with one of its alternatives.
    if matches!(a.kind, NodeKind::Any) {
        return 0.1
            + 0.8
                * a.children
                    .iter()
                    .map(|c| pair_cost(c, b))
                    .fold(f64::INFINITY, f64::min)
                    .min(1.0);
    }
    if matches!(b.kind, NodeKind::Any) {
        return pair_cost(b, a);
    }
    if matches!(
        (&a.kind, &b.kind),
        (NodeKind::Hole { .. }, NodeKind::Lit(_)) | (NodeKind::Lit(_), NodeKind::Hole { .. })
    ) {
        return 0.1;
    }
    if a.kind == b.kind {
        let n = a.children.len().max(b.children.len()).max(1);
        let matches = a
            .children
            .iter()
            .zip(&b.children)
            .filter(|(x, y)| x.structural_hash() == y.structural_hash())
            .count();
        0.15 + 0.65 * (1.0 - matches as f64 / n as f64)
    } else {
        1.0
    }
}

/// Needleman–Wunsch alignment of two child lists; aligned pairs merge,
/// gaps become `Opt`s.
fn align_merge(xs: &[DiffNode], ys: &[DiffNode]) -> Vec<DiffNode> {
    let n = xs.len();
    let m = ys.len();
    // dp[i][j] = min cost to align xs[i..] with ys[j..].
    let mut dp = vec![vec![0.0f64; m + 1]; n + 1];
    for i in (0..n).rev() {
        dp[i][m] = dp[i + 1][m] + GAP_COST;
    }
    for j in (0..m).rev() {
        dp[n][j] = dp[n][j + 1] + GAP_COST;
    }
    let mut costs = vec![vec![0.0f64; m]; n];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            costs[i][j] = pair_cost(&xs[i], &ys[j]);
            dp[i][j] = (dp[i + 1][j + 1] + costs[i][j])
                .min(dp[i + 1][j] + GAP_COST)
                .min(dp[i][j + 1] + GAP_COST);
        }
    }
    // Reconstruct.
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n || j < m {
        if i < n && j < m && (dp[i + 1][j + 1] + costs[i][j] <= dp[i][j] + 1e-12) {
            out.push(merge_nodes(&xs[i], &ys[j]));
            i += 1;
            j += 1;
        } else if i < n && (j == m || dp[i + 1][j] + GAP_COST <= dp[i][j] + 1e-12) {
            out.push(mk_opt(&xs[i]));
            i += 1;
        } else {
            out.push(mk_opt(&ys[j]));
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::{Binding, Bindings};
    use crate::lower::lower_query;
    use pi2_sql::parse_query;

    fn merge_sql(sqls: &[&str]) -> DiffTree {
        let queries: Vec<Query> = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        let indexed: Vec<(usize, &Query)> = queries.iter().enumerate().collect();
        merge_queries(&indexed)
    }

    #[test]
    fn identical_queries_merge_without_choices() {
        let t = merge_sql(&["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 1"]);
        assert_eq!(t.root.choice_count(), 0);
    }

    #[test]
    fn fig3_predicate_merge_factors_operands() {
        // Q1: WHERE a = 1; Q2: WHERE b = 2 — same `=` root, so merging
        // produces per-operand ANYs (Figure 3b).
        let t = merge_sql(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        assert_eq!(t.root.choice_count(), 2, "expected two ANY nodes:\n{}", t.root);
        // The WHERE slot holds one conjunct rooted at `=`.
        let where_node = &t.root.children[2];
        assert_eq!(where_node.children.len(), 1);
        let pred = &where_node.children[0];
        assert!(matches!(pred.kind, NodeKind::Binary(pi2_sql::BinaryOp::Eq)));
        assert!(matches!(pred.children[0].kind, NodeKind::Any));
        assert!(matches!(pred.children[1].kind, NodeKind::Any));
    }

    #[test]
    fn fig4_merge_adds_opt_where_and_any_projection() {
        // Q3 projects `a` and has no WHERE: merging with Q1/Q2 should give
        // an ANY in the SELECT clause and an OPT around the predicate
        // (Figure 4).
        let t = merge_sql(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM t GROUP BY a",
        ]);
        let where_node = &t.root.children[2];
        assert_eq!(where_node.children.len(), 1);
        assert!(matches!(where_node.children[0].kind, NodeKind::Opt), "{}", t.root);
        // Projection's first item contains an ANY over columns p / a.
        let proj = &t.root.children[0];
        let first = &proj.children[0];
        assert!(matches!(first.kind, NodeKind::SelectItem { .. }));
        assert!(matches!(first.children[0].kind, NodeKind::Any));
    }

    #[test]
    fn merged_tree_expresses_both_inputs() {
        let t = merge_sql(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        // Default bindings give the first query.
        let q0 = lower_query(&t, &Bindings::new()).unwrap();
        assert_eq!(q0.to_string(), "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p");
        // Picking the second alternative on both ANYs gives the second.
        let ids = t.choice_ids();
        let mut b = Bindings::new();
        for id in ids {
            b.set(id, Binding::Pick(1));
        }
        let q1 = lower_query(&t, &b).unwrap();
        assert_eq!(q1.to_string(), "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p");
        // The factored tree also generalizes: mixed picks are valid queries
        // beyond the input log (paper: "SELECT p, count(*) WHERE b = 1").
        let ids = t.choice_ids();
        let mixed = Bindings::new().with(ids[0], Binding::Pick(1)).with(ids[1], Binding::Pick(0));
        let qm = lower_query(&t, &mixed).unwrap();
        assert_eq!(qm.to_string(), "SELECT p, count(*) FROM t WHERE b = 1 GROUP BY p");
    }

    #[test]
    fn different_date_windows_merge_literal_anys() {
        let t = merge_sql(&[
            "SELECT date, sum(cases) FROM covid WHERE date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' GROUP BY date",
            "SELECT date, sum(cases) FROM covid WHERE date BETWEEN DATE '2021-12-01' AND DATE '2021-12-15' GROUP BY date",
        ]);
        // Two ANYs: one per BETWEEN endpoint.
        assert_eq!(t.root.choice_count(), 2, "{}", t.root);
    }

    #[test]
    fn unrelated_queries_merge_still_expresses_both() {
        let t = merge_sql(&["SELECT a FROM t", "SELECT b FROM u WHERE x = 1 GROUP BY b"]);
        // FROM differs (t vs u) -> ANY inside FROM; plus projection/where
        // differences. The default lowering is a valid mixture, and the
        // tree must still express both inputs exactly.
        let q0 = lower_query(&t, &Bindings::new()).unwrap();
        assert!(q0.to_string().starts_with("SELECT a FROM t"));
        for sql in ["SELECT a FROM t", "SELECT b FROM u WHERE x = 1 GROUP BY b"] {
            let q = parse_query(sql).unwrap();
            assert!(crate::expresses::expresses(&t, &q).is_some(), "cannot express {sql}");
        }
    }

    #[test]
    fn added_conjunct_becomes_opt() {
        let t =
            merge_sql(&["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 1 AND y = 2"]);
        let where_node = &t.root.children[2];
        assert_eq!(where_node.children.len(), 2);
        let opts = where_node.children.iter().filter(|c| matches!(c.kind, NodeKind::Opt)).count();
        assert_eq!(opts, 1, "{}", t.root);
    }

    #[test]
    fn cross_typed_comparisons_do_not_factor() {
        // `cases = 49916` vs `date = DATE '…'`: factoring operand-wise
        // would let a mixed pick produce `cases = DATE '…'`. The merge
        // must keep whole predicates as ANY alternatives, so that *every*
        // combination of picks lowers to a well-typed query.
        let t = merge_sql(&[
            "SELECT state, max(cases) FROM covid WHERE cases = 49916 GROUP BY state",
            "SELECT state, max(cases) FROM covid WHERE date = DATE '2021-12-13' GROUP BY state",
        ]);
        let mut cross_typed_any = false;
        t.root.walk(&mut |n| {
            if matches!(n.kind, NodeKind::Binary(pi2_sql::BinaryOp::Eq))
                && n.children.iter().any(|c| matches!(c.kind, NodeKind::Any))
            {
                cross_typed_any = true;
            }
        });
        assert!(!cross_typed_any, "cross-typed comparison factored operand-wise:\n{}", t.root);
        // The WHERE slot holds one ANY over the two complete predicates.
        let where_node = &t.root.children[2];
        let pred = &where_node.children[0];
        assert!(matches!(pred.kind, NodeKind::Any), "{}", t.root);
        assert_eq!(pred.children.len(), 2);
        // Both inputs stay expressible.
        for sql in [
            "SELECT state, max(cases) FROM covid WHERE cases = 49916 GROUP BY state",
            "SELECT state, max(cases) FROM covid WHERE date = DATE '2021-12-13' GROUP BY state",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(crate::expresses::expresses(&t, &q).is_some(), "cannot express {sql}");
        }
    }

    #[test]
    fn same_typed_comparisons_still_factor() {
        // The Figure 3(b) factoring must survive the cross-type guard:
        // both literals are numeric, so per-operand ANYs are well-typed.
        let t = merge_sql(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        assert_eq!(t.root.choice_count(), 2, "{}", t.root);
    }

    #[test]
    fn merge_is_idempotent_on_repeat() {
        let q = parse_query("SELECT a FROM t WHERE x = 1").unwrap();
        let t1 = merge_queries(&[(0, &q)]);
        let t2 = merge_queries(&[(0, &q), (1, &q), (2, &q)]);
        assert_eq!(t1.structural_hash(), t2.structural_hash());
    }

    #[test]
    fn hole_absorbs_literal() {
        let hole = DiffNode::leaf(NodeKind::Hole {
            domain: Domain::IntRange { min: 1, max: 3 },
            default: Literal::Int(1),
            source_column: None,
        });
        let lit = DiffNode::leaf(NodeKind::Lit(Literal::Int(9)));
        let merged = merge_nodes(&hole, &lit);
        let NodeKind::Hole { domain, .. } = &merged.kind else { panic!() };
        assert_eq!(*domain, Domain::IntRange { min: 1, max: 9 });
    }

    #[test]
    fn three_way_merge_dedups_any_children() {
        let t = merge_sql(&[
            "SELECT a FROM t WHERE p = 1",
            "SELECT a FROM t WHERE p = 2",
            "SELECT a FROM t WHERE p = 1",
        ]);
        // The literal ANY has exactly two alternatives (1 and 2).
        let mut any_arities = Vec::new();
        t.root.walk(&mut |n| {
            if matches!(n.kind, NodeKind::Any) {
                any_arities.push(n.children.len());
            }
        });
        assert_eq!(any_arities, vec![2]);
    }
}
