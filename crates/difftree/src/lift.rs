//! Lifting SQL queries into DiffTrees.
//!
//! Lifting is lossless up to normalization: `lower(lift(q), defaults)`
//! reproduces `normalize(q)` exactly (verified by property tests). Queries
//! are normalized first so that semantically-identical spellings lift to
//! identical trees and merge without spurious choice nodes.

use crate::node::{DiffNode, DiffTree, NodeKind};
use pi2_sql::visit::conjuncts;
use pi2_sql::{normalize, Expr, Query, SelectItem, TableRef};

/// Lift one query into a single-query DiffTree. `index` records the
/// query's position in the input log.
pub fn lift_query(q: &Query, index: usize) -> DiffTree {
    let n = normalize::normalized(q);
    DiffTree::new(lift_query_node(&n), vec![index])
}

/// Lift a query to a bare node (used recursively for subqueries).
pub(crate) fn lift_query_node(q: &Query) -> DiffNode {
    let projection =
        DiffNode::new(NodeKind::Projection, q.projection.iter().map(lift_select_item).collect());
    let from = DiffNode::new(NodeKind::From, q.from.iter().map(lift_table_ref).collect());
    let where_node = DiffNode::new(
        NodeKind::Where,
        q.where_clause.as_ref().map(lift_conjuncts).unwrap_or_default(),
    );
    let group_by = DiffNode::new(NodeKind::GroupBy, q.group_by.iter().map(lift_expr).collect());
    let having =
        DiffNode::new(NodeKind::Having, q.having.as_ref().map(lift_conjuncts).unwrap_or_default());
    let order_by = DiffNode::new(
        NodeKind::OrderBy,
        q.order_by
            .iter()
            .map(|o| DiffNode::new(NodeKind::OrderItem { dir: o.dir }, vec![lift_expr(&o.expr)]))
            .collect(),
    );
    let limit = DiffNode::new(
        NodeKind::LimitSlot,
        q.limit.map(|l| vec![DiffNode::leaf(NodeKind::Limit(l))]).unwrap_or_default(),
    );
    let offset = DiffNode::new(
        NodeKind::OffsetSlot,
        q.offset.map(|o| vec![DiffNode::leaf(NodeKind::Offset(o))]).unwrap_or_default(),
    );
    DiffNode::new(
        NodeKind::Query { distinct: q.distinct },
        vec![projection, from, where_node, group_by, having, order_by, limit, offset],
    )
}

fn lift_conjuncts(pred: &Expr) -> Vec<DiffNode> {
    conjuncts(pred).into_iter().map(lift_expr).collect()
}

fn lift_select_item(item: &SelectItem) -> DiffNode {
    match item {
        SelectItem::Wildcard => DiffNode::leaf(NodeKind::Wildcard),
        SelectItem::QualifiedWildcard(t) => DiffNode::leaf(NodeKind::QualifiedWildcard(t.clone())),
        SelectItem::Expr { expr, alias } => {
            DiffNode::new(NodeKind::SelectItem { alias: alias.clone() }, vec![lift_expr(expr)])
        }
    }
}

fn lift_table_ref(t: &TableRef) -> DiffNode {
    match t {
        TableRef::Named { name, alias } => {
            DiffNode::leaf(NodeKind::TableNamed { name: name.clone(), alias: alias.clone() })
        }
        TableRef::Subquery { query, alias } => DiffNode::new(
            NodeKind::TableSubquery { alias: alias.clone() },
            vec![lift_query_node(query)],
        ),
        TableRef::Join { left, right, kind, on } => {
            let on_node =
                DiffNode::new(NodeKind::On, on.as_ref().map(lift_conjuncts).unwrap_or_default());
            DiffNode::new(
                NodeKind::Join { kind: *kind },
                vec![lift_table_ref(left), lift_table_ref(right), on_node],
            )
        }
    }
}

pub(crate) fn lift_expr(e: &Expr) -> DiffNode {
    match e {
        Expr::Column(c) => DiffNode::leaf(NodeKind::Column(c.clone())),
        Expr::Literal(l) => DiffNode::leaf(NodeKind::Lit(l.clone())),
        Expr::Wildcard => DiffNode::leaf(NodeKind::Wildcard),
        Expr::Unary { op, expr } => DiffNode::new(NodeKind::Unary(*op), vec![lift_expr(expr)]),
        Expr::Binary { left, op, right } => {
            DiffNode::new(NodeKind::Binary(*op), vec![lift_expr(left), lift_expr(right)])
        }
        Expr::Function { name, args, distinct } => DiffNode::new(
            NodeKind::Function { name: name.clone(), distinct: *distinct },
            args.iter().map(lift_expr).collect(),
        ),
        Expr::Case { operand, branches, else_expr } => {
            let operand_node = DiffNode::new(
                NodeKind::CaseOperand,
                operand.as_ref().map(|o| vec![lift_expr(o)]).unwrap_or_default(),
            );
            let branches_node = DiffNode::new(
                NodeKind::CaseBranches,
                branches
                    .iter()
                    .map(|(w, t)| {
                        DiffNode::new(NodeKind::CaseBranch, vec![lift_expr(w), lift_expr(t)])
                    })
                    .collect(),
            );
            let else_node = DiffNode::new(
                NodeKind::CaseElse,
                else_expr.as_ref().map(|e| vec![lift_expr(e)]).unwrap_or_default(),
            );
            DiffNode::new(NodeKind::Case, vec![operand_node, branches_node, else_node])
        }
        Expr::InList { expr, list, negated } => {
            let mut children = vec![lift_expr(expr)];
            children.extend(list.iter().map(lift_expr));
            DiffNode::new(NodeKind::InList { negated: *negated }, children)
        }
        Expr::InSubquery { expr, subquery, negated } => DiffNode::new(
            NodeKind::InSubquery { negated: *negated },
            vec![lift_expr(expr), lift_query_node(subquery)],
        ),
        Expr::Exists { subquery, negated } => {
            DiffNode::new(NodeKind::Exists { negated: *negated }, vec![lift_query_node(subquery)])
        }
        Expr::Between { expr, low, high, negated } => DiffNode::new(
            NodeKind::Between { negated: *negated },
            vec![lift_expr(expr), lift_expr(low), lift_expr(high)],
        ),
        Expr::ScalarSubquery(q) => {
            DiffNode::new(NodeKind::ScalarSubquery, vec![lift_query_node(q)])
        }
        Expr::IsNull { expr, negated } => {
            DiffNode::new(NodeKind::IsNull { negated: *negated }, vec![lift_expr(expr)])
        }
        Expr::Like { expr, pattern, negated } => DiffNode::new(
            NodeKind::Like { negated: *negated },
            vec![lift_expr(expr), lift_expr(pattern)],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_sql::parse_query;

    #[test]
    fn query_node_has_eight_slots() {
        let q = parse_query("SELECT a FROM t").unwrap();
        let t = lift_query(&q, 0);
        assert!(matches!(t.root.kind, NodeKind::Query { distinct: false }));
        assert_eq!(t.root.children.len(), 8);
        assert_eq!(t.root.children[0].kind, NodeKind::Projection);
        assert_eq!(t.root.children[2].kind, NodeKind::Where);
        assert!(t.root.children[2].children.is_empty());
    }

    #[test]
    fn where_children_are_conjuncts() {
        let q = parse_query("SELECT a FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)").unwrap();
        let t = lift_query(&q, 0);
        assert_eq!(t.root.children[2].children.len(), 3);
    }

    #[test]
    fn identical_spellings_lift_identically() {
        let a = lift_query(&parse_query("SELECT x FROM t WHERE a = 1 AND b = 2").unwrap(), 0);
        let b = lift_query(&parse_query("SELECT x FROM t WHERE b = 2 AND a = 1").unwrap(), 0);
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn lifts_no_choice_nodes() {
        let q = parse_query(
            "SELECT a, count(*) FROM t JOIN u ON t.id = u.id WHERE a IN (SELECT b FROM v) GROUP BY a",
        )
        .unwrap();
        let t = lift_query(&q, 0);
        assert_eq!(t.root.choice_count(), 0);
    }

    #[test]
    fn subqueries_lift_recursively() {
        let q = parse_query("SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)").unwrap();
        let t = lift_query(&q, 0);
        let mut query_nodes = 0;
        t.root.walk(&mut |n| {
            if matches!(n.kind, NodeKind::Query { .. }) {
                query_nodes += 1;
            }
        });
        assert_eq!(query_nodes, 2);
    }
}
