#![warn(missing_docs)]

//! # pi2-difftree
//!
//! DiffTrees are PI2's central data structure (paper §2): a generalization
//! of SQL abstract syntax trees whose *choice nodes* encode the variation
//! across a sequence of queries.
//!
//! * [`node::NodeKind::Any`] — choose exactly one of the children
//!   (paper: "the ANY choice node can choose one of its children").
//! * [`node::NodeKind::Opt`] — include or exclude the child (paper: "the
//!   toggle corresponds to an OPT choice node").
//! * [`node::NodeKind::Hole`] — a typed value hole with an explicit domain;
//!   the collapsed form of an `Any` over literals, generalizable to a whole
//!   column's domain ("choice nodes generalize SQL parameterized literals
//!   to syntactic structures" — holes are the literal case, `Any`/`Opt`
//!   the structural cases).
//!
//! The crate provides:
//! * lifting SQL queries into DiffTrees ([`lift`]) and lowering them back
//!   under a choice-node [`Bindings`] ([`lower`]),
//! * n-way structural merging of query logs ([`merge`]),
//! * the expressiveness check — can a DiffTree express a given query, and
//!   with which bindings ([`expresses`]),
//! * choice-node enumeration with interface-relevant context ([`choices`]),
//! * the tree transformation rule library ([`rules`]), and
//! * forests of DiffTrees partitioning a query log ([`forest`]).
//!
//! ```
//! use pi2_difftree::{merge_queries, expresses, lower_query, Bindings};
//!
//! let q1 = pi2_sql::parse_query("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p").unwrap();
//! let q2 = pi2_sql::parse_query("SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p").unwrap();
//! let tree = merge_queries(&[(0, &q1), (1, &q2)]);
//! assert_eq!(tree.root.choice_count(), 1);            // one ANY over the literals
//! assert!(expresses(&tree, &q1).is_some());           // expresses both inputs…
//! assert!(expresses(&tree, &q2).is_some());
//! let default = lower_query(&tree, &Bindings::new()).unwrap();
//! assert_eq!(default, pi2_sql::normalize::normalized(&q1));
//! ```

pub mod bindings;
pub mod choices;
pub mod expresses;
pub mod forest;
pub mod lift;
pub mod lower;
pub mod merge;
pub mod node;
pub mod rules;

pub use bindings::{Binding, Bindings};
pub use choices::{choices, Choice, ChoiceContext, ChoiceKind, Clause, RangeRole};
pub use expresses::{default_bindings, expresses};
pub use forest::DiffForest;
pub use lift::lift_query;
pub use lower::lower_query;
pub use merge::merge_queries;
pub use node::{DiffNode, DiffTree, Domain, NodeId, NodeKind};
pub use rules::{all_rules, Rule, RuleApplication};
pub use rules::{
    CollapseLiteralAny, ExpandAnyChild, FactorCommonHead, GeneralizeHoleDomain,
    ParameterizeLiteral, SortAnyChildren,
};
