//! Choice-node enumeration with interface-relevant context.
//!
//! The interaction mapper (in `pi2-interface`) needs more than the bare
//! choice nodes: it matches each choice's *schema* — value type, domain
//! shape, which column it constrains, whether it is half of a range pair —
//! against widget and visualization-interaction capabilities. This module
//! computes that context in one walk.

use crate::node::{DiffNode, DiffTree, Domain, NodeId, NodeKind};
use pi2_sql::{BinaryOp, ColumnRef, Literal};
use serde::{Deserialize, Serialize};

/// What kind of choice a node exposes, with display material.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChoiceKind {
    /// Choose one of `options` (pre-rendered labels).
    Any {
        /// Display labels of the selectable options.
        options: Vec<String>,
    },
    /// Toggle inclusion of `summary`.
    Opt {
        /// Display label of the optional subtree.
        summary: String,
    },
    /// Bind a value from `domain`.
    Hole {
        /// The value domain.
        domain: Domain,
        /// Column the value constrains, when known.
        source_column: Option<ColumnRef>,
    },
}

/// Which clause of the query the choice lives in (used for widget labels
/// and cost weighting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Clause {
    /// The SELECT list.
    Projection,
    /// The FROM clause.
    From,
    /// The WHERE clause.
    Where,
    /// The GROUP BY clause.
    GroupBy,
    /// The HAVING clause.
    Having,
    /// The ORDER BY clause.
    OrderBy,
    /// The LIMIT clause.
    Limit,
    /// Inside a join's ON condition.
    On,
    /// The root itself (ANY over whole queries → tabs).
    Root,
}

/// The role of a hole inside a range predicate over one column: the low or
/// high endpoint. Two paired endpoints on the same column map naturally to
/// a range slider, or to pan/zoom / brushing when the column is on a chart
/// axis (paper Figures 1c, 5, 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeRole {
    /// The column name.
    pub column: ColumnRef,
    /// Is low.
    pub is_low: bool,
    /// The partner endpoint's choice node.
    pub partner: NodeId,
}

/// Context attached to each choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChoiceContext {
    /// The clause the choice lives in.
    pub clause: Clause,
    /// Column the choice's value is compared against, when evident.
    pub compared_column: Option<ColumnRef>,
    /// Set when the choice is one endpoint of a range predicate.
    pub range_role: Option<RangeRole>,
    /// Nesting depth (subquery levels) — deeper choices cost more to
    /// understand.
    pub depth: usize,
    /// Set when the choice is an optional member of an `IN` list: the id
    /// of the enclosing IN-list node. Sibling members with the same group
    /// map to one multi-select widget (the full paper's SUBSET choices).
    pub in_list_group: Option<NodeId>,
}

/// One choice node with its kind and context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Choice {
    /// Stable identifier.
    pub id: NodeId,
    /// The kind.
    pub kind: ChoiceKind,
    /// Interface-relevant context.
    pub context: ChoiceContext,
}

/// Enumerate every choice node in the tree, in pre-order, with context.
pub fn choices(tree: &DiffTree) -> Vec<Choice> {
    let mut out = Vec::new();
    walk(
        &tree.root,
        &Ctx { clause: Clause::Root, compared: None, query_levels: 0, in_list_group: None },
        &mut out,
    );
    pair_ranges(&tree.root, &mut out);
    out
}

struct Ctx {
    clause: Clause,
    compared: Option<ColumnRef>,
    /// Number of enclosing Query nodes (the top-level query is level 1).
    query_levels: usize,
    /// Enclosing IN-list node id, when directly inside its member list.
    in_list_group: Option<NodeId>,
}

impl Ctx {
    /// Subquery nesting depth: 0 at the top level.
    fn depth(&self) -> usize {
        self.query_levels.saturating_sub(1)
    }
}

fn walk(node: &DiffNode, ctx: &Ctx, out: &mut Vec<Choice>) {
    match &node.kind {
        NodeKind::Any => out.push(Choice {
            id: node.id,
            kind: ChoiceKind::Any { options: node.children.iter().map(|c| c.summary()).collect() },
            context: ChoiceContext {
                clause: ctx.clause,
                compared_column: ctx.compared.clone(),
                range_role: None,
                depth: ctx.depth(),
                in_list_group: ctx.in_list_group,
            },
        }),
        NodeKind::Opt => out.push(Choice {
            id: node.id,
            kind: ChoiceKind::Opt {
                summary: node.children.first().map(|c| c.summary()).unwrap_or_default(),
            },
            context: ChoiceContext {
                clause: ctx.clause,
                compared_column: ctx.compared.clone(),
                range_role: None,
                depth: ctx.depth(),
                in_list_group: ctx.in_list_group,
            },
        }),
        NodeKind::Hole { domain, source_column, .. } => {
            out.push(Choice {
                id: node.id,
                kind: ChoiceKind::Hole {
                    domain: domain.clone(),
                    source_column: source_column.clone().or_else(|| ctx.compared.clone()),
                },
                context: ChoiceContext {
                    clause: ctx.clause,
                    compared_column: ctx.compared.clone().or_else(|| source_column.clone()),
                    range_role: None,
                    depth: ctx.depth(),
                    in_list_group: ctx.in_list_group,
                },
            });
        }
        _ => {}
    }

    // Compute the context for children.
    for (i, child) in node.children.iter().enumerate() {
        let clause = match &node.kind {
            NodeKind::Query { .. } => match i {
                0 => Clause::Projection,
                1 => Clause::From,
                2 => Clause::Where,
                3 => Clause::GroupBy,
                4 => Clause::Having,
                5 => Clause::OrderBy,
                _ => Clause::Limit,
            },
            _ => ctx.clause,
        };
        // Comparison context: `col <op> <child>` or BETWEEN over a column.
        let compared = match &node.kind {
            NodeKind::Binary(op) if op.is_comparison() => {
                other_operand_column(node, i).or_else(|| ctx.compared.clone())
            }
            NodeKind::Between { .. } if i > 0 => {
                column_of(&node.children[0]).or_else(|| ctx.compared.clone())
            }
            NodeKind::InList { .. } if i > 0 => {
                column_of(&node.children[0]).or_else(|| ctx.compared.clone())
            }
            _ => ctx.compared.clone(),
        };
        let query_levels = ctx.query_levels + matches!(node.kind, NodeKind::Query { .. }) as usize;
        let in_list_group = match &node.kind {
            NodeKind::InList { .. } if i > 0 => Some(node.id),
            _ => None,
        };
        walk(child, &Ctx { clause, compared, query_levels, in_list_group }, out);
    }
}

/// The column on the *other* side of a binary comparison, if child `i` is
/// one operand and the other operand is a column.
fn other_operand_column(node: &DiffNode, i: usize) -> Option<ColumnRef> {
    let other = node.children.get(1 - i)?;
    column_of(other)
}

fn column_of(node: &DiffNode) -> Option<ColumnRef> {
    match &node.kind {
        NodeKind::Column(c) => Some(c.clone()),
        // An ANY over columns (the factored Figure 3(b) form) still
        // constrains a column; use the first alternative as the
        // representative for domain/widget purposes.
        NodeKind::Any => node.children.iter().find_map(|c| match &c.kind {
            NodeKind::Column(col) => Some(col.clone()),
            _ => None,
        }),
        _ => None,
    }
}

/// The numeric view of a choice node's default value (dates as day
/// numbers), used to prefer non-inverted range pairings. `None` for
/// choices without a single numeric default (ANY / OPT / text holes).
fn choice_default(n: &DiffNode) -> Option<f64> {
    match &n.kind {
        NodeKind::Hole { default, .. } => match default {
            Literal::Int(v) => Some(*v as f64),
            Literal::Float(f) => Some(f.0),
            Literal::Date(d) => Some(d.0 as f64),
            _ => None,
        },
        _ => None,
    }
}

/// Detect range pairs and fill in [`ChoiceContext::range_role`]:
/// 1. `col BETWEEN <choice> AND <choice>` — endpoints of the BETWEEN.
/// 2. `col >= <choice>` and `col <= <choice>` as sibling conjuncts.
fn pair_ranges(root: &DiffNode, out: &mut [Choice]) {
    let mut pairs: Vec<(NodeId, NodeId, ColumnRef)> = Vec::new();

    root.walk(&mut |n| {
        // Case 1: BETWEEN with a column probe and choice endpoints.
        if let NodeKind::Between { .. } = n.kind {
            if let Some(col) = column_of(&n.children[0]) {
                let lo = &n.children[1];
                let hi = &n.children[2];
                if lo.kind.is_choice() && hi.kind.is_choice() {
                    pairs.push((lo.id, hi.id, col));
                }
            }
        }
        // Case 2: sibling conjuncts `col >= x` / `col <= y` in Where/Having/On.
        if matches!(n.kind, NodeKind::Where | NodeKind::Having | NodeKind::On) {
            let mut lows: Vec<(ColumnRef, NodeId, Option<f64>)> = Vec::new();
            let mut highs: Vec<(ColumnRef, NodeId, Option<f64>)> = Vec::new();
            for c in &n.children {
                if let NodeKind::Binary(op) = &c.kind {
                    if let (Some(col), choice) = (column_of(&c.children[0]), &c.children[1]) {
                        if choice.kind.is_choice() {
                            let def = choice_default(choice);
                            match op {
                                BinaryOp::GtEq | BinaryOp::Gt => lows.push((col, choice.id, def)),
                                BinaryOp::LtEq | BinaryOp::Lt => highs.push((col, choice.id, def)),
                                _ => {}
                            }
                        }
                    }
                }
            }
            // One-to-one pairing: each high endpoint joins at most one low.
            // A query can carry several bounds on the same column
            // (`w >= 1 AND w <= 1 AND w >= 8`); pairing a high with every
            // low would bind one node to two range widgets, and pairing
            // `>= 8` with `<= 1` makes an inverted window whose pan/zoom
            // clamping is lossy. Prefer pairs whose defaults satisfy
            // lo <= hi; leftovers stay single holes.
            let mut used_high = vec![false; highs.len()];
            let mut used_low = vec![false; lows.len()];
            for ordered_pass in [true, false] {
                for (li, (lc, lid, ldef)) in lows.iter().enumerate() {
                    if used_low[li] {
                        continue;
                    }
                    let hit = highs.iter().enumerate().position(|(hi, (hc, _, hdef))| {
                        if used_high[hi] || hc != lc {
                            return false;
                        }
                        let ordered = match (ldef, hdef) {
                            (Some(l), Some(h)) => l <= h,
                            _ => true,
                        };
                        ordered || !ordered_pass
                    });
                    if let Some(hi) = hit {
                        used_low[li] = true;
                        used_high[hi] = true;
                        pairs.push((*lid, highs[hi].1, lc.clone()));
                    }
                }
            }
        }
    });

    for (lo, hi, col) in pairs {
        for choice in out.iter_mut() {
            if choice.id == lo {
                choice.context.range_role =
                    Some(RangeRole { column: col.clone(), is_low: true, partner: hi });
                choice.context.compared_column.get_or_insert_with(|| col.clone());
            } else if choice.id == hi {
                choice.context.range_role =
                    Some(RangeRole { column: col.clone(), is_low: false, partner: lo });
                choice.context.compared_column.get_or_insert_with(|| col.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_queries;
    use pi2_sql::{parse_query, Query};

    fn merged(sqls: &[&str]) -> DiffTree {
        let queries: Vec<Query> = sqls.iter().map(|s| parse_query(s).unwrap()).collect();
        let indexed: Vec<(usize, &Query)> = queries.iter().enumerate().collect();
        merge_queries(&indexed)
    }

    #[test]
    fn enumerates_anys_with_option_labels() {
        let tree = merged(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
        ]);
        let cs = choices(&tree);
        assert_eq!(cs.len(), 2);
        let ChoiceKind::Any { options } = &cs[0].kind else { panic!("{:?}", cs[0]) };
        assert_eq!(options, &vec!["a".to_string(), "b".to_string()]);
        assert_eq!(cs[0].context.clause, Clause::Where);
    }

    #[test]
    fn literal_any_records_compared_column() {
        let tree = merged(&["SELECT p FROM t WHERE a = 1", "SELECT p FROM t WHERE a = 2"]);
        let cs = choices(&tree);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].context.compared_column, Some(ColumnRef::bare("a")));
    }

    #[test]
    fn between_endpoints_pair_as_range() {
        let tree = merged(&[
            "SELECT date, sum(cases) FROM covid WHERE date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' GROUP BY date",
            "SELECT date, sum(cases) FROM covid WHERE date BETWEEN DATE '2021-12-01' AND DATE '2021-12-15' GROUP BY date",
        ]);
        let cs = choices(&tree);
        assert_eq!(cs.len(), 2);
        let lo =
            cs.iter().find(|c| c.context.range_role.as_ref().is_some_and(|r| r.is_low)).unwrap();
        let hi =
            cs.iter().find(|c| c.context.range_role.as_ref().is_some_and(|r| !r.is_low)).unwrap();
        assert_eq!(lo.context.range_role.as_ref().unwrap().partner, hi.id);
        assert_eq!(lo.context.range_role.as_ref().unwrap().column, ColumnRef::bare("date"));
    }

    #[test]
    fn ge_le_conjuncts_pair_as_range() {
        let tree = merged(&[
            "SELECT ra, dec FROM photoobj WHERE ra >= 150.0 AND ra <= 152.0",
            "SELECT ra, dec FROM photoobj WHERE ra >= 170.0 AND ra <= 172.0",
        ]);
        let cs = choices(&tree);
        let ranged = cs.iter().filter(|c| c.context.range_role.is_some()).count();
        assert_eq!(ranged, 2, "{cs:#?}");
    }

    #[test]
    fn opt_choice_in_where() {
        let tree =
            merged(&["SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 1 AND y = 2"]);
        let cs = choices(&tree);
        assert_eq!(cs.len(), 1);
        let ChoiceKind::Opt { summary } = &cs[0].kind else { panic!() };
        assert_eq!(summary, "y = 2");
    }

    #[test]
    fn depth_increases_in_subqueries() {
        let tree = merged(&[
            "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 1)",
            "SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 2)",
        ]);
        let cs = choices(&tree);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].context.depth, 1);
    }
}
