//! Property tests for DiffTree invariants:
//! 1. lower(lift(q)) == normalize(q)
//! 2. a merged tree expresses every input query, with witness bindings
//!    that lower back to the query
//! 3. transformation rules preserve expressiveness

use pi2_difftree::{expresses, lift_query, lower_query, merge_queries, rules, Bindings};
use pi2_sql::{normalize, Expr, Query, SelectItem, TableRef};
use proptest::prelude::*;

/// A small generator of well-formed queries over a fixed toy schema
/// t(p, a, b) — the paper's §2 shape: projections, equality/range filters,
/// group-by, and aggregates.
fn query_strategy() -> impl Strategy<Value = Query> {
    let col = prop_oneof![Just("p"), Just("a"), Just("b")];
    let lit = 0i64..6;
    let filter = (col.clone(), lit, any::<bool>()).prop_map(|(c, v, is_range)| {
        if is_range {
            Expr::Between {
                expr: Box::new(Expr::col(c)),
                low: Box::new(Expr::int(v)),
                high: Box::new(Expr::int(v + 2)),
                negated: false,
            }
        } else {
            Expr::eq(Expr::col(c), Expr::int(v))
        }
    });
    (
        proptest::collection::vec(col.clone(), 1..3),
        proptest::collection::vec(filter, 0..3),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(cols, filters, agg, distinct)| {
            let mut q = Query::new();
            q.distinct = distinct;
            for c in &cols {
                q.projection.push(SelectItem::expr(Expr::col(*c)));
            }
            if agg {
                q.projection.push(SelectItem::expr(Expr::count_star()));
                q.group_by = cols.iter().map(|c| Expr::col(*c)).collect();
            }
            q.from = vec![TableRef::named("t")];
            q.where_clause = pi2_sql::visit::conjoin(filters);
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lift_lower_is_normalization(q in query_strategy()) {
        let tree = lift_query(&q, 0);
        let lowered = lower_query(&tree, &Bindings::new()).unwrap();
        prop_assert_eq!(lowered, normalize::normalized(&q));
    }

    #[test]
    fn merged_tree_expresses_every_input(qs in proptest::collection::vec(query_strategy(), 1..5)) {
        let indexed: Vec<(usize, &Query)> = qs.iter().enumerate().collect();
        let tree = merge_queries(&indexed);
        for q in &qs {
            let b = expresses(&tree, q);
            prop_assert!(b.is_some(), "merged tree cannot express {}:\n{}", q, tree.root);
            let lowered = lower_query(&tree, &b.unwrap()).unwrap();
            prop_assert_eq!(normalize::normalized(&lowered), normalize::normalized(q));
        }
    }

    #[test]
    fn rules_preserve_expressiveness(
        qs in proptest::collection::vec(query_strategy(), 2..4),
        picks in proptest::collection::vec(any::<u32>(), 4),
    ) {
        let indexed: Vec<(usize, &Query)> = qs.iter().enumerate().collect();
        let mut tree = merge_queries(&indexed);
        let rule_set = rules::all_rules(None);
        for pick in picks {
            let apps = rules::applications(&rule_set, &tree);
            if apps.is_empty() {
                break;
            }
            let app = apps[(pick as usize) % apps.len()];
            if let Some(next) = rule_set[app.rule_idx].apply(&tree, app.loc) {
                tree = next;
            }
            for q in &qs {
                prop_assert!(
                    expresses(&tree, q).is_some(),
                    "rule broke expressiveness of {}:\n{}",
                    q,
                    tree.root
                );
            }
        }
    }

    #[test]
    fn merge_is_commutative_in_expressiveness(a in query_strategy(), b in query_strategy()) {
        let ab = merge_queries(&[(0, &a), (1, &b)]);
        let ba = merge_queries(&[(0, &b), (1, &a)]);
        for q in [&a, &b] {
            prop_assert!(expresses(&ab, q).is_some());
            prop_assert!(expresses(&ba, q).is_some());
        }
    }
}
