//! Merging structurally rich queries: joins, correlated subqueries, and the
//! paper's V3 shape (a plain query merged with a join + correlated-filter
//! query).

use pi2_difftree::{
    choices, default_bindings, expresses, lower_query, merge_queries, ChoiceKind, DiffForest,
    NodeKind,
};
use pi2_sql::{normalize, parse_query, Query};

fn q(sql: &str) -> Query {
    parse_query(sql).unwrap()
}

#[test]
fn join_on_condition_merges_positionally() {
    let q1 = q("SELECT r.region, sum(c.cases) FROM covid c JOIN regions r ON c.state = r.state WHERE r.region = 'South' GROUP BY r.region");
    let q2 = q("SELECT r.region, sum(c.cases) FROM covid c JOIN regions r ON c.state = r.state WHERE r.region = 'West' GROUP BY r.region");
    let tree = merge_queries(&[(0, &q1), (1, &q2)]);
    // Only the literal differs: exactly one choice node.
    assert_eq!(tree.root.choice_count(), 1, "{}", tree.root);
    assert!(expresses(&tree, &q1).is_some());
    assert!(expresses(&tree, &q2).is_some());
}

#[test]
fn plain_vs_join_query_merge_keeps_both_expressible() {
    // The V3 shape: Q3 has no join; Q4 adds a join and extra conjuncts.
    let q3 = q("SELECT c.date, c.state, sum(c.cases) AS cases FROM covid c \
                WHERE c.date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' GROUP BY c.date, c.state");
    let q4 = &pi2_datasets::covid::demo_queries()[4];
    let tree = merge_queries(&[(0, &q3), (1, q4)]);
    assert!(expresses(&tree, &q3).is_some(), "{}", tree.root);
    assert!(expresses(&tree, q4).is_some(), "{}", tree.root);

    // Witness-based defaults lower to a *valid* query (Q3), not an invalid
    // mixture referencing the join that ANY dropped.
    let log = vec![q3.clone(), q4.clone()];
    let defaults = default_bindings(&tree, &log);
    let lowered = lower_query(&tree, &defaults).unwrap();
    assert_eq!(normalize::normalized(&lowered), normalize::normalized(&q3));
    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
        state_limit: Some(6),
        ..Default::default()
    });
    assert!(catalog.execute(&lowered).is_ok(), "default must execute: {lowered}");
}

#[test]
fn correlated_subquery_variation_merges_inside_subquery() {
    let a = q("SELECT state FROM covid c WHERE cases > (SELECT avg(c2.cases) FROM covid c2 WHERE c2.state = c.state)");
    let b = q("SELECT state FROM covid c WHERE cases > (SELECT max(c2.cases) FROM covid c2 WHERE c2.state = c.state)");
    let tree = merge_queries(&[(0, &a), (1, &b)]);
    // The avg/max difference becomes one ANY (over the aggregate call).
    assert_eq!(tree.root.choice_count(), 1, "{}", tree.root);
    let cs = choices(&tree);
    let ChoiceKind::Any { options } = &cs[0].kind else { panic!("{cs:?}") };
    assert!(options.iter().any(|o| o.contains("avg")), "{options:?}");
    assert!(options.iter().any(|o| o.contains("max")), "{options:?}");
    // And it sits one subquery level deep.
    assert_eq!(cs[0].context.depth, 1);
}

#[test]
fn derived_table_queries_merge() {
    let a =
        q("SELECT s.total FROM (SELECT sum(cases) AS total FROM covid WHERE state = 'NY') AS s");
    let b =
        q("SELECT s.total FROM (SELECT sum(cases) AS total FROM covid WHERE state = 'FL') AS s");
    let tree = merge_queries(&[(0, &a), (1, &b)]);
    assert_eq!(tree.root.choice_count(), 1, "{}", tree.root);
    assert!(expresses(&tree, &a).is_some());
    assert!(expresses(&tree, &b).is_some());
}

#[test]
fn forest_split_of_join_merge_restores_originals() {
    let queries = vec![
        q("SELECT c.state FROM covid c JOIN regions r ON c.state = r.state WHERE r.region = 'South'"),
        q("SELECT state FROM covid WHERE cases > 10"),
    ];
    let forest = DiffForest::fully_merged(&queries);
    let split = forest.split_tree(0, &queries).unwrap();
    assert_eq!(split.trees.len(), 2);
    for (tree, query) in split.trees.iter().zip(&queries) {
        // Each split tree is exactly its query's lift.
        assert_eq!(tree.root.choice_count(), 0);
        assert!(expresses(tree, query).is_some());
    }
}

#[test]
fn summary_renders_join_structures() {
    let q4 = &pi2_datasets::covid::demo_queries()[4];
    let tree = pi2_difftree::lift_query(q4, 0);
    // The IN-subquery summary elides the body.
    let mut saw_in = false;
    tree.root.walk(&mut |n| {
        if matches!(n.kind, NodeKind::InSubquery { .. }) {
            assert!(n.summary().contains("IN (…)"), "{}", n.summary());
            saw_in = true;
        }
    });
    assert!(saw_in);
}
