//! Micro-benchmarks for the columnar fast path against the row-at-a-time
//! reference interpreter: vectorized filtering, hash aggregation, and
//! sort-key precomputation on the demo-scale datasets.
//!
//! Run with `cargo bench -p pi2-engine`.

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_sql::parse_query;

fn bench_columnar(c: &mut Criterion) {
    let sdss = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
    let covid = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());

    let mut group = c.benchmark_group("columnar");

    // Vectorized filter: range predicates over float columns (the pan/zoom
    // interaction shape).
    let filter = parse_query(
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 178.5 AND 180.5 AND dec BETWEEN -1.5 AND 0.5",
    )
    .expect("parse");
    group.bench_function("filter/columnar/sdss", |b| {
        b.iter(|| sdss.execute_uncached(&filter).expect("executes"))
    });
    group.bench_function("filter/reference/sdss", |b| {
        b.iter(|| sdss.execute_reference(&filter).expect("executes"))
    });

    // Hash aggregation over column groups.
    let agg = parse_query("SELECT state, sum(cases), avg(cases) FROM covid GROUP BY state")
        .expect("parse");
    group.bench_function("hash-agg/columnar/covid", |b| {
        b.iter(|| covid.execute_uncached(&agg).expect("executes"))
    });
    group.bench_function("hash-agg/reference/covid", |b| {
        b.iter(|| covid.execute_reference(&agg).expect("executes"))
    });

    // Sort-key precomputation: ORDER BY an aliased aggregate, which the
    // reference resolves by scanning the projection list per output row.
    let sorted = parse_query(
        "SELECT state, sum(cases) AS total FROM covid GROUP BY state ORDER BY total DESC, state",
    )
    .expect("parse");
    group.bench_function("sort-keys/columnar/covid", |b| {
        b.iter(|| covid.execute_uncached(&sorted).expect("executes"))
    });
    group.bench_function("sort-keys/reference/covid", |b| {
        b.iter(|| covid.execute_reference(&sorted).expect("executes"))
    });

    group.finish();
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
