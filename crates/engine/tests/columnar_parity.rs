//! Differential tests: the columnar fast path must be indistinguishable
//! from the row-at-a-time reference executor — same schema (names and
//! types), same rows in the same order, same errors.

use pi2_engine::{Catalog, DataType, Table, Value};
use pi2_sql::parse_query;

fn assert_parity(catalog: &Catalog, sql: &str) {
    let q = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
    let fast = catalog.execute_uncached(&q);
    let reference = catalog.execute_reference(&q);
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            let f_schema: Vec<(&str, DataType)> =
                f.schema.fields.iter().map(|x| (x.name.as_str(), x.data_type)).collect();
            let r_schema: Vec<(&str, DataType)> =
                r.schema.fields.iter().map(|x| (x.name.as_str(), x.data_type)).collect();
            assert_eq!(f_schema, r_schema, "schema mismatch for {sql}");
            assert_eq!(f.rows, r.rows, "row mismatch for {sql}");
        }
        (Err(f), Err(r)) => {
            assert_eq!(f.to_string(), r.to_string(), "error mismatch for {sql}");
        }
        (f, r) => panic!("status mismatch for {sql}: fast={f:?} reference={r:?}"),
    }
}

fn mixed_catalog() -> Catalog {
    let mut c = Catalog::new();
    let mut t = Table::builder("obs")
        .column("id", DataType::Int)
        .column("city", DataType::Str)
        .column("temp", DataType::Float)
        .column("day", DataType::Date)
        .column("ok", DataType::Bool)
        .build();
    type Row<'a> = (i64, Option<&'a str>, Option<f64>, &'a str, bool);
    let rows: Vec<Row> = vec![
        (1, Some("austin"), Some(31.5), "2021-06-01", true),
        (2, Some("boston"), Some(18.25), "2021-06-02", false),
        (3, None, Some(-4.0), "2021-06-03", true),
        (4, Some("austin"), None, "2021-06-04", false),
        (5, Some("chicago"), Some(22.0), "2021-06-05", true),
        (6, Some("boston"), Some(18.25), "2021-06-06", true),
        (7, Some("denver"), Some(0.0), "2021-06-07", false),
    ];
    for (id, city, temp, day, ok) in rows {
        t.push_row(vec![
            Value::Int(id),
            city.map(Value::str).unwrap_or(Value::Null),
            temp.map(Value::Float).unwrap_or(Value::Null),
            Value::date(day),
            Value::Bool(ok),
        ])
        .unwrap();
    }
    c.register(t);
    c
}

#[test]
fn filters_match_reference() {
    let c = mixed_catalog();
    for sql in [
        "SELECT id FROM obs WHERE temp > 18",
        "SELECT id FROM obs WHERE temp > 18.25",
        "SELECT id FROM obs WHERE id >= 3 AND temp < 30",
        "SELECT id FROM obs WHERE city = 'austin'",
        "SELECT id FROM obs WHERE 'austin' = city",
        "SELECT id FROM obs WHERE 20 <= temp",
        "SELECT id FROM obs WHERE day > DATE '2021-06-03'",
        "SELECT id FROM obs WHERE ok = TRUE",
        "SELECT id FROM obs WHERE temp BETWEEN 0 AND 20",
        "SELECT id FROM obs WHERE id BETWEEN 2.5 AND 6",
        "SELECT id FROM obs WHERE temp NOT BETWEEN 0 AND 20",
        "SELECT id FROM obs WHERE city IN ('austin', 'denver')",
        "SELECT id FROM obs WHERE city NOT IN ('austin', 'denver')",
        "SELECT id FROM obs WHERE city LIKE '%os%'",
        "SELECT id FROM obs WHERE city IS NULL",
        "SELECT id FROM obs WHERE temp IS NOT NULL AND NOT ok",
        "SELECT id FROM obs WHERE city = 'austin' OR temp < 0",
        "SELECT id FROM obs WHERE temp = NULL",
        "SELECT id FROM obs WHERE id % 2 = 1",
    ] {
        assert_parity(&c, sql);
    }
}

#[test]
fn projections_and_expressions_match_reference() {
    let c = mixed_catalog();
    for sql in [
        "SELECT * FROM obs",
        "SELECT obs.* FROM obs",
        "SELECT o.id, o.temp FROM obs o WHERE o.temp > 0",
        "SELECT id * 2 + 1 AS double_id, temp / 2 FROM obs",
        "SELECT upper(city), length(city) FROM obs",
        "SELECT CASE WHEN temp < 0 THEN 'cold' WHEN temp < 25 THEN 'mild' ELSE 'hot' END FROM obs",
        "SELECT CASE city WHEN 'austin' THEN 1 ELSE 0 END FROM obs",
        "SELECT coalesce(temp, -99.0) FROM obs",
        "SELECT day + 7, day - day FROM obs",
        "SELECT city || '-' || id FROM obs",
        "SELECT -temp, NOT ok FROM obs",
    ] {
        assert_parity(&c, sql);
    }
}

#[test]
fn aggregation_matches_reference() {
    let c = mixed_catalog();
    for sql in [
        "SELECT count(*) FROM obs",
        "SELECT count(temp), count(city) FROM obs",
        "SELECT count(DISTINCT city) FROM obs",
        "SELECT sum(id), avg(temp), min(temp), max(temp) FROM obs",
        "SELECT city, count(*) FROM obs GROUP BY city",
        "SELECT city, sum(temp) FROM obs GROUP BY city HAVING sum(temp) > 18",
        "SELECT city, avg(temp) AS t FROM obs GROUP BY city ORDER BY t DESC",
        "SELECT ok, count(*) FROM obs WHERE temp IS NOT NULL GROUP BY ok",
        // Ungrouped aggregate over zero input rows: one all-NULL group.
        "SELECT count(*), sum(temp), min(city) FROM obs WHERE id > 100",
        "SELECT city FROM obs GROUP BY city HAVING count(*) > 1",
        "SELECT sum(temp) FROM obs",
        "SELECT avg(id) FROM obs GROUP BY ok ORDER BY 1",
    ] {
        assert_parity(&c, sql);
    }
}

#[test]
fn ordering_distinct_and_limits_match_reference() {
    let c = mixed_catalog();
    for sql in [
        "SELECT city FROM obs ORDER BY city",
        "SELECT DISTINCT city FROM obs",
        "SELECT DISTINCT temp FROM obs ORDER BY temp DESC",
        "SELECT id, temp FROM obs ORDER BY temp DESC, id ASC",
        "SELECT id AS n FROM obs ORDER BY n DESC",
        "SELECT id, city FROM obs ORDER BY 2, 1",
        "SELECT id FROM obs ORDER BY temp LIMIT 3",
        "SELECT id FROM obs ORDER BY id LIMIT 3 OFFSET 2",
        "SELECT id FROM obs ORDER BY id DESC OFFSET 5",
        "SELECT id FROM obs ORDER BY -id",
    ] {
        assert_parity(&c, sql);
    }
}

#[test]
fn errors_match_reference() {
    let c = mixed_catalog();
    for sql in [
        "SELECT id FROM obs WHERE city > 5",
        "SELECT id FROM obs WHERE temp LIKE 'x%'",
        "SELECT sum(city) FROM obs",
        "SELECT id FROM obs HAVING id > 1",
        "SELECT NOT temp FROM obs",
        "SELECT id FROM obs WHERE id AND ok",
    ] {
        assert_parity(&c, sql);
    }
}

#[test]
fn demo_scenarios_match_reference() {
    for scenario in pi2_datasets::demo_scenarios() {
        for q in &scenario.queries {
            let fast = scenario.catalog.execute_uncached(q);
            let reference = scenario.catalog.execute_reference(q);
            match (fast, reference) {
                (Ok(f), Ok(r)) => {
                    assert_eq!(f.rows, r.rows, "rows differ on {}: {q}", scenario.name);
                    assert_eq!(f.schema, r.schema, "schema differs on {}: {q}", scenario.name);
                }
                (Err(f), Err(r)) => assert_eq!(f.to_string(), r.to_string()),
                (f, r) => panic!("status mismatch on {}: {q}\n{f:?}\n{r:?}", scenario.name),
            }
        }
    }
}

#[test]
fn single_table_takes_columnar_path_and_joins_fall_back() {
    let c = mixed_catalog();
    let single = parse_query("SELECT id FROM obs WHERE temp > 0").unwrap();
    let join = parse_query("SELECT a.id FROM obs a, obs b WHERE a.id = b.id").unwrap();

    let (col0, ref0) = c.exec_path_counts();
    c.execute_uncached(&single).unwrap();
    let (col1, ref1) = c.exec_path_counts();
    assert_eq!((col1 - col0, ref1 - ref0), (1, 0), "single-table scan should run columnar");

    c.execute_uncached(&join).unwrap();
    let (col2, ref2) = c.exec_path_counts();
    assert_eq!((col2 - col1, ref2 - ref1), (0, 1), "join should fall back to reference");

    // Subqueries also fall back.
    let sub = parse_query("SELECT id FROM obs WHERE id IN (SELECT id FROM obs WHERE ok)").unwrap();
    c.execute_uncached(&sub).unwrap();
    let (col3, ref3) = c.exec_path_counts();
    assert_eq!((col3 - col2, ref3 - ref2), (0, 1), "subquery should fall back to reference");
}

#[test]
fn row_limits_apply_on_columnar_path() {
    let mut c = Catalog::with_limits(pi2_engine::ExecLimits::rows(3));
    let mut t = Table::builder("t").column("x", DataType::Int).build();
    for i in 0..10 {
        t.push_row(vec![Value::Int(i)]).unwrap();
    }
    c.register(t);
    let q = parse_query("SELECT x FROM t").unwrap();
    let fast = c.execute_uncached(&q).unwrap_err();
    let reference = c.execute_reference(&q).unwrap_err();
    assert_eq!(fast.to_string(), reference.to_string());
}
