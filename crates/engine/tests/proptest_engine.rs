//! Differential property tests: the engine's results must agree with a
//! straightforward in-Rust evaluation of the same semantics on randomly
//! generated tables.

use pi2_engine::{Catalog, DataType, Table, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    k: i64,
    v: i64,
    s: &'static str,
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    let labels = prop_oneof![Just("x"), Just("y"), Just("z")];
    proptest::collection::vec(
        (0i64..6, -50i64..50, labels).prop_map(|(k, v, s)| Row { k, v, s }),
        0..60,
    )
}

fn catalog_of(rows: &[Row]) -> Catalog {
    let mut t = Table::builder("t")
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .column("s", DataType::Str)
        .build();
    for r in rows {
        t.push_row(vec![Value::Int(r.k), Value::Int(r.v), Value::str(r.s)]).expect("valid row");
    }
    let mut c = Catalog::new();
    c.register(t);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn filter_counts_match_reference(rows in rows_strategy(), threshold in -50i64..50) {
        let c = catalog_of(&rows);
        let r = c
            .execute_sql(&format!("SELECT count(*) FROM t WHERE v > {threshold}"))
            .expect("executes");
        let expected = rows.iter().filter(|r| r.v > threshold).count() as i64;
        prop_assert_eq!(&r.rows[0][0], &Value::Int(expected));
    }

    #[test]
    fn grouped_sums_match_reference(rows in rows_strategy()) {
        let c = catalog_of(&rows);
        let r = c
            .execute_sql("SELECT k, sum(v), count(*) FROM t GROUP BY k ORDER BY k")
            .expect("executes");
        let mut expected: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for row in &rows {
            let e = expected.entry(row.k).or_insert((0, 0));
            e.0 += row.v;
            e.1 += 1;
        }
        prop_assert_eq!(r.rows.len(), expected.len());
        for (out, (k, (sum, count))) in r.rows.iter().zip(expected) {
            prop_assert_eq!(&out[0], &Value::Int(k));
            prop_assert_eq!(&out[1], &Value::Int(sum));
            prop_assert_eq!(&out[2], &Value::Int(count));
        }
    }

    #[test]
    fn grouped_sum_totals_equal_global_sum(rows in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let c = catalog_of(&rows);
        let grouped = c.execute_sql("SELECT s, sum(v) FROM t GROUP BY s").expect("executes");
        let total = c.execute_sql("SELECT sum(v) FROM t").expect("executes");
        let group_total: i64 = grouped
            .rows
            .iter()
            .map(|r| match &r[1] {
                Value::Int(v) => *v,
                other => panic!("{other}"),
            })
            .sum();
        prop_assert_eq!(&total.rows[0][0], &Value::Int(group_total));
    }

    #[test]
    fn self_join_cardinality_matches_reference(rows in rows_strategy()) {
        let c = catalog_of(&rows);
        let r = c
            .execute_sql("SELECT count(*) FROM t a JOIN t b ON a.k = b.k")
            .expect("executes");
        // Reference: sum over key groups of n^2.
        let mut counts: std::collections::HashMap<i64, i64> = Default::default();
        for row in &rows {
            *counts.entry(row.k).or_insert(0) += 1;
        }
        let expected: i64 = counts.values().map(|n| n * n).sum();
        prop_assert_eq!(&r.rows[0][0], &Value::Int(expected));
    }

    #[test]
    fn between_equals_two_comparisons(rows in rows_strategy(), lo in -50i64..0, hi in 0i64..50) {
        let c = catalog_of(&rows);
        let between = c
            .execute_sql(&format!("SELECT count(*) FROM t WHERE v BETWEEN {lo} AND {hi}"))
            .expect("executes");
        let pair = c
            .execute_sql(&format!("SELECT count(*) FROM t WHERE v >= {lo} AND v <= {hi}"))
            .expect("executes");
        prop_assert_eq!(&between.rows[0][0], &pair.rows[0][0]);
    }

    #[test]
    fn order_by_sorts_and_limit_truncates(rows in rows_strategy(), limit in 0u64..20) {
        let c = catalog_of(&rows);
        let r = c
            .execute_sql(&format!("SELECT v FROM t ORDER BY v DESC LIMIT {limit}"))
            .expect("executes");
        let mut expected: Vec<i64> = rows.iter().map(|r| r.v).collect();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        expected.truncate(limit as usize);
        let got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Int(v) => *v,
                other => panic!("{other}"),
            })
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn distinct_matches_set_semantics(rows in rows_strategy()) {
        let c = catalog_of(&rows);
        let r = c.execute_sql("SELECT DISTINCT k FROM t").expect("executes");
        let expected: std::collections::BTreeSet<i64> = rows.iter().map(|r| r.k).collect();
        prop_assert_eq!(r.rows.len(), expected.len());
    }

    #[test]
    fn correlated_subquery_matches_group_maximum(rows in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let c = catalog_of(&rows);
        // Rows whose v equals their group's maximum.
        let r = c
            .execute_sql(
                "SELECT count(*) FROM t a WHERE v = (SELECT max(b.v) FROM t b WHERE b.k = a.k)",
            )
            .expect("executes");
        let mut maxima: std::collections::HashMap<i64, i64> = Default::default();
        for row in &rows {
            let e = maxima.entry(row.k).or_insert(i64::MIN);
            *e = (*e).max(row.v);
        }
        let expected = rows.iter().filter(|r| maxima[&r.k] == r.v).count() as i64;
        prop_assert_eq!(&r.rows[0][0], &Value::Int(expected));
    }

    #[test]
    fn cached_and_uncached_execution_agree(rows in rows_strategy()) {
        let c = catalog_of(&rows);
        let q = pi2_sql::parse_query("SELECT s, count(*), sum(v) FROM t GROUP BY s ORDER BY s")
            .expect("parses");
        let a = c.execute(&q).expect("cached");
        let b = c.execute_uncached(&q).expect("uncached");
        let a2 = c.execute(&q).expect("cache hit");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &a2);
    }
}
