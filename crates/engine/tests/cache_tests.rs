//! Query-cache behaviour: correctness of sharing and invalidation.

use pi2_engine::{Catalog, DataType, Table, Value};

fn table_with(values: &[i64]) -> Table {
    let mut t = Table::builder("t").column("v", DataType::Int).build();
    for &v in values {
        t.push_row(vec![Value::Int(v)]).unwrap();
    }
    t
}

#[test]
fn register_invalidates_cached_results() {
    let mut c = Catalog::new();
    c.register(table_with(&[1, 2, 3]));
    let q = pi2_sql::parse_query("SELECT sum(v) FROM t").unwrap();
    assert_eq!(c.execute(&q).unwrap().rows[0][0], Value::Int(6));
    // Replace the table; the cached result must not survive.
    c.register(table_with(&[10, 20]));
    assert_eq!(c.execute(&q).unwrap().rows[0][0], Value::Int(30));
}

#[test]
fn clones_share_the_cache_until_either_registers() {
    let mut a = Catalog::new();
    a.register(table_with(&[5]));
    let b = a.clone();
    let q = pi2_sql::parse_query("SELECT sum(v) FROM t").unwrap();
    // Warm via the clone; both observe the same data.
    assert_eq!(b.execute(&q).unwrap().rows[0][0], Value::Int(5));
    assert_eq!(a.execute(&q).unwrap().rows[0][0], Value::Int(5));
    // Mutating `a` clears the shared cache, but `b` still sees its own
    // (old) tables: results must reflect each catalog's table map.
    a.register(table_with(&[7]));
    assert_eq!(a.execute(&q).unwrap().rows[0][0], Value::Int(7));
    // NOTE: b's table map still holds the old Arc'd table.
    assert_eq!(b.execute(&q).unwrap().rows[0][0], Value::Int(5));
}

#[test]
fn structurally_equal_queries_share_cache_entries() {
    let mut c = Catalog::new();
    c.register(table_with(&[1, 2]));
    // Different text, same AST after parse (keyword case).
    let q1 = pi2_sql::parse_query("select v from t where v > 1").unwrap();
    let q2 = pi2_sql::parse_query("SELECT v FROM t WHERE v > 1").unwrap();
    assert_eq!(q1.structural_hash(), q2.structural_hash());
    assert_eq!(c.execute(&q1).unwrap(), c.execute(&q2).unwrap());
}
