//! Property tests for the block-structured storage layer: dictionary
//! encode/decode round-trips, zone-map pruning parity against the
//! reference executor on random predicates, and delta-recompute vs.
//! full-execute equivalence over random pan/zoom sequences.
//!
//! These run in debug builds, so every pruned block and every delta mask
//! is additionally re-verified row-by-row by the executor's internal
//! `debug_assert`s while the properties check end-to-end results.

use pi2_engine::columnar::{ColumnData, ColumnarTable, BLOCK_ROWS};
use pi2_engine::{Catalog, DataType, DeltaCache, Table, Value};
use pi2_sql::parse_query;
use proptest::prelude::*;

fn str_table(vals: &[Option<String>]) -> Table {
    let mut t = Table::builder("t").column("s", DataType::Str).build();
    for v in vals {
        t.push_row(vec![v.as_ref().map(Value::str).unwrap_or(Value::Null)]).expect("valid row");
    }
    t
}

/// A table whose columns are value-clustered (ascending ints, ascending
/// floats, plateaued strings) so zone maps actually prune, with optional
/// periodic NULLs to exercise null-count handling.
fn clustered_catalog(n: usize, null_every: usize) -> Catalog {
    let mut t = Table::builder("t")
        .column("x", DataType::Int)
        .column("f", DataType::Float)
        .column("s", DataType::Str)
        .build();
    for i in 0..n {
        let null = null_every > 0 && i % (null_every + 2) == 0;
        let x = if null { Value::Null } else { Value::Int(i as i64) };
        let f = Value::Float(i as f64 * 0.5 - n as f64 / 4.0);
        let s = match (i * 4) / n.max(1) {
            0 => "alpha",
            1 => "beta",
            2 => "gamma",
            _ => "delta",
        };
        t.push_row(vec![x, f, Value::str(s)]).expect("valid row");
    }
    let mut c = Catalog::new();
    c.register(t);
    c
}

/// The columnar fast path (zone pruning enabled) must be byte-identical to
/// the reference executor: same schema, same rows in order, same errors.
fn assert_parity(c: &Catalog, sql: &str) -> std::result::Result<(), TestCaseError> {
    let q = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
    match (c.execute_uncached(&q), c.execute_reference(&q)) {
        (Ok(f), Ok(r)) => {
            prop_assert_eq!(&f.schema.fields, &r.schema.fields, "schema mismatch for {}", sql);
            prop_assert_eq!(&f.rows, &r.rows, "row mismatch for {}", sql);
        }
        (Err(f), Err(r)) => {
            prop_assert_eq!(f.to_string(), r.to_string(), "error mismatch for {}", sql);
        }
        (f, r) => {
            prop_assert!(false, "status mismatch for {}: fast={:?} reference={:?}", sql, f, r)
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dictionary_encode_decode_roundtrip(
        vals in proptest::collection::vec(proptest::option::of("[a-d]{0,3}"), 0..200),
    ) {
        let t = str_table(&vals);
        let c = ColumnarTable::build(&t);
        let ColumnData::Str(d) = &c.columns[0].data else {
            return Err(TestCaseError::fail("expected dictionary column"));
        };
        // Decode: every row materializes back to its original value.
        for (i, v) in vals.iter().enumerate() {
            let expected = v.as_ref().map(Value::str).unwrap_or(Value::Null);
            prop_assert_eq!(c.columns[0].value(i), expected, "row {}", i);
        }
        // The dictionary is strictly sorted and deduplicated, and every
        // non-null row's code points into it.
        prop_assert!(d.dict.windows(2).all(|w| w[0] < w[1]), "dict not sorted: {:?}", d.dict);
        for (i, v) in vals.iter().enumerate() {
            if v.is_some() {
                prop_assert!((d.codes[i] as usize) < d.dict.len());
                prop_assert_eq!(&d.dict[d.codes[i] as usize], v.as_ref().unwrap());
            }
        }
    }
}

proptest! {
    // Each case builds a multi-block table; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pruned_scans_match_unpruned_reference(
        n in 1usize..(3 * BLOCK_ROWS),
        null_every in 0usize..4,
        op in prop_oneof![Just("="), Just("<"), Just("<="), Just(">"), Just(">="), Just("!=")],
        k in -100i64..15_000,
        sk in prop_oneof![Just("alpha"), Just("beta"), Just("zeta"), Just("")],
    ) {
        let c = clustered_catalog(n, null_every);
        assert_parity(&c, &format!("SELECT count(*) AS n FROM t WHERE x {op} {k}"))?;
        assert_parity(&c, &format!("SELECT x, f FROM t WHERE f {op} {k}.25"))?;
        assert_parity(&c, &format!("SELECT x FROM t WHERE s {op} '{sk}'"))?;
        assert_parity(
            &c,
            &format!("SELECT sum(x) AS sx FROM t WHERE x BETWEEN {k} AND {}", k + 500),
        )?;
        assert_parity(
            &c,
            &format!("SELECT count(*) AS n FROM t WHERE x {op} {k} AND s = 'beta' AND f >= 0.0"),
        )?;
    }

    #[test]
    fn delta_recompute_matches_full_execute(
        n in 1usize..(3 * BLOCK_ROWS),
        null_every in 0usize..4,
        windows in proptest::collection::vec((0i64..13_000, 0i64..2_000), 1..10),
    ) {
        let c = clustered_catalog(n, null_every);
        let mut cache = DeltaCache::new();
        for (lo, width) in windows {
            let hi = lo + width;
            let sqls = [
                format!("SELECT count(*) AS n, sum(x) AS sx FROM t WHERE x BETWEEN {lo} AND {hi}"),
                format!(
                    "SELECT x FROM t WHERE f BETWEEN {lo}.5 AND {hi}.5 AND s = 'beta' \
                     ORDER BY x LIMIT 37"
                ),
            ];
            for sql in sqls {
                let q = parse_query(&sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
                let Some((res, _)) = c.execute_delta(&q, &mut cache) else {
                    return Err(TestCaseError::fail(format!("delta should apply to {sql}")));
                };
                match (res, c.execute_reference(&q)) {
                    (Ok(d), Ok(r)) => {
                        prop_assert_eq!(&d.schema.fields, &r.schema.fields, "schema for {}", &sql);
                        prop_assert_eq!(&d.rows, &r.rows, "rows for {}", &sql);
                    }
                    (Err(d), Err(r)) => {
                        prop_assert_eq!(d.to_string(), r.to_string(), "error for {}", &sql);
                    }
                    (d, r) => prop_assert!(
                        false,
                        "status mismatch for {}: delta={:?} reference={:?}",
                        &sql, d, r
                    ),
                }
            }
        }
    }
}
