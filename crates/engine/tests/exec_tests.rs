//! End-to-end executor tests over a small COVID-style schema.

use pi2_engine::{Catalog, DataType, Table, Value};

/// covid(date DATE, state TEXT, cases INT) + regions(state TEXT, region TEXT)
fn fixture() -> Catalog {
    let mut catalog = Catalog::new();

    let mut covid = Table::builder("covid")
        .column("date", DataType::Date)
        .column("state", DataType::Str)
        .column("cases", DataType::Int)
        .build();
    let data = [
        ("2021-12-01", "NY", 100),
        ("2021-12-01", "FL", 80),
        ("2021-12-01", "VT", 5),
        ("2021-12-02", "NY", 150),
        ("2021-12-02", "FL", 90),
        ("2021-12-02", "VT", 7),
        ("2021-12-03", "NY", 200),
        ("2021-12-03", "FL", 160),
        ("2021-12-03", "VT", 6),
    ];
    for (d, s, c) in data {
        covid.push_row(vec![Value::date(d), Value::str(s), Value::Int(c)]).unwrap();
    }
    catalog.register(covid);

    let mut regions = Table::builder("regions")
        .column("state", DataType::Str)
        .column("region", DataType::Str)
        .build();
    for (s, r) in [("NY", "Northeast"), ("VT", "Northeast"), ("FL", "South")] {
        regions.push_row(vec![Value::str(s), Value::str(r)]).unwrap();
    }
    catalog.register(regions);

    catalog
}

fn run(c: &Catalog, sql: &str) -> pi2_engine::ResultSet {
    c.execute_sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
}

#[test]
fn projection_and_filter() {
    let c = fixture();
    let r = run(&c, "SELECT state, cases FROM covid WHERE cases > 100");
    assert_eq!(r.rows.len(), 3);
    assert!(r.rows.iter().all(|row| matches!(&row[1], Value::Int(v) if *v > 100)));
}

#[test]
fn select_star_expands() {
    let c = fixture();
    let r = run(&c, "SELECT * FROM regions");
    assert_eq!(r.schema.fields.len(), 2);
    assert_eq!(r.schema.fields[0].name, "state");
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn qualified_star() {
    let c = fixture();
    let r = run(&c, "SELECT r.* FROM covid c JOIN regions r ON c.state = r.state");
    assert_eq!(r.schema.fields.len(), 2);
    assert_eq!(r.rows.len(), 9);
}

#[test]
fn arithmetic_projection_types() {
    let c = fixture();
    let r = run(&c, "SELECT cases * 2 AS double_cases FROM covid LIMIT 1");
    assert_eq!(r.schema.fields[0].name, "double_cases");
    assert_eq!(r.schema.fields[0].data_type, DataType::Int);
    assert_eq!(r.rows[0][0], Value::Int(200));
}

#[test]
fn group_by_aggregates() {
    let c = fixture();
    let r =
        run(&c, "SELECT state, sum(cases) AS total FROM covid GROUP BY state ORDER BY total DESC");
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0], vec![Value::str("NY"), Value::Int(450)]);
    assert_eq!(r.rows[1], vec![Value::str("FL"), Value::Int(330)]);
    assert_eq!(r.rows[2], vec![Value::str("VT"), Value::Int(18)]);
}

#[test]
fn global_aggregate_without_group_by() {
    let c = fixture();
    let r = run(&c, "SELECT count(*), sum(cases), avg(cases), min(cases), max(cases) FROM covid");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(9));
    assert_eq!(r.rows[0][1], Value::Int(798));
    assert_eq!(r.rows[0][3], Value::Int(5));
    assert_eq!(r.rows[0][4], Value::Int(200));
}

#[test]
fn aggregate_over_empty_input_yields_one_row() {
    let c = fixture();
    let r = run(&c, "SELECT count(*), sum(cases) FROM covid WHERE cases > 99999");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Null);
}

#[test]
fn group_by_empty_group_vanishes() {
    let c = fixture();
    let r = run(&c, "SELECT state, count(*) FROM covid WHERE cases > 99999 GROUP BY state");
    assert!(r.rows.is_empty());
}

#[test]
fn having_filters_groups() {
    let c = fixture();
    let r =
        run(&c, "SELECT state FROM covid GROUP BY state HAVING sum(cases) > 100 ORDER BY state");
    assert_eq!(r.rows, vec![vec![Value::str("FL")], vec![Value::str("NY")]]);
}

#[test]
fn count_distinct() {
    let c = fixture();
    let r = run(&c, "SELECT count(DISTINCT state) FROM covid");
    assert_eq!(r.rows[0][0], Value::Int(3));
}

#[test]
fn inner_join_hash_path() {
    let c = fixture();
    let r = run(&c, "SELECT c.state, r.region FROM covid c JOIN regions r ON c.state = r.state WHERE c.cases > 100");
    assert_eq!(r.rows.len(), 3);
    assert!(r
        .rows
        .iter()
        .all(|row| row[1] == Value::str("Northeast") || row[1] == Value::str("South")));
}

#[test]
fn join_with_residual_predicate() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT c.state FROM covid c JOIN regions r ON c.state = r.state AND c.cases > 150 ORDER BY c.state",
    );
    assert_eq!(r.rows, vec![vec![Value::str("FL")], vec![Value::str("NY")]]);
}

#[test]
fn left_join_keeps_unmatched() {
    let mut c = fixture();
    let mut extra =
        Table::builder("extra").column("state", DataType::Str).column("pop", DataType::Int).build();
    extra.push_row(vec![Value::str("NY"), Value::Int(19)]).unwrap();
    c.register(extra);
    let r = run(&c, "SELECT r.state, e.pop FROM regions r LEFT JOIN extra e ON r.state = e.state ORDER BY r.state");
    assert_eq!(r.rows.len(), 3);
    // FL and VT unmatched -> NULL pop.
    assert_eq!(r.rows[0], vec![Value::str("FL"), Value::Null]);
    assert_eq!(r.rows[1], vec![Value::str("NY"), Value::Int(19)]);
    assert_eq!(r.rows[2], vec![Value::str("VT"), Value::Null]);
}

#[test]
fn cross_join_cardinality() {
    let c = fixture();
    let r = run(&c, "SELECT count(*) FROM covid CROSS JOIN regions");
    assert_eq!(r.rows[0][0], Value::Int(27));
}

#[test]
fn comma_join_is_cross_product() {
    let c = fixture();
    let r = run(&c, "SELECT count(*) FROM covid, regions");
    assert_eq!(r.rows[0][0], Value::Int(27));
}

#[test]
fn nested_loop_join_on_inequality() {
    let c = fixture();
    let r = run(&c, "SELECT count(*) FROM regions a JOIN regions b ON a.state < b.state");
    assert_eq!(r.rows[0][0], Value::Int(3)); // FL<NY, FL<VT, NY<VT
}

#[test]
fn derived_table() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT s.state, s.total FROM (SELECT state, sum(cases) AS total FROM covid GROUP BY state) AS s WHERE s.total > 100 ORDER BY s.total",
    );
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::str("FL"));
}

#[test]
fn scalar_subquery() {
    let c = fixture();
    let r = run(&c, "SELECT state, cases FROM covid WHERE cases > (SELECT avg(cases) FROM covid) ORDER BY cases");
    // avg = 88.67 -> rows with cases in {90,100,150,160,200}
    assert_eq!(r.rows.len(), 5);
    assert_eq!(r.rows[0][1], Value::Int(90));
}

#[test]
fn in_subquery() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT DISTINCT state FROM covid WHERE state IN (SELECT state FROM regions WHERE region = 'Northeast') ORDER BY state",
    );
    assert_eq!(r.rows, vec![vec![Value::str("NY")], vec![Value::str("VT")]]);
}

#[test]
fn exists_correlated() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT DISTINCT r.state FROM regions r WHERE EXISTS (SELECT 1 FROM covid c WHERE c.state = r.state AND c.cases > 150) ORDER BY r.state",
    );
    assert_eq!(r.rows, vec![vec![Value::str("FL")], vec![Value::str("NY")]]);
}

#[test]
fn correlated_scalar_subquery() {
    let c = fixture();
    // Each state's max cases.
    let r = run(
        &c,
        "SELECT DISTINCT state, (SELECT max(c2.cases) FROM covid c2 WHERE c2.state = c.state) AS peak FROM covid c ORDER BY state",
    );
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("FL"), Value::Int(160)],
            vec![Value::str("NY"), Value::Int(200)],
            vec![Value::str("VT"), Value::Int(7)],
        ]
    );
}

#[test]
fn demo_q4_correlated_region_average() {
    let c = fixture();
    // States whose average cases exceed their region's average (paper Q4 shape).
    let r = run(
        &c,
        "SELECT DISTINCT c.state FROM covid c JOIN regions r ON c.state = r.state \
         WHERE c.state IN (SELECT c2.state FROM covid c2 JOIN regions r2 ON c2.state = r2.state \
            WHERE r2.region = r.region GROUP BY c2.state \
            HAVING avg(c2.cases) > (SELECT avg(c3.cases) FROM covid c3 JOIN regions r3 ON c3.state = r3.state \
               WHERE r3.region = r.region)) ORDER BY c.state",
    );
    // Northeast: NY avg 150 vs region avg 78 -> NY above. South: FL alone, avg == region avg -> excluded.
    assert_eq!(r.rows, vec![vec![Value::str("NY")]]);
}

#[test]
fn between_dates() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT count(*) FROM covid WHERE date BETWEEN DATE '2021-12-02' AND DATE '2021-12-03'",
    );
    assert_eq!(r.rows[0][0], Value::Int(6));
}

#[test]
fn order_by_multiple_keys_and_direction() {
    let c = fixture();
    let r = run(&c, "SELECT state, cases FROM covid ORDER BY state ASC, cases DESC LIMIT 2");
    assert_eq!(r.rows[0], vec![Value::str("FL"), Value::Int(160)]);
    assert_eq!(r.rows[1], vec![Value::str("FL"), Value::Int(90)]);
}

#[test]
fn order_by_position() {
    let c = fixture();
    let r = run(&c, "SELECT state, sum(cases) FROM covid GROUP BY state ORDER BY 2 DESC LIMIT 1");
    assert_eq!(r.rows[0][0], Value::str("NY"));
}

#[test]
fn limit_offset() {
    let c = fixture();
    let r = run(&c, "SELECT cases FROM covid ORDER BY cases LIMIT 3 OFFSET 2");
    assert_eq!(r.rows, vec![vec![Value::Int(7)], vec![Value::Int(80)], vec![Value::Int(90)]]);
}

#[test]
fn distinct_dedups() {
    let c = fixture();
    let r = run(&c, "SELECT DISTINCT state FROM covid");
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn case_expression() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT DISTINCT state, CASE WHEN cases >= 100 THEN 'high' ELSE 'low' END AS band FROM covid WHERE date = DATE '2021-12-01' ORDER BY state",
    );
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("FL"), Value::str("low")],
            vec![Value::str("NY"), Value::str("high")],
            vec![Value::str("VT"), Value::str("low")],
        ]
    );
}

#[test]
fn like_and_in_list() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT DISTINCT state FROM covid WHERE state LIKE 'N%' OR state IN ('VT')  ORDER BY state",
    );
    assert_eq!(r.rows, vec![vec![Value::str("NY")], vec![Value::str("VT")]]);
}

#[test]
fn date_functions() {
    let c = fixture();
    let r = run(&c, "SELECT DISTINCT year(date), month(date) FROM covid");
    assert_eq!(r.rows, vec![vec![Value::Int(2021), Value::Int(12)]]);
}

#[test]
fn select_without_from() {
    let c = Catalog::new();
    let r = run(&c, "SELECT 1 + 2 AS three, 'x' AS s");
    assert_eq!(r.rows, vec![vec![Value::Int(3), Value::str("x")]]);
    assert_eq!(r.schema.fields[0].name, "three");
}

#[test]
fn unknown_column_is_error() {
    let c = fixture();
    assert!(c.execute_sql("SELECT nope FROM covid").is_err());
}

#[test]
fn ambiguous_column_is_error() {
    let c = fixture();
    let err = c
        .execute_sql("SELECT state FROM covid JOIN regions ON covid.state = regions.state")
        .unwrap_err();
    assert!(matches!(err, pi2_engine::EngineError::AmbiguousColumn(_)), "got {err:?}");
}

#[test]
fn unknown_table_is_error() {
    let c = fixture();
    assert!(matches!(
        c.execute_sql("SELECT * FROM nothere").unwrap_err(),
        pi2_engine::EngineError::UnknownTable(_)
    ));
}

#[test]
fn free_columns_detects_correlation() {
    let c = fixture();
    let q = pi2_sql::parse_query(
        "SELECT c2.state FROM covid c2 JOIN regions r2 ON c2.state = r2.state WHERE r2.region = r.region",
    )
    .unwrap();
    let free = c.free_columns(&q);
    assert_eq!(free.len(), 1);
    assert_eq!(free[0].to_string(), "r.region");
}

#[test]
fn free_columns_empty_for_self_contained_query() {
    let c = fixture();
    let q = pi2_sql::parse_query("SELECT state, sum(cases) FROM covid GROUP BY state").unwrap();
    assert!(c.free_columns(&q).is_empty());
}

#[test]
fn null_handling_in_where() {
    let mut c = Catalog::new();
    let mut t = Table::builder("t").column("a", DataType::Int).build();
    t.push_row(vec![Value::Int(1)]).unwrap();
    t.push_row(vec![Value::Null]).unwrap();
    c.register(t);
    // NULL > 0 is NULL -> filtered out.
    let r = run(&c, "SELECT a FROM t WHERE a > 0");
    assert_eq!(r.rows.len(), 1);
    let r = run(&c, "SELECT a FROM t WHERE a IS NULL");
    assert_eq!(r.rows.len(), 1);
    // count(a) skips NULLs, count(*) doesn't.
    let r = run(&c, "SELECT count(a), count(*) FROM t");
    assert_eq!(r.rows[0], vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn group_by_groups_nulls_together() {
    let mut c = Catalog::new();
    let mut t = Table::builder("t").column("k", DataType::Str).column("v", DataType::Int).build();
    t.push_row(vec![Value::Null, Value::Int(1)]).unwrap();
    t.push_row(vec![Value::Null, Value::Int(2)]).unwrap();
    t.push_row(vec![Value::str("a"), Value::Int(3)]).unwrap();
    c.register(t);
    let r = run(&c, "SELECT k, sum(v) FROM t GROUP BY k ORDER BY k");
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Value::Null, Value::Int(3)]);
}

#[test]
fn result_schema_types_inferred() {
    let c = fixture();
    let r = run(
        &c,
        "SELECT date, state, cases, avg(cases) AS m FROM covid GROUP BY date, state, cases LIMIT 1",
    );
    let types: Vec<DataType> = r.schema.fields.iter().map(|f| f.data_type).collect();
    assert_eq!(types, vec![DataType::Date, DataType::Str, DataType::Int, DataType::Float]);
}

#[test]
fn scalar_subquery_multiple_rows_is_error() {
    let c = fixture();
    assert!(c.execute_sql("SELECT (SELECT cases FROM covid) FROM regions").is_err());
}

#[test]
fn aggregate_outside_grouping_is_error() {
    let c = fixture();
    assert!(c.execute_sql("SELECT state FROM covid WHERE sum(cases) > 10").is_err());
}
