//! Query results.

use crate::schema::Schema;
use crate::stats::ColumnStats;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The materialized result of executing a query: an inferred output schema
/// plus the result rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// The output schema.
    pub schema: Schema,
    /// The data rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All values of output column `idx`.
    pub fn column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Statistics for output column `idx`.
    pub fn column_stats(&self, idx: usize) -> ColumnStats {
        ColumnStats::compute(&self.schema.fields[idx], self.column(idx))
    }

    /// Render the result as an ASCII table (the "static table" rendering the
    /// paper contrasts PI2 against).
    pub fn to_ascii_table(&self) -> String {
        let headers: Vec<String> = self.schema.fields.iter().map(|f| f.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    #[test]
    fn ascii_table_renders() {
        let rs = ResultSet {
            schema: Schema::new(vec![
                Field::new("state", DataType::Str),
                Field::new("cases", DataType::Int),
            ]),
            rows: vec![
                vec![Value::str("NY"), Value::Int(1200)],
                vec![Value::str("FL"), Value::Int(87)],
            ],
        };
        let t = rs.to_ascii_table();
        assert!(t.contains("| state | cases |"));
        assert!(t.contains("| NY    | 1200  |"));
        assert!(t.contains("| FL    | 87    |"));
    }
}
