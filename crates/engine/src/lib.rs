#![warn(missing_docs)]

//! # pi2-engine
//!
//! An in-memory SQL execution engine: the substrate that stands in for the
//! SQLite kernel used by the original PI2 demonstration. PI2's generated
//! interfaces are *live* — every widget event re-instantiates a SQL query
//! from the DiffTree and re-executes it — so the reproduction needs a real
//! query engine, not canned results.
//!
//! The engine executes the [`pi2_sql`] AST directly against an in-memory
//! [`Catalog`] of tables. Supported: projections with expressions and
//! aliases, inner/left/cross joins, `WHERE`, grouped and ungrouped
//! aggregation, `HAVING`, `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET`, scalar
//! functions, and scalar/`IN`/`EXISTS` subqueries including correlated ones
//! (with memoization keyed on the subquery's free variables).
//!
//! ```
//! use pi2_engine::{Catalog, Table, Value};
//! use pi2_sql::parse_query;
//!
//! let mut catalog = Catalog::new();
//! let mut t = Table::builder("covid")
//!     .column("state", pi2_engine::DataType::Str)
//!     .column("cases", pi2_engine::DataType::Int)
//!     .build();
//! t.push_row(vec![Value::str("NY"), Value::Int(100)]).unwrap();
//! t.push_row(vec![Value::str("FL"), Value::Int(250)]).unwrap();
//! catalog.register(t);
//!
//! let q = parse_query("SELECT state FROM covid WHERE cases > 200").unwrap();
//! let result = catalog.execute(&q).unwrap();
//! assert_eq!(result.rows, vec![vec![Value::str("FL")]]);
//! ```

pub mod catalog;
pub mod columnar;
pub mod csv;
pub mod delta;
pub mod error;
pub mod eval;
pub mod exec;
pub(crate) mod exec_columnar;
pub mod functions;
pub mod result;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::{Catalog, ExecLimits};
pub use delta::{DeltaCache, DeltaOutcome};
pub use error::{EngineError, Result};
pub use result::ResultSet;
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, ScanStats};
pub use table::Table;
pub use value::{DataType, Value};
