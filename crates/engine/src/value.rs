//! Runtime values and data types.

use pi2_sql::{Date, Literal, F64};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The engine's column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean literal/value.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// String.
    Str,
    /// Calendar date.
    Date,
    /// Unknown/unresolved type (e.g. a column of all NULLs).
    Null,
}

impl DataType {
    /// True for Int and Float.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// True for Date (the only temporal type in this dialect).
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Date)
    }

    /// The wider of two numeric types, or `None` if they aren't unifiable.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, b) => Some(b),
            (a, Null) => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "TEXT",
            DataType::Date => "DATE",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A runtime value.
///
/// `Value` implements *total* equality, ordering, and hashing so it can be
/// used directly as a group key or sort key: `Null` sorts first, numeric
/// types compare numerically across `Int`/`Float`, and floats compare via
/// `total_cmp`. SQL's three-valued comparison semantics live in
/// [`crate::eval`], not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean literal/value.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for date values; panics on bad input
    /// (intended for tests and dataset builders with known-good dates).
    pub fn date(s: &str) -> Self {
        Value::Date(Date::parse(s).expect("valid date"))
    }

    /// The value's runtime type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64 as f64),
            Value::Date(d) => Some(d.0 as f64),
            _ => None,
        }
    }

    /// Truthiness for WHERE/HAVING: NULL and FALSE filter the row out.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Convert a literal from the AST into a runtime value.
    pub fn from_literal(lit: &Literal) -> Self {
        match lit {
            Literal::Null => Value::Null,
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(v) => Value::Int(*v),
            Literal::Float(F64(v)) => Value::Float(*v),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Date(d) => Value::Date(*d),
        }
    }

    /// Convert back to an AST literal (used when binding interface state
    /// into query holes).
    pub fn to_literal(&self) -> Literal {
        match self {
            Value::Null => Literal::Null,
            Value::Bool(b) => Literal::Bool(*b),
            Value::Int(v) => Literal::Int(*v),
            Value::Float(v) => Literal::Float(F64(*v)),
            Value::Str(s) => Literal::Str(s.clone()),
            Value::Date(d) => Literal::Date(*d),
        }
    }

    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_ne!(hash_of(&Value::Int(7)), hash_of(&Value::Int(8)));
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Int(1), Value::Null, Value::str("a")];
        v.sort();
        assert_eq!(v[0], Value::Null);
    }

    #[test]
    fn literal_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-4),
            Value::Float(2.75),
            Value::str("hi"),
            Value::date("2021-12-25"),
        ] {
            assert_eq!(Value::from_literal(&v.to_literal()), v);
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }

    #[test]
    fn unify_types() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Null.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Int.unify(DataType::Str), None);
    }
}
