//! CSV import/export for tables — how a downstream user loads their own
//! data into the engine (the demo's participants would bring datasets).
//!
//! The format is RFC-4180-style: comma separators, `"` quoting with `""`
//! escapes, a header row. Types are either declared by the caller or
//! inferred per column from the data (Int ⊂ Float ⊂ Str, with ISO dates
//! and true/false recognized).

use crate::error::{EngineError, Result};
use crate::table::Table;
use crate::value::{DataType, Value};
use pi2_sql::Date;

/// Parse one CSV record, honoring quotes. Returns `None` at end of input.
fn parse_record(input: &str, pos: &mut usize) -> Option<Vec<String>> {
    let bytes = input.as_bytes();
    if *pos >= bytes.len() {
        return None;
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    while *pos < bytes.len() {
        let c = bytes[*pos] as char;
        *pos += 1;
        if in_quotes {
            if c == '"' {
                if bytes.get(*pos) == Some(&b'"') {
                    field.push('"');
                    *pos += 1;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => break,
                _ => field.push(c),
            }
        }
    }
    fields.push(field);
    Some(fields)
}

/// Parse a cell into the most specific value for `ty`.
fn parse_cell(cell: &str, ty: DataType) -> Result<Value> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| EngineError::SchemaViolation(format!("bad INT cell {cell:?}"))),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| EngineError::SchemaViolation(format!("bad FLOAT cell {cell:?}"))),
        DataType::Bool => match cell {
            "true" | "TRUE" | "True" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "False" => Ok(Value::Bool(false)),
            _ => Err(EngineError::SchemaViolation(format!("bad BOOL cell {cell:?}"))),
        },
        DataType::Date => Date::parse(cell)
            .map(Value::Date)
            .ok_or_else(|| EngineError::SchemaViolation(format!("bad DATE cell {cell:?}"))),
        DataType::Str | DataType::Null => Ok(Value::str(cell)),
    }
}

/// Infer the narrowest type that fits every non-empty cell of a column.
fn infer_column_type(cells: &[&str]) -> DataType {
    let mut ty: Option<DataType> = None;
    for cell in cells {
        if cell.is_empty() {
            continue;
        }
        let cell_ty = if cell.parse::<i64>().is_ok() {
            DataType::Int
        } else if cell.parse::<f64>().is_ok() {
            DataType::Float
        } else if Date::parse(cell).is_some() {
            DataType::Date
        } else if matches!(*cell, "true" | "false" | "TRUE" | "FALSE" | "True" | "False") {
            DataType::Bool
        } else {
            DataType::Str
        };
        ty = Some(match (ty, cell_ty) {
            (None, t) => t,
            (Some(a), b) if a == b => a,
            (Some(DataType::Int), DataType::Float) | (Some(DataType::Float), DataType::Int) => {
                DataType::Float
            }
            _ => DataType::Str,
        });
        if ty == Some(DataType::Str) {
            break;
        }
    }
    ty.unwrap_or(DataType::Str)
}

impl Table {
    /// Load a table from CSV text with a header row, inferring column types.
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Table> {
        Self::from_csv_impl(name, csv, None)
    }

    /// Load a table from CSV text with a header row, using the caller's
    /// declared column types (one per header column) instead of inference.
    /// Cells that don't parse as the declared type fail with their row and
    /// column position.
    pub fn from_csv_with_types(
        name: impl Into<String>,
        csv: &str,
        types: &[DataType],
    ) -> Result<Table> {
        Self::from_csv_impl(name, csv, Some(types))
    }

    fn from_csv_impl(
        name: impl Into<String>,
        csv: &str,
        declared: Option<&[DataType]>,
    ) -> Result<Table> {
        let mut pos = 0;
        let header = parse_record(csv, &mut pos)
            .ok_or_else(|| EngineError::SchemaViolation("empty CSV".into()))?;
        if let Some(types) = declared {
            if types.len() != header.len() {
                return Err(EngineError::SchemaViolation(format!(
                    "{} declared types for {} header columns",
                    types.len(),
                    header.len()
                )));
            }
        }
        let mut records = Vec::new();
        // Data rows are 1-based and exclude the header, matching how a
        // user counts lines in their file (header = line 1, first data
        // row = row 1 on line 2).
        let mut data_row = 0usize;
        while let Some(rec) = parse_record(csv, &mut pos) {
            if rec.len() == 1 && rec[0].is_empty() {
                continue; // trailing blank line
            }
            data_row += 1;
            if rec.len() != header.len() {
                return Err(EngineError::SchemaViolation(format!(
                    "CSV row {data_row} (line {}) has {} fields, header has {}",
                    data_row + 1,
                    rec.len(),
                    header.len()
                )));
            }
            records.push(rec);
        }
        let types: Vec<DataType> = match declared {
            Some(types) => types.to_vec(),
            None => (0..header.len())
                .map(|i| {
                    let col: Vec<&str> = records.iter().map(|r| r[i].as_str()).collect();
                    infer_column_type(&col)
                })
                .collect(),
        };
        let mut builder = Table::builder(name);
        for (h, t) in header.iter().zip(&types) {
            builder = builder.column(h.clone(), *t);
        }
        let mut table = builder.build();
        for (r, rec) in records.iter().enumerate() {
            let row: Vec<Value> = rec
                .iter()
                .zip(&types)
                .enumerate()
                .map(|(c, (cell, ty))| {
                    parse_cell(cell, *ty).map_err(|e| match e {
                        EngineError::SchemaViolation(msg) => EngineError::SchemaViolation(format!(
                            "CSV row {}, column {} ({}): {msg}",
                            r + 1,
                            c + 1,
                            header[c]
                        )),
                        other => other,
                    })
                })
                .collect::<Result<_>>()?;
            table.push_row(row)?;
        }
        Ok(table)
    }

    /// Serialize the table as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let header: Vec<String> = self.schema.fields.iter().map(|f| quote(&f.name)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    Value::Str(s) => quote(s),
                    other => other.to_string(),
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    const SAMPLE: &str = "date,state,cases,rate,flag,note\n\
        2021-12-01,NY,100,1.5,true,plain\n\
        2021-12-02,FL,80,0.25,false,\"quoted, cell\"\n\
        2021-12-03,VT,,0.1,true,\"with \"\"quotes\"\"\"\n";

    #[test]
    fn imports_with_type_inference() {
        let t = Table::from_csv("covid", SAMPLE).unwrap();
        let types: Vec<DataType> = t.schema.fields.iter().map(|f| f.data_type).collect();
        assert_eq!(
            types,
            vec![
                DataType::Date,
                DataType::Str,
                DataType::Int,
                DataType::Float,
                DataType::Bool,
                DataType::Str
            ]
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.rows[1][5], Value::str("quoted, cell"));
        assert_eq!(t.rows[2][2], Value::Null);
        assert_eq!(t.rows[2][5], Value::str("with \"quotes\""));
    }

    #[test]
    fn imported_table_is_queryable() {
        let mut c = Catalog::new();
        c.register(Table::from_csv("covid", SAMPLE).unwrap());
        let r = c.execute_sql("SELECT state FROM covid WHERE cases > 90").unwrap();
        assert_eq!(r.rows, vec![vec![Value::str("NY")]]);
    }

    #[test]
    fn csv_roundtrips() {
        let t = Table::from_csv("covid", SAMPLE).unwrap();
        let csv = t.to_csv();
        let t2 = Table::from_csv("covid", &csv).unwrap();
        assert_eq!(t.schema, t2.schema);
        assert_eq!(t.rows, t2.rows);
    }

    #[test]
    fn mixed_int_float_column_widens() {
        let t = Table::from_csv("t", "x\n1\n2.5\n").unwrap();
        assert_eq!(t.schema.fields[0].data_type, DataType::Float);
        assert_eq!(t.rows[0][0], Value::Float(1.0));
    }

    #[test]
    fn ragged_record_is_error() {
        assert!(Table::from_csv("t", "a,b\n1\n").is_err());
        assert!(Table::from_csv("t", "").is_err());
    }

    #[test]
    fn ragged_record_error_reports_row_and_line() {
        // Rows 1 and 2 are fine; row 3 (file line 4) is ragged.
        let err = Table::from_csv("t", "a,b\n1,2\n3,4\n5\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 3"), "missing row number: {msg}");
        assert!(msg.contains("line 4"), "missing line number: {msg}");
        assert!(msg.contains("1 fields, header has 2"), "missing field counts: {msg}");
    }

    #[test]
    fn bad_cell_error_reports_row_and_column() {
        // Declared types make the malformed INT cell in row 2 an error
        // instead of widening the column to Str.
        let err =
            Table::from_csv_with_types("t", "a,b\nx,1\ny,oops\n", &[DataType::Str, DataType::Int])
                .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("row 2"), "missing row number: {msg}");
        assert!(msg.contains("column 2 (b)"), "missing column: {msg}");
        assert!(msg.contains("oops"), "missing cell text: {msg}");
    }

    #[test]
    fn declared_types_are_used_verbatim() {
        let t = Table::from_csv_with_types("t", "x\n1\n2\n", &[DataType::Float]).unwrap();
        assert_eq!(t.schema.fields[0].data_type, DataType::Float);
        assert_eq!(t.rows[0][0], Value::Float(1.0));
        assert!(Table::from_csv_with_types("t", "x,y\n1,2\n", &[DataType::Int]).is_err());
    }

    #[test]
    fn synthetic_datasets_export_and_reimport() {
        let catalog = crate::catalog::Catalog::new();
        let _ = catalog;
        let mut t = Table::builder("prices").column("v", DataType::Float).build();
        t.push_row(vec![Value::Float(1.25)]).unwrap();
        let csv = t.to_csv();
        let t2 = Table::from_csv("prices", &csv).unwrap();
        assert_eq!(t2.rows[0][0], Value::Float(1.25));
    }
}
