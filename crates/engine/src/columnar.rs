//! Columnar mirrors of base tables.
//!
//! The row-oriented [`Table`] stays the source of truth; a [`ColumnarTable`]
//! is a typed, column-major copy built once when the table is registered in
//! the catalog. The columnar executor (see [`crate::exec_columnar`]) scans
//! these vectors directly instead of cloning `Vec<Vec<Value>>` row storage
//! per query, and its compiled predicates read typed slices instead of
//! matching on `Value` per row.

use crate::table::Table;
use crate::value::{DataType, Value};
use pi2_sql::Date;

/// Typed storage for one column. Null slots hold a placeholder (0 / empty
/// string / epoch) and are tracked by the enclosing [`Column::nulls`] mask.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Strings.
    Str(Vec<String>),
    /// Dates as day numbers.
    Date(Vec<i32>),
    /// Catch-all for columns whose values defy a single type (possible when
    /// a `Table` is constructed literally, bypassing `push_row` validation).
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnarTable`]: typed data plus an optional null mask
/// (absent when the column contains no NULLs, the common case).
#[derive(Debug, Clone)]
pub struct Column {
    /// The values.
    pub data: ColumnData,
    /// `nulls[i]` is true when row `i` is NULL; `None` means no NULLs.
    pub nulls: Option<Vec<bool>>,
}

impl Column {
    /// Build a column from row-major values, choosing typed storage when
    /// every non-null value matches `declared`, and `Mixed` otherwise.
    pub fn from_values<'a>(declared: DataType, values: impl Iterator<Item = &'a Value>) -> Column {
        let values: Vec<&Value> = values.collect();
        let uniform = values
            .iter()
            .all(|v| v.is_null() || v.data_type() == declared || declared == DataType::Null);
        if !uniform || declared == DataType::Null {
            let mixed: Vec<Value> = values.into_iter().cloned().collect();
            let nulls = null_mask(mixed.iter().map(Value::is_null));
            return Column { data: ColumnData::Mixed(mixed), nulls };
        }
        let nulls = null_mask(values.iter().map(|v| v.is_null()));
        let data = match declared {
            DataType::Int => ColumnData::Int(
                values.iter().map(|v| if let Value::Int(x) = v { *x } else { 0 }).collect(),
            ),
            DataType::Float => ColumnData::Float(
                values.iter().map(|v| if let Value::Float(x) = v { *x } else { 0.0 }).collect(),
            ),
            DataType::Bool => {
                ColumnData::Bool(values.iter().map(|v| matches!(v, Value::Bool(true))).collect())
            }
            DataType::Str => ColumnData::Str(
                values
                    .iter()
                    .map(|v| if let Value::Str(s) = v { s.clone() } else { String::new() })
                    .collect(),
            ),
            DataType::Date => ColumnData::Date(
                values.iter().map(|v| if let Value::Date(d) = v { d.0 } else { 0 }).collect(),
            ),
            DataType::Null => unreachable!("handled above"),
        };
        Column { data, nulls }
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[i])
    }

    /// Materialize row `i` as a [`Value`].
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(Date(v[i])),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }
}

/// A null mask, or `None` when nothing is null.
fn null_mask(flags: impl Iterator<Item = bool>) -> Option<Vec<bool>> {
    let mask: Vec<bool> = flags.collect();
    if mask.iter().any(|&b| b) {
        Some(mask)
    } else {
        None
    }
}

/// A column-major copy of one base table.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    /// Number of rows.
    pub len: usize,
    /// Columns, in schema order.
    pub columns: Vec<Column>,
}

impl ColumnarTable {
    /// Transpose a row-oriented table.
    pub fn build(table: &Table) -> ColumnarTable {
        let columns = table
            .schema
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| Column::from_values(f.data_type, table.rows.iter().map(|r| &r[i])))
            .collect();
        ColumnarTable { len: table.rows.len(), columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Str)
            .column("c", DataType::Float)
            .build();
        t.push_row(vec![Value::Int(1), Value::str("x"), Value::Float(0.5)]).unwrap();
        t.push_row(vec![Value::Null, Value::str("y"), Value::Null]).unwrap();
        t.push_row(vec![Value::Int(3), Value::Null, Value::Float(2.5)]).unwrap();
        t
    }

    #[test]
    fn transpose_roundtrips_values() {
        let t = sample();
        let c = ColumnarTable::build(&t);
        assert_eq!(c.len, 3);
        for (i, row) in t.rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(&c.columns[j].value(i), v, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn typed_storage_and_null_masks() {
        let c = ColumnarTable::build(&sample());
        assert!(matches!(c.columns[0].data, ColumnData::Int(_)));
        assert!(matches!(c.columns[1].data, ColumnData::Str(_)));
        assert!(matches!(c.columns[2].data, ColumnData::Float(_)));
        assert!(c.columns[0].is_null(1));
        assert!(!c.columns[0].is_null(0));
        assert!(c.columns[1].is_null(2));
    }

    #[test]
    fn no_nulls_means_no_mask() {
        let mut t = Table::builder("t").column("a", DataType::Int).build();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let c = ColumnarTable::build(&t);
        assert!(c.columns[0].nulls.is_none());
    }

    #[test]
    fn hand_built_mismatched_rows_fall_back_to_mixed() {
        // A literally-constructed table can bypass push_row validation.
        let t = Table {
            name: "t".into(),
            schema: crate::schema::Schema::new(vec![crate::schema::Field::new("a", DataType::Int)]),
            rows: vec![vec![Value::Int(1)], vec![Value::str("oops")]],
        };
        let c = ColumnarTable::build(&t);
        assert!(matches!(c.columns[0].data, ColumnData::Mixed(_)));
        assert_eq!(c.columns[0].value(1), Value::str("oops"));
    }
}
