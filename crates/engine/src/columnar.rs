//! Columnar mirrors of base tables.
//!
//! The row-oriented [`Table`] stays the source of truth; a [`ColumnarTable`]
//! is a typed, column-major copy built once when the table is registered in
//! the catalog. The columnar executor (see [`crate::exec_columnar`]) scans
//! these vectors directly instead of cloning `Vec<Vec<Value>>` row storage
//! per query, and its compiled predicates read typed slices instead of
//! matching on `Value` per row.
//!
//! Storage layout (the 10M-row upgrades):
//!
//! * **Dictionary-encoded strings** — a string column stores `u32` codes
//!   into a lexicographically sorted dictionary, so code order equals
//!   string order and predicates compare integers instead of strings.
//! * **Bit-packed null masks** — nulls cost one bit per row ([`BitMask`]),
//!   and the same structure backs the executor's selection masks so a
//!   pruned block is 64 rows per word write, not 64 bool writes.
//! * **Zone maps** — every column is summarized in [`BLOCK_ROWS`]-row
//!   blocks carrying min/max and a null count ([`ZoneMap`]), letting the
//!   executor skip whole blocks whose value range cannot intersect a
//!   predicate.
//!
//! Columns are built in parallel across a `std::thread::scope`, and
//! per-column [`ColumnStats`] are computed lazily from the typed storage
//! (sorting primitives, or just reading the dictionary) instead of
//! re-walking `Value` rows through a `BTreeSet`.

use crate::schema::Field;
use crate::stats::{ColumnStats, DISTINCT_SAMPLE_CAP};
use crate::table::Table;
use crate::value::{DataType, Value};
use pi2_sql::Date;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::OnceLock;

/// Rows per zone-map block. 4096 keeps zone metadata tiny (a 10M-row
/// column carries ~2.4k blocks) while making a pruned block worth 64
/// whole words of skipped mask writes.
pub const BLOCK_ROWS: usize = 4096;

/// Number of zone-map blocks covering `len` rows.
#[inline]
pub fn block_count(len: usize) -> usize {
    len.div_ceil(BLOCK_ROWS)
}

/// The row range of block `b` in a column of `len` rows.
#[inline]
pub fn block_range(b: usize, len: usize) -> Range<usize> {
    let start = b * BLOCK_ROWS;
    start..((start + BLOCK_ROWS).min(len))
}

/// A fixed-length bit set over row indices: one bit per row, packed 64 per
/// word. Used both for column null masks and for the executor's selection
/// masks. Bits at positions `>= len` are kept zero so word-granular
/// operations (`count_ones`, [`BitMask::iter_ones`]) need no tail special
/// case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

impl BitMask {
    /// A mask of `len` bits, all set to `fill`.
    pub fn new(len: usize, fill: bool) -> BitMask {
        let words = len.div_ceil(64);
        let mut m = BitMask { words: vec![if fill { !0u64 } else { 0 }; words], len };
        m.trim_tail();
        m
    }

    /// Build from per-row flags.
    pub fn from_bools(flags: &[bool]) -> BitMask {
        let mut m = BitMask::new(flags.len(), false);
        for (i, &b) in flags.iter().enumerate() {
            if b {
                m.set(i);
            }
        }
        m
    }

    /// Number of bits (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Set the bit at `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clear the bit at `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Assign the bit at `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, b: bool) {
        if b {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Clear every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set or clear all bits in `range`, word-at-a-time where possible.
    pub fn fill_range(&mut self, range: Range<usize>, fill: bool) {
        debug_assert!(range.end <= self.len);
        if range.is_empty() {
            return;
        }
        let (start, end) = (range.start, range.end);
        let (first_word, last_word) = (start >> 6, (end - 1) >> 6);
        // Mask of bits within [start, end) that fall in word `w`.
        let word_mask = |w: usize| -> u64 {
            let lo = if w == first_word { start & 63 } else { 0 };
            let hi = if w == last_word { ((end - 1) & 63) + 1 } else { 64 };
            let above = if hi == 64 { !0u64 } else { (1u64 << hi) - 1 };
            above & !((1u64 << lo) - 1)
        };
        for w in first_word..=last_word {
            let m = word_mask(w);
            if fill {
                self.words[w] |= m;
            } else {
                self.words[w] &= !m;
            }
        }
    }

    /// Copy the bits in `range` from `other` (same length masks).
    pub fn copy_range_from(&mut self, other: &BitMask, range: Range<usize>) {
        debug_assert_eq!(self.len, other.len);
        debug_assert!(range.end <= self.len);
        if range.is_empty() {
            return;
        }
        let (start, end) = (range.start, range.end);
        let (first_word, last_word) = (start >> 6, (end - 1) >> 6);
        for w in first_word..=last_word {
            let lo = if w == first_word { start & 63 } else { 0 };
            let hi = if w == last_word { ((end - 1) & 63) + 1 } else { 64 };
            let above = if hi == 64 { !0u64 } else { (1u64 << hi) - 1 };
            let m = above & !((1u64 << lo) - 1);
            self.words[w] = (self.words[w] & !m) | (other.words[w] & m);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits within `range`.
    pub fn count_ones_in(&self, range: Range<usize>) -> usize {
        // Rare path (debug asserts, zone construction); bit-at-a-time is fine.
        range.filter(|&i| self.get(i)).count()
    }

    /// Iterate the indices of set bits in ascending order, skipping zero
    /// words 64 rows at a time.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Zero any bits at positions `>= len` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set bit positions of a [`BitMask`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx << 6) | bit)
    }
}

/// A dictionary-encoded string column: `codes[i]` indexes into `dict`,
/// which is sorted lexicographically so **code order equals string order**
/// — comparisons against a constant become integer comparisons against the
/// constant's rank. Null rows hold code 0 and are tracked by the enclosing
/// [`Column::nulls`] mask.
#[derive(Debug, Clone)]
pub struct DictColumn {
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    /// Distinct non-null strings, sorted ascending.
    pub dict: Vec<String>,
}

impl DictColumn {
    /// The string at row `i` (caller must ensure the row is non-null).
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        &self.dict[self.codes[i] as usize]
    }

    /// The rank of `s` in the dictionary: `Ok(code)` when present,
    /// `Err(insertion point)` when absent. Comparing a row's code against
    /// this rank reproduces the string comparison exactly.
    pub fn rank(&self, s: &str) -> std::result::Result<u32, u32> {
        match self.dict.binary_search_by(|d| d.as_str().cmp(s)) {
            Ok(i) => Ok(i as u32),
            Err(i) => Err(i as u32),
        }
    }
}

/// Typed storage for one column. Null slots hold a placeholder (0 / code 0
/// / epoch) and are tracked by the enclosing [`Column::nulls`] mask.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded strings.
    Str(DictColumn),
    /// Dates as day numbers.
    Date(Vec<i32>),
    /// Catch-all for columns whose values defy a single type (possible when
    /// a `Table` is constructed literally, bypassing `push_row` validation).
    Mixed(Vec<Value>),
}

/// Zone-map summary of one [`BLOCK_ROWS`]-row block of a column: the
/// min/max over non-null rows (as [`Value`]s, whose total order matches
/// the typed comparison loops) and how many rows are null.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    /// NULL rows in this block.
    pub null_count: u32,
    /// `(min, max)` over the block's non-null rows; `None` when every row
    /// in the block is null.
    pub min_max: Option<(Value, Value)>,
}

/// One column of a [`ColumnarTable`]: typed data, an optional bit-packed
/// null mask (absent when the column contains no NULLs, the common case),
/// and per-block zone maps (empty for `Mixed` columns, which never take
/// the typed predicate loops).
#[derive(Debug, Clone)]
pub struct Column {
    /// The values.
    pub data: ColumnData,
    /// Set bit = row is NULL; `None` means no NULLs.
    pub nulls: Option<BitMask>,
    /// Per-block zone maps; empty for `Mixed` columns.
    pub zones: Vec<ZoneMap>,
}

impl Column {
    /// Build a column from row-major values, choosing typed storage when
    /// every non-null value matches `declared`, and `Mixed` otherwise.
    pub fn from_values<'a>(declared: DataType, values: impl Iterator<Item = &'a Value>) -> Column {
        let values: Vec<&Value> = values.collect();
        let uniform = values
            .iter()
            .all(|v| v.is_null() || v.data_type() == declared || declared == DataType::Null);
        if !uniform || declared == DataType::Null {
            let mixed: Vec<Value> = values.into_iter().cloned().collect();
            let nulls = null_mask(mixed.iter().map(Value::is_null));
            return Column { data: ColumnData::Mixed(mixed), nulls, zones: Vec::new() };
        }
        let nulls = null_mask(values.iter().map(|v| v.is_null()));
        let data = match declared {
            DataType::Int => ColumnData::Int(
                values.iter().map(|v| if let Value::Int(x) = v { *x } else { 0 }).collect(),
            ),
            DataType::Float => ColumnData::Float(
                values.iter().map(|v| if let Value::Float(x) = v { *x } else { 0.0 }).collect(),
            ),
            DataType::Bool => {
                ColumnData::Bool(values.iter().map(|v| matches!(v, Value::Bool(true))).collect())
            }
            DataType::Str => ColumnData::Str(encode_strings(&values)),
            DataType::Date => ColumnData::Date(
                values.iter().map(|v| if let Value::Date(d) = v { d.0 } else { 0 }).collect(),
            ),
            DataType::Null => unreachable!("handled above"),
        };
        let zones = build_zones(&data, nulls.as_ref(), values.len());
        Column { data, nulls, zones }
    }

    /// True when row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n.get(i))
    }

    /// Materialize row `i` as a [`Value`].
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(d) => Value::Str(d.get(i).to_string()),
            ColumnData::Date(v) => Value::Date(Date(v[i])),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }
}

/// Dictionary-encode string values: hash the distinct strings, sort them,
/// then map each row to its code. O(N) hashing plus a sort of the (small)
/// distinct set, instead of sorting all N rows.
fn encode_strings(values: &[&Value]) -> DictColumn {
    let mut distinct: HashMap<&str, u32> = HashMap::new();
    for v in values {
        if let Value::Str(s) = v {
            distinct.entry(s.as_str()).or_insert(0);
        }
    }
    let mut dict_refs: Vec<&str> = distinct.keys().copied().collect();
    dict_refs.sort_unstable();
    for (code, s) in dict_refs.iter().enumerate() {
        if let Some(slot) = distinct.get_mut(s) {
            *slot = code as u32;
        }
    }
    let codes = values
        .iter()
        .map(|v| if let Value::Str(s) = v { distinct[s.as_str()] } else { 0 })
        .collect();
    DictColumn { codes, dict: dict_refs.iter().map(|s| s.to_string()).collect() }
}

/// A null mask, or `None` when nothing is null.
fn null_mask(flags: impl Iterator<Item = bool>) -> Option<BitMask> {
    let mask: Vec<bool> = flags.collect();
    if mask.iter().any(|&b| b) {
        Some(BitMask::from_bools(&mask))
    } else {
        None
    }
}

/// Compute per-block zone maps for typed storage. The min/max are stored
/// as [`Value`]s because `Value`'s total order agrees with every typed
/// comparison loop in the executor (ints exactly, floats via `total_cmp`,
/// strings via the sorted dictionary).
fn build_zones(data: &ColumnData, nulls: Option<&BitMask>, len: usize) -> Vec<ZoneMap> {
    fn typed<T: Copy>(
        vals: &[T],
        nulls: Option<&BitMask>,
        len: usize,
        cmp: impl Fn(&T, &T) -> Ordering,
        to_value: impl Fn(T) -> Value,
    ) -> Vec<ZoneMap> {
        (0..block_count(len))
            .map(|b| {
                let range = block_range(b, len);
                let mut min: Option<T> = None;
                let mut max: Option<T> = None;
                let mut null_count = 0u32;
                for i in range {
                    if nulls.is_some_and(|n| n.get(i)) {
                        null_count += 1;
                        continue;
                    }
                    let x = vals[i];
                    if min.as_ref().is_none_or(|m| cmp(&x, m) == Ordering::Less) {
                        min = Some(x);
                    }
                    if max.as_ref().is_none_or(|m| cmp(&x, m) == Ordering::Greater) {
                        max = Some(x);
                    }
                }
                let min_max = min.zip(max).map(|(a, b)| (to_value(a), to_value(b)));
                ZoneMap { null_count, min_max }
            })
            .collect()
    }

    match data {
        ColumnData::Int(v) => typed(v, nulls, len, i64::cmp, Value::Int),
        ColumnData::Float(v) => typed(v, nulls, len, |a, b| a.total_cmp(b), Value::Float),
        ColumnData::Bool(v) => typed(v, nulls, len, bool::cmp, Value::Bool),
        ColumnData::Date(v) => typed(v, nulls, len, i32::cmp, |d| Value::Date(Date(d))),
        ColumnData::Str(d) => {
            typed(&d.codes, nulls, len, u32::cmp, |c| Value::Str(d.dict[c as usize].clone()))
        }
        // Mixed columns never take the typed loops; no zones.
        ColumnData::Mixed(_) => Vec::new(),
    }
}

/// A column-major copy of one base table.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    /// Number of rows.
    pub len: usize,
    /// Columns, in schema order.
    pub columns: Vec<Column>,
    /// Schema fields, for lazily computed statistics.
    fields: Vec<Field>,
    /// Per-column statistics, computed from typed storage on first use.
    stats: Vec<OnceLock<ColumnStats>>,
    /// Wall-clock time spent transposing + encoding, in nanoseconds.
    build_nanos: u64,
}

impl ColumnarTable {
    /// Transpose a row-oriented table, building columns in parallel (one
    /// chunk of columns per available core).
    pub fn build(table: &Table) -> ColumnarTable {
        let started = std::time::Instant::now();
        let fields = table.schema.fields.clone();
        let n = fields.len();
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n.max(1));
        let build_one =
            |i: usize| Column::from_values(fields[i].data_type, table.rows.iter().map(|r| &r[i]));
        let columns: Vec<Column> = if workers <= 1 || n <= 1 {
            (0..n).map(build_one).collect()
        } else {
            let chunk = n.div_ceil(workers);
            let mut slots: Vec<Option<Column>> = (0..n).map(|_| None).collect();
            std::thread::scope(|s| {
                for (ci, out) in slots.chunks_mut(chunk).enumerate() {
                    let build_one = &build_one;
                    s.spawn(move || {
                        for (k, slot) in out.iter_mut().enumerate() {
                            *slot = Some(build_one(ci * chunk + k));
                        }
                    });
                }
            });
            slots.into_iter().map(|c| c.expect("every column slot filled")).collect()
        };
        let stats = (0..n).map(|_| OnceLock::new()).collect();
        ColumnarTable {
            len: table.rows.len(),
            columns,
            fields,
            stats,
            build_nanos: started.elapsed().as_nanos() as u64,
        }
    }

    /// Wall-clock nanoseconds spent building this columnar mirror.
    pub fn build_nanos(&self) -> u64 {
        self.build_nanos
    }

    /// Statistics for column `idx`, computed from typed storage on first
    /// use and cached. Matches [`ColumnStats::compute`] value-for-value.
    pub fn column_stats(&self, idx: usize) -> &ColumnStats {
        self.stats[idx]
            .get_or_init(|| compute_stats(&self.fields[idx], &self.columns[idx], self.len))
    }

    /// Position of `name` in the schema (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }
}

/// Compute [`ColumnStats`] from typed columnar storage: sort-and-dedup for
/// primitives (exactly the order `Value`'s `Ord` gives them), a dictionary
/// read for strings, and the legacy `Value`-walk for `Mixed`.
fn compute_stats(field: &Field, col: &Column, len: usize) -> ColumnStats {
    fn sorted_stats<T: Copy>(
        vals: &[T],
        nulls: Option<&BitMask>,
        cmp: impl Fn(&T, &T) -> Ordering + Copy,
        to_value: impl Fn(T) -> Value,
    ) -> (usize, Option<Value>, Option<Value>, Option<Vec<Value>>) {
        let mut non_null: Vec<T> = match nulls {
            None => vals.to_vec(),
            Some(mask) => {
                vals.iter().enumerate().filter(|(i, _)| !mask.get(*i)).map(|(_, v)| *v).collect()
            }
        };
        non_null.sort_unstable_by(cmp);
        non_null.dedup_by(|a, b| cmp(a, b) == Ordering::Equal);
        let min = non_null.first().map(|v| to_value(*v));
        let max = non_null.last().map(|v| to_value(*v));
        let distinct_count = non_null.len();
        let distinct_values = (distinct_count <= DISTINCT_SAMPLE_CAP)
            .then(|| non_null.into_iter().map(to_value).collect());
        (distinct_count, min, max, distinct_values)
    }

    let null_count = col.nulls.as_ref().map_or(0, BitMask::count_ones);
    let nulls = col.nulls.as_ref();
    let (distinct_count, min, max, distinct_values) = match &col.data {
        ColumnData::Int(v) => sorted_stats(v, nulls, |a, b| a.cmp(b), Value::Int),
        ColumnData::Float(v) => sorted_stats(v, nulls, |a, b| a.total_cmp(b), Value::Float),
        ColumnData::Bool(v) => sorted_stats(v, nulls, |a, b| a.cmp(b), Value::Bool),
        ColumnData::Date(v) => sorted_stats(v, nulls, |a, b| a.cmp(b), |d| Value::Date(Date(d))),
        ColumnData::Str(d) => {
            // The dictionary is the distinct set, already sorted.
            let distinct_count = d.dict.len();
            let min = d.dict.first().map(|s| Value::Str(s.clone()));
            let max = d.dict.last().map(|s| Value::Str(s.clone()));
            let distinct_values = (distinct_count <= DISTINCT_SAMPLE_CAP)
                .then(|| d.dict.iter().map(|s| Value::Str(s.clone())).collect());
            (distinct_count, min, max, distinct_values)
        }
        ColumnData::Mixed(v) => {
            return ColumnStats::compute(field, v.iter());
        }
    };
    ColumnStats {
        name: field.name.clone(),
        data_type: field.data_type,
        row_count: len,
        null_count,
        distinct_count,
        min,
        max,
        distinct_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Str)
            .column("c", DataType::Float)
            .build();
        t.push_row(vec![Value::Int(1), Value::str("x"), Value::Float(0.5)]).unwrap();
        t.push_row(vec![Value::Null, Value::str("y"), Value::Null]).unwrap();
        t.push_row(vec![Value::Int(3), Value::Null, Value::Float(2.5)]).unwrap();
        t
    }

    #[test]
    fn transpose_roundtrips_values() {
        let t = sample();
        let c = ColumnarTable::build(&t);
        assert_eq!(c.len, 3);
        for (i, row) in t.rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(&c.columns[j].value(i), v, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn typed_storage_and_null_masks() {
        let c = ColumnarTable::build(&sample());
        assert!(matches!(c.columns[0].data, ColumnData::Int(_)));
        assert!(matches!(c.columns[1].data, ColumnData::Str(_)));
        assert!(matches!(c.columns[2].data, ColumnData::Float(_)));
        assert!(c.columns[0].is_null(1));
        assert!(!c.columns[0].is_null(0));
        assert!(c.columns[1].is_null(2));
    }

    #[test]
    fn no_nulls_means_no_mask() {
        let mut t = Table::builder("t").column("a", DataType::Int).build();
        t.push_row(vec![Value::Int(1)]).unwrap();
        let c = ColumnarTable::build(&t);
        assert!(c.columns[0].nulls.is_none());
    }

    #[test]
    fn hand_built_mismatched_rows_fall_back_to_mixed() {
        // A literally-constructed table can bypass push_row validation.
        let t = Table {
            name: "t".into(),
            schema: crate::schema::Schema::new(vec![crate::schema::Field::new("a", DataType::Int)]),
            rows: vec![vec![Value::Int(1)], vec![Value::str("oops")]],
        };
        let c = ColumnarTable::build(&t);
        assert!(matches!(c.columns[0].data, ColumnData::Mixed(_)));
        assert_eq!(c.columns[0].value(1), Value::str("oops"));
    }

    #[test]
    fn dictionary_is_sorted_and_roundtrips() {
        let mut t = Table::builder("t").column("s", DataType::Str).build();
        for s in ["pear", "apple", "pear", "fig", "apple", "apple"] {
            t.push_row(vec![Value::str(s)]).unwrap();
        }
        let c = ColumnarTable::build(&t);
        let ColumnData::Str(d) = &c.columns[0].data else { panic!("expected dict column") };
        assert_eq!(d.dict, vec!["apple", "fig", "pear"]);
        assert_eq!(d.codes, vec![2, 0, 2, 1, 0, 0]);
        assert_eq!(d.rank("fig"), Ok(1));
        assert_eq!(d.rank("grape"), Err(2));
        assert_eq!(d.rank("aaa"), Err(0));
        for (i, s) in ["pear", "apple", "pear", "fig", "apple", "apple"].iter().enumerate() {
            assert_eq!(c.columns[0].value(i), Value::str(*s));
        }
    }

    #[test]
    fn zone_maps_summarize_blocks() {
        let mut t = Table::builder("t").column("x", DataType::Int).build();
        for i in 0..(BLOCK_ROWS as i64 + 10) {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        let c = ColumnarTable::build(&t);
        let zones = &c.columns[0].zones;
        assert_eq!(zones.len(), 2);
        assert_eq!(zones[0].min_max, Some((Value::Int(0), Value::Int(BLOCK_ROWS as i64 - 1))));
        assert_eq!(
            zones[1].min_max,
            Some((Value::Int(BLOCK_ROWS as i64), Value::Int(BLOCK_ROWS as i64 + 9)))
        );
        assert_eq!(zones[0].null_count, 0);
    }

    #[test]
    fn all_null_block_has_no_min_max() {
        let mut t = Table::builder("t").column("x", DataType::Int).build();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let c = ColumnarTable::build(&t);
        assert_eq!(c.columns[0].zones.len(), 1);
        assert!(c.columns[0].zones[0].min_max.is_none());
        assert_eq!(c.columns[0].zones[0].null_count, 2);
    }

    #[test]
    fn cached_stats_match_legacy_compute() {
        let t = sample();
        let c = ColumnarTable::build(&t);
        for (i, f) in t.schema.fields.iter().enumerate() {
            let fast = c.column_stats(i).clone();
            let slow = ColumnStats::compute(f, t.rows.iter().map(|r| &r[i]));
            assert_eq!(fast, slow, "column {}", f.name);
        }
    }

    #[test]
    fn bitmask_fill_and_copy_ranges() {
        let mut m = BitMask::new(200, true);
        assert_eq!(m.count_ones(), 200);
        m.fill_range(10..130, false);
        assert_eq!(m.count_ones(), 200 - 120);
        assert!(m.get(9) && !m.get(10) && !m.get(129) && m.get(130));

        let ones: Vec<usize> = m.iter_ones().collect();
        assert_eq!(ones.len(), 80);
        assert_eq!(ones[0], 0);
        assert_eq!(ones[10], 130);

        let full = BitMask::new(200, true);
        m.copy_range_from(&full, 64..70);
        assert!(m.get(64) && m.get(69) && !m.get(63) && !m.get(70));
    }

    #[test]
    fn bitmask_tail_bits_stay_zero() {
        let mut m = BitMask::new(65, true);
        assert_eq!(m.count_ones(), 65);
        m.fill_range(0..65, true);
        assert_eq!(m.count_ones(), 65);
        assert_eq!(m.iter_ones().count(), 65);
    }
}
