//! Schemas: named, typed field lists.

use crate::value::DataType;
use serde::{Deserialize, Serialize};

/// A named, typed column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// The name.
    pub name: String,
    /// The column's data type.
    pub data_type: DataType,
}

impl Field {
    /// Construct from parts.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self { name: name.into(), data_type }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The fields, in order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Construct from parts.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name` (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// The field named `name` (case-insensitive).
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_is_case_insensitive() {
        let s = Schema::new(vec![
            Field::new("Ra", DataType::Float),
            Field::new("dec", DataType::Float),
        ]);
        assert_eq!(s.index_of("ra"), Some(0));
        assert_eq!(s.index_of("DEC"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }
}
