//! Scalar function implementations.

use crate::error::{EngineError, Result};
use crate::value::Value;

/// Names of the scalar (non-aggregate) functions the engine implements.
pub const SCALAR_FUNCTIONS: &[&str] = &[
    "abs", "round", "floor", "ceil", "lower", "upper", "length", "coalesce", "substr", "year",
    "month", "day",
];

/// Is `name` a known scalar function?
pub fn is_scalar_function(name: &str) -> bool {
    SCALAR_FUNCTIONS.iter().any(|f| f.eq_ignore_ascii_case(name))
}

/// Evaluate scalar function `name` over already-evaluated arguments.
pub fn eval_scalar(name: &str, args: &[Value]) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EngineError::BadFunction(format!(
                "{name} expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    // NULL in, NULL out — except coalesce, which exists to absorb NULLs.
    if !name.eq_ignore_ascii_case("coalesce") && args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match name.to_ascii_lowercase().as_str() {
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(EngineError::TypeMismatch(format!("abs({other})"))),
            }
        }
        "round" => {
            if args.len() == 1 {
                match &args[0] {
                    Value::Int(v) => Ok(Value::Int(*v)),
                    Value::Float(v) => Ok(Value::Float(v.round())),
                    other => Err(EngineError::TypeMismatch(format!("round({other})"))),
                }
            } else {
                arity(2)?;
                let digits = match &args[1] {
                    Value::Int(d) => *d,
                    other => return Err(EngineError::TypeMismatch(format!("round(_, {other})"))),
                };
                let factor = 10f64.powi(digits as i32);
                match &args[0] {
                    Value::Int(v) => Ok(Value::Int(*v)),
                    Value::Float(v) => Ok(Value::Float((v * factor).round() / factor)),
                    other => Err(EngineError::TypeMismatch(format!("round({other}, _)"))),
                }
            }
        }
        "floor" => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(*v)),
                Value::Float(v) => Ok(Value::Float(v.floor())),
                other => Err(EngineError::TypeMismatch(format!("floor({other})"))),
            }
        }
        "ceil" => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(*v)),
                Value::Float(v) => Ok(Value::Float(v.ceil())),
                other => Err(EngineError::TypeMismatch(format!("ceil({other})"))),
            }
        }
        "lower" => {
            arity(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                other => Err(EngineError::TypeMismatch(format!("lower({other})"))),
            }
        }
        "upper" => {
            arity(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                other => Err(EngineError::TypeMismatch(format!("upper({other})"))),
            }
        }
        "length" => {
            arity(1)?;
            match &args[0] {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(EngineError::TypeMismatch(format!("length({other})"))),
            }
        }
        "coalesce" => Ok(args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null)),
        "substr" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(EngineError::BadFunction("substr expects 2 or 3 arguments".into()));
            }
            let Value::Str(s) = &args[0] else {
                return Err(EngineError::TypeMismatch(format!("substr({})", args[0])));
            };
            let Value::Int(start) = &args[1] else {
                return Err(EngineError::TypeMismatch(format!("substr(_, {})", args[1])));
            };
            let chars: Vec<char> = s.chars().collect();
            // SQL substr is 1-based.
            let begin = (start - 1).max(0) as usize;
            let len = match args.get(2) {
                Some(Value::Int(l)) => (*l).max(0) as usize,
                Some(other) => {
                    return Err(EngineError::TypeMismatch(format!("substr(_, _, {other})")))
                }
                None => chars.len().saturating_sub(begin),
            };
            Ok(Value::Str(chars.iter().skip(begin).take(len).collect()))
        }
        "year" | "month" | "day" => {
            arity(1)?;
            match &args[0] {
                Value::Date(d) => {
                    let (y, m, dd) = d.ymd();
                    Ok(Value::Int(match name.to_ascii_lowercase().as_str() {
                        "year" => y as i64,
                        "month" => m as i64,
                        _ => dd as i64,
                    }))
                }
                other => Err(EngineError::TypeMismatch(format!("{name}({other})"))),
            }
        }
        other => Err(EngineError::BadFunction(format!("unknown function {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_and_round() {
        assert_eq!(eval_scalar("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(eval_scalar("abs", &[Value::Float(-2.5)]).unwrap(), Value::Float(2.5));
        assert_eq!(eval_scalar("round", &[Value::Float(2.6)]).unwrap(), Value::Float(3.0));
        assert_eq!(
            eval_scalar("round", &[Value::Float(2.345), Value::Int(2)]).unwrap(),
            Value::Float(2.35)
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_scalar("lower", &[Value::str("AbC")]).unwrap(), Value::str("abc"));
        assert_eq!(eval_scalar("upper", &[Value::str("abc")]).unwrap(), Value::str("ABC"));
        assert_eq!(eval_scalar("length", &[Value::str("abcd")]).unwrap(), Value::Int(4));
        assert_eq!(
            eval_scalar("substr", &[Value::str("hello"), Value::Int(2), Value::Int(3)]).unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            eval_scalar("substr", &[Value::str("hello"), Value::Int(3)]).unwrap(),
            Value::str("llo")
        );
    }

    #[test]
    fn date_parts() {
        let d = Value::date("2021-12-25");
        assert_eq!(eval_scalar("year", std::slice::from_ref(&d)).unwrap(), Value::Int(2021));
        assert_eq!(eval_scalar("month", std::slice::from_ref(&d)).unwrap(), Value::Int(12));
        assert_eq!(eval_scalar("day", &[d]).unwrap(), Value::Int(25));
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        assert_eq!(
            eval_scalar("coalesce", &[Value::Null, Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(eval_scalar("coalesce", &[Value::Null, Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagates() {
        assert_eq!(eval_scalar("abs", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(eval_scalar("year", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn wrong_arity_is_error() {
        assert!(eval_scalar("abs", &[Value::Int(1), Value::Int(2)]).is_err());
        assert!(eval_scalar("nope", &[Value::Int(1)]).is_err());
    }
}
