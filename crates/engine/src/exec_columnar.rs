//! The columnar fast-path executor.
//!
//! Single-table queries — the shape every widget interaction produces — are
//! executed against the typed column vectors built at registration (see
//! [`crate::columnar`]) instead of cloning the row store. Expressions are
//! compiled **once per query** into [`CExpr`] (column references become
//! vector indices, so the per-row cost drops to an array access instead of a
//! case-insensitive name resolution), WHERE runs as mask refinement with
//! typed loops for column-vs-constant comparisons, and aggregation hashes
//! group keys over the selected row set.
//!
//! The selection mask is a bit-packed [`BitMask`], and typed loops walk it
//! one zone-map block at a time: a block whose `[min, max]` cannot satisfy
//! the predicate is cleared 64 rows per word without touching column data,
//! and a block that trivially satisfies it (and holds no NULLs) is skipped
//! outright. Every prune carries a `debug_assert` that re-scans the block
//! and proves the shortcut agrees with the row-by-row answer, so the
//! conformance fuzz loop (which replays its corpus under `cargo test`,
//! debug assertions on) exercises pruning soundness continuously.
//! String comparisons run on dictionary codes: the dictionary is sorted, so
//! a constant's binary-searched rank turns every string predicate into a
//! `u32` comparison.
//!
//! The row-at-a-time interpreter in [`crate::exec`] remains the semantic
//! reference. This module keeps parity by construction: anything it is not
//! sure it can reproduce exactly — joins, subqueries, unresolvable names —
//! makes [`try_execute`] return `None` and the caller falls back to the
//! reference path. Shared helpers (`cmp_values`, `arithmetic`,
//! `finalize_result`, …) ensure the overlapping semantics cannot drift; the
//! conformance `columnar-parity` oracle checks the rest.

use crate::catalog::Catalog;
use crate::columnar::{
    block_count, block_range, BitMask, Column, ColumnData, ColumnarTable, ZoneMap,
};
use crate::error::{EngineError, Result};
use crate::eval::{
    and3, apply_comparison, arithmetic, cmp_values, enforce_limits, like_match, or3,
    three_valued_cmp, to_bool3, RelField, RelSchema,
};
use crate::exec::{
    collect_aggregates, expand_projection, finalize_result, infer_type, output_name,
};
use crate::functions::eval_scalar;
use crate::result::ResultSet;
use crate::schema::Field;
use crate::stats::ScanStats;
use crate::value::Value;
use pi2_sql::{
    is_aggregate_function, BinaryOp, ColumnRef, Expr, Literal, Query, TableRef, UnaryOp,
};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Execute `q` on the columnar path, or `None` when the query's shape is
/// outside the fast path's supported fragment (the caller falls back to the
/// reference executor, which also owns producing any name-resolution error).
pub(crate) fn try_execute(catalog: &Catalog, q: &Query) -> Option<Result<ResultSet>> {
    let p = prepare(catalog, q)?;
    let ctx = p.ctx(catalog);
    Some(ctx.compute_mask().and_then(|mask| ctx.run_with_mask(q, &mask)))
}

/// Resolve and compile `q` against the catalog's columnar storage, or
/// `None` when the query leaves the fast path's fragment. The result can
/// be executed directly ([`try_execute`]) or driven block-by-block by the
/// incremental path (see [`crate::delta`]).
pub(crate) fn prepare(catalog: &Catalog, q: &Query) -> Option<Prepared> {
    // Only plain single-table FROM clauses; joins, derived tables, and
    // multi-table products stay on the reference path.
    let [TableRef::Named { name, alias }] = q.from.as_slice() else {
        return None;
    };
    let table = catalog.get(name)?;
    let columnar = catalog.columnar(name)?;
    let qualifier = alias.clone().unwrap_or_else(|| name.clone());
    let schema = RelSchema {
        fields: table
            .schema
            .fields
            .iter()
            .map(|f| RelField {
                qualifier: Some(qualifier.clone()),
                name: f.name.clone(),
                data_type: f.data_type,
            })
            .collect(),
    };

    let items = expand_projection(&q.projection, &schema).ok()?;
    let plan = Plan::compile(q, &schema, &items)?;
    Some(Prepared { table: columnar, schema, items, plan })
}

/// A compiled, executable columnar query: the table mirror, the resolved
/// schema, the expanded projection, and the compiled plan.
pub(crate) struct Prepared {
    pub(crate) table: Arc<ColumnarTable>,
    schema: RelSchema,
    items: Vec<(Expr, Option<String>)>,
    plan: Plan,
}

impl Prepared {
    /// An execution context borrowing this plan, with the catalog's limits
    /// and scan counters attached.
    pub(crate) fn ctx(&self, catalog: &Catalog) -> ColCtx<'_> {
        ColCtx {
            table: &self.table,
            schema: &self.schema,
            items: &self.items,
            plan: &self.plan,
            limits: catalog.limits(),
            started: std::time::Instant::now(),
            scan: catalog.scan_stats(),
        }
    }

    /// Resolve a column reference to its index in the table schema.
    pub(crate) fn resolve_column(&self, c: &ColumnRef) -> Option<usize> {
        self.schema.resolve(c).ok().flatten()
    }
}

/// A compiled expression: column references resolved to vector indices,
/// literals materialized, aggregate calls replaced by slots into the
/// per-group aggregate array.
#[derive(Debug)]
enum CExpr {
    Col(usize),
    Const(Value),
    Agg(usize),
    Unary {
        op: UnaryOp,
        expr: Box<CExpr>,
    },
    Binary {
        left: Box<CExpr>,
        op: BinaryOp,
        right: Box<CExpr>,
    },
    Func {
        name: String,
        args: Vec<CExpr>,
    },
    Case {
        operand: Option<Box<CExpr>>,
        branches: Vec<(CExpr, CExpr)>,
        else_expr: Option<Box<CExpr>>,
    },
    InList {
        expr: Box<CExpr>,
        list: Vec<CExpr>,
        negated: bool,
    },
    Between {
        expr: Box<CExpr>,
        low: Box<CExpr>,
        high: Box<CExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<CExpr>,
        negated: bool,
    },
    Like {
        expr: Box<CExpr>,
        pattern: Box<CExpr>,
        negated: bool,
    },
}

/// How one ORDER BY entry produces its sort key — resolved once per query
/// instead of per row (the reference re-runs the alias/position scan for
/// every output row).
#[derive(Debug)]
enum KeySpec {
    /// Sort by output column `i`.
    Output(usize),
    /// Sort by a compiled expression.
    Compiled(CExpr),
}

/// One compiled aggregate call.
#[derive(Debug)]
struct CAgg {
    name: String,
    distinct: bool,
    /// `None` for `count(*)`.
    arg: Option<CExpr>,
}

/// The fully compiled query plan.
struct Plan {
    where_clause: Option<CExpr>,
    /// Projection expressions (pre-agg for plain queries, post-agg when
    /// aggregating).
    items: Vec<CExpr>,
    order_keys: Vec<KeySpec>,
    /// Aggregating-query extras.
    group_by: Vec<CExpr>,
    aggs: Vec<CAgg>,
    having: Option<CExpr>,
}

/// Expression compiler; `agg_hashes` is the structural-hash index of the
/// collected aggregate calls when compiling post-aggregation expressions.
struct Compiler<'a> {
    schema: &'a RelSchema,
    agg_hashes: &'a [u64],
    allow_aggs: bool,
}

impl Compiler<'_> {
    /// Compile, or `None` when the expression leaves the supported fragment
    /// (subqueries, unresolvable/ambiguous names, nested aggregates).
    fn compile(&self, e: &Expr) -> Option<CExpr> {
        Some(match e {
            Expr::Column(c) => CExpr::Col(self.resolve(c)?),
            Expr::Literal(l) => CExpr::Const(Value::from_literal(l)),
            Expr::Wildcard => return None,
            Expr::Unary { op, expr } => {
                CExpr::Unary { op: *op, expr: Box::new(self.compile(expr)?) }
            }
            Expr::Binary { left, op, right } => CExpr::Binary {
                left: Box::new(self.compile(left)?),
                op: *op,
                right: Box::new(self.compile(right)?),
            },
            Expr::Function { name, args, .. } => {
                if is_aggregate_function(name) {
                    if !self.allow_aggs {
                        return None;
                    }
                    let h = e.structural_hash();
                    let slot = self.agg_hashes.iter().position(|&a| a == h)?;
                    CExpr::Agg(slot)
                } else {
                    let args: Option<Vec<CExpr>> = args.iter().map(|a| self.compile(a)).collect();
                    CExpr::Func { name: name.clone(), args: args? }
                }
            }
            Expr::Case { operand, branches, else_expr } => CExpr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.compile(o)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| Some((self.compile(w)?, self.compile(t)?)))
                    .collect::<Option<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.compile(e)?)),
                    None => None,
                },
            },
            Expr::InList { expr, list, negated } => CExpr::InList {
                expr: Box::new(self.compile(expr)?),
                list: list.iter().map(|i| self.compile(i)).collect::<Option<_>>()?,
                negated: *negated,
            },
            Expr::Between { expr, low, high, negated } => CExpr::Between {
                expr: Box::new(self.compile(expr)?),
                low: Box::new(self.compile(low)?),
                high: Box::new(self.compile(high)?),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => {
                CExpr::IsNull { expr: Box::new(self.compile(expr)?), negated: *negated }
            }
            Expr::Like { expr, pattern, negated } => CExpr::Like {
                expr: Box::new(self.compile(expr)?),
                pattern: Box::new(self.compile(pattern)?),
                negated: *negated,
            },
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => return None,
        })
    }

    fn resolve(&self, c: &ColumnRef) -> Option<usize> {
        self.schema.resolve(c).ok().flatten()
    }
}

impl Plan {
    fn compile(q: &Query, schema: &RelSchema, items: &[(Expr, Option<String>)]) -> Option<Plan> {
        let aggregating = q.is_aggregating();
        let pre = Compiler { schema, agg_hashes: &[], allow_aggs: false };

        let where_clause = match &q.where_clause {
            Some(p) => Some(pre.compile(p)?),
            None => None,
        };

        // Collect aggregate calls in the same order as the reference
        // executor (projection, HAVING, ORDER BY; deduped by structural
        // hash) so slot indices match what post-agg compilation hands out.
        let mut agg_exprs: Vec<Expr> = Vec::new();
        let mut agg_hashes: Vec<u64> = Vec::new();
        if aggregating {
            let mut seen: HashSet<u64> = HashSet::new();
            let mut collect = |e: &Expr| {
                collect_aggregates(e, &mut |agg| {
                    if seen.insert(agg.structural_hash()) {
                        agg_exprs.push(agg.clone());
                        agg_hashes.push(agg.structural_hash());
                    }
                });
            };
            for (expr, _) in items {
                collect(expr);
            }
            if let Some(h) = &q.having {
                collect(h);
            }
            for o in &q.order_by {
                collect(&o.expr);
            }
        }

        let aggs = agg_exprs
            .iter()
            .map(|agg| {
                let Expr::Function { name, args, distinct } = agg else {
                    return None;
                };
                let arg = if name == "count" && matches!(args.first(), Some(Expr::Wildcard)) {
                    None
                } else {
                    Some(pre.compile(args.first()?)?)
                };
                Some(CAgg { name: name.clone(), distinct: *distinct, arg })
            })
            .collect::<Option<Vec<_>>>()?;

        let post = Compiler { schema, agg_hashes: &agg_hashes, allow_aggs: true };
        let out = if aggregating { &post } else { &pre };

        let compiled_items =
            items.iter().map(|(e, _)| out.compile(e)).collect::<Option<Vec<_>>>()?;
        let group_by = q.group_by.iter().map(|g| pre.compile(g)).collect::<Option<Vec<_>>>()?;
        let having = match &q.having {
            Some(h) if aggregating => Some(out.compile(h)?),
            // HAVING without aggregation: handled in run() with the
            // reference executor's exact error.
            Some(_) => None,
            None => None,
        };

        // ORDER BY: resolve alias / positional references to output columns
        // once; compile the rest.
        let mut order_keys = Vec::with_capacity(q.order_by.len());
        for o in &q.order_by {
            if let Expr::Column(ColumnRef { table: None, column }) = &o.expr {
                if let Some(idx) = items.iter().position(|(expr, alias)| {
                    alias.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(column))
                        || matches!(expr, Expr::Column(c) if c.column.eq_ignore_ascii_case(column) && c.table.is_none())
                }) {
                    order_keys.push(KeySpec::Output(idx));
                    continue;
                }
            }
            if let Expr::Literal(Literal::Int(pos)) = &o.expr {
                let idx = *pos as usize;
                if idx >= 1 && idx <= items.len() {
                    order_keys.push(KeySpec::Output(idx - 1));
                    continue;
                }
            }
            order_keys.push(KeySpec::Compiled(out.compile(&o.expr)?));
        }

        Some(Plan { where_clause, items: compiled_items, order_keys, group_by, aggs, having })
    }
}

/// What a zone map says about one block under a predicate.
enum Decision {
    /// No row in the block can satisfy the predicate: clear it wholesale.
    AllFail,
    /// Every row satisfies it (and none is NULL): leave the mask untouched.
    AllPass,
    /// Inconclusive: scan the block row by row.
    Scan,
}

/// Decide a block for a `col <op> const` comparison. `keep` is the
/// row-level acceptance test on `row.cmp(konst)`; because the zone min/max
/// are stored as [`Value`]s whose total order agrees with every typed
/// comparison loop, the set of orderings a row can produce is exactly the
/// closed interval between `min.cmp(konst)` and `max.cmp(konst)`.
fn prune_decision(
    zone: Option<&ZoneMap>,
    konst: &Value,
    keep: &impl Fn(Ordering) -> bool,
) -> Decision {
    let Some(zone) = zone else { return Decision::Scan };
    // An all-NULL block compares NULL everywhere: nothing survives.
    let Some((zmin, zmax)) = &zone.min_max else { return Decision::AllFail };
    let lo = zmin.cmp(konst);
    let hi = zmax.cmp(konst);
    let mut any_keep = false;
    let mut any_drop = false;
    for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
        if ord >= lo && ord <= hi {
            if keep(ord) {
                any_keep = true;
            } else {
                any_drop = true;
            }
        }
    }
    if !any_keep {
        Decision::AllFail
    } else if !any_drop && zone.null_count == 0 {
        Decision::AllPass
    } else {
        Decision::Scan
    }
}

/// Block-at-a-time mask refinement for a typed comparison loop: prune via
/// the zone map where possible, scan otherwise. Debug builds re-check every
/// pruned block row by row, so block pruning provably never changes the
/// selected row set.
#[allow(clippy::too_many_arguments)]
fn blockwise<T>(
    len: usize,
    column: &Column,
    data: &[T],
    mask: &mut BitMask,
    blocks: &[usize],
    scan: &ScanStats,
    konst: &Value,
    cmp: impl Fn(&T) -> Ordering,
    keep: impl Fn(Ordering) -> bool,
) {
    let mut scanned = 0u64;
    let mut pruned = 0u64;
    for &b in blocks {
        let range = block_range(b, len);
        match prune_decision(column.zones.get(b), konst, &keep) {
            Decision::AllFail => {
                debug_assert!(
                    range.clone().all(|i| column.is_null(i) || !keep(cmp(&data[i]))),
                    "zone pruning dropped a matching row in block {b}"
                );
                mask.fill_range(range, false);
                pruned += 1;
            }
            Decision::AllPass => {
                debug_assert!(
                    range.clone().all(|i| !column.is_null(i) && keep(cmp(&data[i]))),
                    "zone pruning kept a non-matching row in block {b}"
                );
                pruned += 1;
            }
            Decision::Scan => {
                scanned += 1;
                for i in range {
                    if mask.get(i) && (column.is_null(i) || !keep(cmp(&data[i]))) {
                        mask.clear(i);
                    }
                }
            }
        }
    }
    scan.record(scanned, pruned);
}

/// Block-at-a-time refinement for a typed range loop (`BETWEEN`), with the
/// zone decision supplied by the caller (numeric and date ranges compare
/// differently). Same debug-build soundness checks as [`blockwise`].
#[allow(clippy::too_many_arguments)]
fn blockwise_range<T: Copy>(
    len: usize,
    column: &Column,
    data: &[T],
    mask: &mut BitMask,
    blocks: &[usize],
    scan: &ScanStats,
    in_range: impl Fn(T) -> bool,
    zone_decision: impl Fn(&ZoneMap) -> Decision,
) {
    let mut scanned = 0u64;
    let mut pruned = 0u64;
    for &b in blocks {
        let range = block_range(b, len);
        let decision = match column.zones.get(b) {
            Some(z) => zone_decision(z),
            None => Decision::Scan,
        };
        match decision {
            Decision::AllFail => {
                debug_assert!(
                    range.clone().all(|i| column.is_null(i) || !in_range(data[i])),
                    "zone pruning dropped a matching row in block {b}"
                );
                mask.fill_range(range, false);
                pruned += 1;
            }
            Decision::AllPass => {
                debug_assert!(
                    range.clone().all(|i| !column.is_null(i) && in_range(data[i])),
                    "zone pruning kept a non-matching row in block {b}"
                );
                pruned += 1;
            }
            Decision::Scan => {
                scanned += 1;
                for i in range {
                    if mask.get(i) && (column.is_null(i) || !in_range(data[i])) {
                        mask.clear(i);
                    }
                }
            }
        }
    }
    scan.record(scanned, pruned);
}

/// Execution context for one columnar query run.
pub(crate) struct ColCtx<'a> {
    table: &'a Arc<ColumnarTable>,
    schema: &'a RelSchema,
    items: &'a [(Expr, Option<String>)],
    plan: &'a Plan,
    limits: crate::catalog::ExecLimits,
    started: std::time::Instant,
    scan: Arc<ScanStats>,
}

impl ColCtx<'_> {
    /// Evaluate the WHERE clause over the whole table into a selection
    /// mask.
    pub(crate) fn compute_mask(&self) -> Result<BitMask> {
        let len = self.table.len;
        let mut mask = BitMask::new(len, true);
        if let Some(pred) = &self.plan.where_clause {
            let blocks: Vec<usize> = (0..block_count(len)).collect();
            self.refine(pred, &mut mask, &blocks)?;
        }
        Ok(mask)
    }

    /// Re-evaluate the WHERE clause over just the listed blocks. The
    /// caller must have reset those blocks' mask bits to all-true; other
    /// blocks are left untouched (the incremental path reuses their bits).
    pub(crate) fn refine_blocks(&self, mask: &mut BitMask, blocks: &[usize]) -> Result<()> {
        if let Some(pred) = &self.plan.where_clause {
            self.refine(pred, mask, blocks)?;
        }
        Ok(())
    }

    /// Project / aggregate / order / finalize over the rows selected by
    /// `mask`.
    pub(crate) fn run_with_mask(&self, q: &Query, mask: &BitMask) -> Result<ResultSet> {
        let out_fields: Vec<Field> = self
            .items
            .iter()
            .map(|(expr, alias)| {
                Field::new(output_name(expr, alias), infer_type(expr, self.schema))
            })
            .collect();
        let selected: Vec<usize> = mask.iter_ones().collect();

        let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        if q.is_aggregating() {
            self.run_grouped(self.plan, selected, &mut out_rows)?;
        } else {
            if q.having.is_some() {
                return Err(EngineError::Unsupported("HAVING without aggregation".into()));
            }
            for row in selected {
                self.check_limits(out_rows.len())?;
                let mut out = Vec::with_capacity(self.plan.items.len());
                for e in &self.plan.items {
                    out.push(self.eval(e, Some(row), &[])?);
                }
                let keys = self.order_key_values(self.plan, &out, Some(row), &[])?;
                out_rows.push((out, keys));
            }
        }

        Ok(finalize_result(q, out_fields, out_rows))
    }

    /// Hash-aggregate the selected rows, filter with HAVING, project.
    fn run_grouped(
        &self,
        plan: &Plan,
        selected: Vec<usize>,
        out_rows: &mut Vec<(Vec<Value>, Vec<Value>)>,
    ) -> Result<()> {
        // Group rows by GROUP BY keys (first-seen order, like the reference).
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in selected {
            let key: Vec<Value> = plan
                .group_by
                .iter()
                .map(|g| self.eval(g, Some(row), &[]))
                .collect::<Result<_>>()?;
            match index.get(&key) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // Ungrouped aggregation over zero rows still yields one group.
        if groups.is_empty() && plan.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        for (_, group_rows) in groups {
            self.check_limits(out_rows.len())?;
            let mut agg_values = Vec::with_capacity(plan.aggs.len());
            for agg in &plan.aggs {
                agg_values.push(self.compute_aggregate(agg, &group_rows)?);
            }
            // The representative row for post-agg column references; `None`
            // stands in for the reference executor's synthetic all-NULL row.
            let rep = group_rows.first().copied();
            if let Some(h) = &plan.having {
                if !self.eval(h, rep, &agg_values)?.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(plan.items.len());
            for e in &plan.items {
                out.push(self.eval(e, rep, &agg_values)?);
            }
            let keys = self.order_key_values(plan, &out, rep, &agg_values)?;
            out_rows.push((out, keys));
        }
        Ok(())
    }

    /// One aggregate over a group; mirrors the reference's
    /// `compute_aggregate` value-for-value (including float summation
    /// order).
    fn compute_aggregate(&self, agg: &CAgg, group_rows: &[usize]) -> Result<Value> {
        let Some(arg) = &agg.arg else {
            return Ok(Value::Int(group_rows.len() as i64)); // count(*)
        };
        let mut vals: Vec<Value> = Vec::with_capacity(group_rows.len());
        for &row in group_rows {
            let v = self.eval(arg, Some(row), &[])?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if agg.distinct {
            let mut seen: HashSet<Value> = HashSet::new();
            vals.retain(|v| seen.insert(v.clone()));
        }
        let name = agg.name.as_str();
        match name {
            "count" => Ok(Value::Int(vals.len() as i64)),
            "min" => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
            "max" => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
            "sum" | "avg" => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
                let total: f64 = vals
                    .iter()
                    .map(|v| {
                        v.as_f64().ok_or_else(|| {
                            EngineError::TypeMismatch(format!("{name}({})", v.data_type()))
                        })
                    })
                    .sum::<Result<f64>>()?;
                if name == "avg" {
                    Ok(Value::Float(total / vals.len() as f64))
                } else if all_int {
                    Ok(Value::Int(total as i64))
                } else {
                    Ok(Value::Float(total))
                }
            }
            other => Err(EngineError::BadFunction(format!("unknown aggregate {other}"))),
        }
    }

    fn order_key_values(
        &self,
        plan: &Plan,
        out: &[Value],
        row: Option<usize>,
        aggs: &[Value],
    ) -> Result<Vec<Value>> {
        let mut keys = Vec::with_capacity(plan.order_keys.len());
        for spec in &plan.order_keys {
            keys.push(match spec {
                KeySpec::Output(i) => out[*i].clone(),
                KeySpec::Compiled(e) => self.eval(e, row, aggs)?,
            });
        }
        Ok(keys)
    }

    fn check_limits(&self, rows: usize) -> Result<()> {
        enforce_limits(&self.limits, self.started, rows)
    }

    fn col(&self, i: usize) -> &Column {
        &self.table.columns[i]
    }

    /// Clear mask slots whose rows do not satisfy `e` (strictly-true
    /// semantics, as in the reference WHERE loop), visiting only the listed
    /// blocks. Conjunctions refine sequentially, so the right side is only
    /// evaluated on rows the left side kept — the same evaluation set as
    /// the reference's short-circuit.
    fn refine(&self, e: &CExpr, mask: &mut BitMask, blocks: &[usize]) -> Result<()> {
        match e {
            // Splitting `l AND r` into sequential refinement is only valid
            // when both sides can evaluate to nothing but Bool/NULL (or fail
            // identically on both paths): the reference feeds AND operands
            // through `to_bool3`, which *errors* on other types, whereas
            // mask refinement would silently treat them as false.
            CExpr::Binary { left, op: BinaryOp::And, right }
                if self.is_predicate(left) && self.is_predicate(right) =>
            {
                self.refine(left, mask, blocks)?;
                self.refine(right, mask, blocks)
            }
            CExpr::Binary { left, op, right } if op.is_comparison() => {
                // Column-vs-constant comparisons get typed loops.
                if let (CExpr::Col(c), CExpr::Const(k)) = (left.as_ref(), right.as_ref()) {
                    if self.refine_cmp(*c, *op, k, false, mask, blocks)? {
                        return Ok(());
                    }
                } else if let (CExpr::Const(k), CExpr::Col(c)) = (left.as_ref(), right.as_ref()) {
                    if self.refine_cmp(*c, *op, k, true, mask, blocks)? {
                        return Ok(());
                    }
                }
                self.refine_generic(e, mask, blocks)
            }
            CExpr::Between { expr, low, high, negated: false } => {
                if let (CExpr::Col(c), CExpr::Const(lo), CExpr::Const(hi)) =
                    (expr.as_ref(), low.as_ref(), high.as_ref())
                {
                    if self.refine_between(*c, lo, hi, mask, blocks)? {
                        return Ok(());
                    }
                }
                self.refine_generic(e, mask, blocks)
            }
            _ => self.refine_generic(e, mask, blocks),
        }
    }

    /// True when `e` can only evaluate to `Bool`/`NULL` — or fail with the
    /// same error on both executor paths — making it safe to use under mask
    /// refinement's "not strictly true means dropped" rule.
    fn is_predicate(&self, e: &CExpr) -> bool {
        match e {
            CExpr::Binary { op, left, right } => {
                op.is_comparison()
                    || (matches!(op, BinaryOp::And | BinaryOp::Or)
                        && self.is_predicate(left)
                        && self.is_predicate(right))
            }
            CExpr::Between { .. }
            | CExpr::InList { .. }
            | CExpr::IsNull { .. }
            | CExpr::Like { .. } => true,
            // NOT of a non-bool errors identically in both evaluators.
            CExpr::Unary { op: UnaryOp::Not, .. } => true,
            CExpr::Const(v) => matches!(v, Value::Bool(_) | Value::Null),
            CExpr::Col(i) => matches!(self.col(*i).data, ColumnData::Bool(_)),
            _ => false,
        }
    }

    /// Per-row fallback refinement (still cheap: no name resolution, no row
    /// materialization).
    fn refine_generic(&self, e: &CExpr, mask: &mut BitMask, blocks: &[usize]) -> Result<()> {
        let len = self.table.len;
        for &b in blocks {
            for i in block_range(b, len) {
                if mask.get(i) && !self.eval(e, Some(i), &[])?.is_truthy() {
                    mask.clear(i);
                }
            }
        }
        Ok(())
    }

    /// Typed loop for `col <op> const` (or `const <op> col` when `flipped`).
    /// Returns false when no typed loop applies, so the caller can fall back
    /// to the generic path — which also owns reproducing the reference's
    /// type-mismatch errors.
    fn refine_cmp(
        &self,
        col: usize,
        op: BinaryOp,
        konst: &Value,
        flipped: bool,
        mask: &mut BitMask,
        blocks: &[usize],
    ) -> Result<bool> {
        let column = self.col(col);
        let len = self.table.len;
        // NULL constant: every comparison is NULL, nothing survives.
        if konst.is_null() {
            for &b in blocks {
                mask.fill_range(block_range(b, len), false);
            }
            return Ok(true);
        }
        let keep = |ord: Ordering| -> bool {
            apply_comparison(op, if flipped { ord.reverse() } else { ord })
        };
        macro_rules! typed_loop {
            ($data:expr, $cmp:expr) => {{
                blockwise(len, column, $data, mask, blocks, &self.scan, konst, $cmp, keep);
                Ok(true)
            }};
        }
        match (&column.data, konst) {
            (ColumnData::Int(data), Value::Int(k)) => typed_loop!(data, |x: &i64| x.cmp(k)),
            (ColumnData::Int(data), Value::Float(k)) => {
                typed_loop!(data, |x: &i64| (*x as f64).total_cmp(k))
            }
            (ColumnData::Float(data), Value::Int(k)) => {
                let k = *k as f64;
                typed_loop!(data, move |x: &f64| x.total_cmp(&k))
            }
            (ColumnData::Float(data), Value::Float(k)) => {
                typed_loop!(data, |x: &f64| x.total_cmp(k))
            }
            (ColumnData::Str(d), Value::Str(k)) => {
                // Compare dictionary codes against the constant's rank: the
                // dictionary is sorted, so this is exactly the string
                // comparison.
                let rank = d.rank(k);
                typed_loop!(&d.codes, move |x: &u32| match rank {
                    Ok(r) => x.cmp(&r),
                    Err(p) => {
                        if *x < p {
                            Ordering::Less
                        } else {
                            Ordering::Greater
                        }
                    }
                })
            }
            (ColumnData::Date(data), Value::Date(k)) => typed_loop!(data, |x: &i32| x.cmp(&k.0)),
            (ColumnData::Bool(data), Value::Bool(k)) => typed_loop!(data, |x: &bool| x.cmp(k)),
            _ => Ok(false),
        }
    }

    /// Typed loop for `col BETWEEN lo AND hi` with non-null constant
    /// bounds: numeric bounds over numeric columns (compared as f64 with
    /// `total_cmp`, like the reference's cross-type comparison) and date
    /// bounds over date columns. Other combinations take the generic path,
    /// which also owns reproducing the reference's type errors.
    fn refine_between(
        &self,
        col: usize,
        lo: &Value,
        hi: &Value,
        mask: &mut BitMask,
        blocks: &[usize],
    ) -> Result<bool> {
        let column = self.col(col);
        let len = self.table.len;

        // Date range over a date column: exact day-number comparison.
        if let (ColumnData::Date(data), Value::Date(lo), Value::Date(hi)) = (&column.data, lo, hi) {
            let (lo, hi) = (lo.0, hi.0);
            blockwise_range(
                len,
                column,
                data,
                mask,
                blocks,
                &self.scan,
                |x| x >= lo && x <= hi,
                |z| match &z.min_max {
                    None => Decision::AllFail,
                    Some((Value::Date(zmin), Value::Date(zmax))) => {
                        if zmax.0 < lo || zmin.0 > hi {
                            Decision::AllFail
                        } else if z.null_count == 0 && zmin.0 >= lo && zmax.0 <= hi {
                            Decision::AllPass
                        } else {
                            Decision::Scan
                        }
                    }
                    Some(_) => Decision::Scan,
                },
            );
            return Ok(true);
        }

        if !lo.data_type().is_numeric() || !hi.data_type().is_numeric() {
            return Ok(false);
        }
        let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) else {
            return Ok(false);
        };
        let in_range =
            |x: f64| x.total_cmp(&lo) != Ordering::Less && x.total_cmp(&hi) != Ordering::Greater;
        // i64 → f64 casts are monotone, so zone bounds compared as f64
        // bracket every row's casted value and the decisions stay sound.
        let zone_decision = |z: &ZoneMap| match &z.min_max {
            None => Decision::AllFail,
            Some((zmin, zmax)) => match (zmin.as_f64(), zmax.as_f64()) {
                (Some(zmin), Some(zmax)) => {
                    if zmax.total_cmp(&lo) == Ordering::Less
                        || zmin.total_cmp(&hi) == Ordering::Greater
                    {
                        Decision::AllFail
                    } else if z.null_count == 0
                        && zmin.total_cmp(&lo) != Ordering::Less
                        && zmax.total_cmp(&hi) != Ordering::Greater
                    {
                        Decision::AllPass
                    } else {
                        Decision::Scan
                    }
                }
                _ => Decision::Scan,
            },
        };
        match &column.data {
            ColumnData::Int(data) => {
                blockwise_range(
                    len,
                    column,
                    data,
                    mask,
                    blocks,
                    &self.scan,
                    |x| in_range(x as f64),
                    zone_decision,
                );
                Ok(true)
            }
            ColumnData::Float(data) => {
                blockwise_range(
                    len,
                    column,
                    data,
                    mask,
                    blocks,
                    &self.scan,
                    in_range,
                    zone_decision,
                );
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Evaluate a compiled expression for one row. `row = None` is the
    /// synthetic all-NULL representative of an empty aggregation group.
    fn eval(&self, e: &CExpr, row: Option<usize>, aggs: &[Value]) -> Result<Value> {
        match e {
            CExpr::Col(i) => Ok(match row {
                Some(r) => self.col(*i).value(r),
                None => Value::Null,
            }),
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Agg(i) => Ok(aggs[*i].clone()),
            CExpr::Unary { op, expr } => {
                let v = self.eval(expr, row, aggs)?;
                match op {
                    UnaryOp::Not => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => return Err(EngineError::TypeMismatch(format!("NOT {other}"))),
                    }),
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(v) => Ok(Value::Int(-v)),
                        Value::Float(v) => Ok(Value::Float(-v)),
                        other => Err(EngineError::TypeMismatch(format!("-{other}"))),
                    },
                }
            }
            CExpr::Binary { left, op, right } => match op {
                BinaryOp::And => {
                    let l = to_bool3(&self.eval(left, row, aggs)?)?;
                    if l == Some(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = to_bool3(&self.eval(right, row, aggs)?)?;
                    Ok(match and3(l, r) {
                        Some(b) => Value::Bool(b),
                        None => Value::Null,
                    })
                }
                BinaryOp::Or => {
                    let l = to_bool3(&self.eval(left, row, aggs)?)?;
                    if l == Some(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = to_bool3(&self.eval(right, row, aggs)?)?;
                    Ok(match or3(l, r) {
                        Some(b) => Value::Bool(b),
                        None => Value::Null,
                    })
                }
                _ => {
                    let l = self.eval(left, row, aggs)?;
                    let r = self.eval(right, row, aggs)?;
                    if op.is_comparison() {
                        return Ok(match cmp_values(&l, &r)? {
                            None => Value::Null,
                            Some(ord) => Value::Bool(apply_comparison(*op, ord)),
                        });
                    }
                    arithmetic(&l, *op, &r)
                }
            },
            CExpr::Func { name, args } => {
                let vals: Vec<Value> =
                    args.iter().map(|a| self.eval(a, row, aggs)).collect::<Result<_>>()?;
                eval_scalar(name, &vals)
            }
            CExpr::Case { operand, branches, else_expr } => {
                let op_val = match operand {
                    Some(o) => Some(self.eval(o, row, aggs)?),
                    None => None,
                };
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(ov) => {
                            let wv = self.eval(when, row, aggs)?;
                            cmp_values(ov, &wv)? == Some(Ordering::Equal)
                        }
                        None => self.eval(when, row, aggs)?.is_truthy(),
                    };
                    if hit {
                        return self.eval(then, row, aggs);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, row, aggs),
                    None => Ok(Value::Null),
                }
            }
            CExpr::InList { expr, list, negated } => {
                let needle = self.eval(expr, row, aggs)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = self.eval(item, row, aggs)?;
                    match cmp_values(&needle, &v)? {
                        None => saw_null = true,
                        Some(Ordering::Equal) => return Ok(Value::Bool(!negated)),
                        Some(_) => {}
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            CExpr::Between { expr, low, high, negated } => {
                let v = self.eval(expr, row, aggs)?;
                let lo = self.eval(low, row, aggs)?;
                let hi = self.eval(high, row, aggs)?;
                let ge = three_valued_cmp(&v, &lo, |o| o != Ordering::Less)?;
                let le = three_valued_cmp(&v, &hi, |o| o != Ordering::Greater)?;
                Ok(match and3(ge, le) {
                    None => Value::Null,
                    Some(b) => Value::Bool(b != *negated),
                })
            }
            CExpr::IsNull { expr, negated } => {
                let v = self.eval(expr, row, aggs)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            CExpr::Like { expr, pattern, negated } => {
                let v = self.eval(expr, row, aggs)?;
                let p = self.eval(pattern, row, aggs)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(p)) => {
                        Ok(Value::Bool(like_match(&p, &s) != *negated))
                    }
                    (a, b) => Err(EngineError::TypeMismatch(format!("{a} LIKE {b}"))),
                }
            }
        }
    }
}
