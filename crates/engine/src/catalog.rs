//! The table catalog: the engine's entry point.

use crate::columnar::ColumnarTable;
use crate::delta::{DeltaCache, DeltaOutcome};
use crate::error::{EngineError, Result};
use crate::eval::ExecCtx;
use crate::result::ResultSet;
use crate::stats::{ColumnStats, ScanStats};
use crate::table::Table;
use parking_lot::Mutex;
use pi2_sql::Query;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on cached query results; the cache is cleared wholesale when
/// it fills (results at interface-generation scale are small, and the
/// search re-evaluates the same default instantiations constantly).
const QUERY_CACHE_CAP: usize = 4096;

/// Shared result cache keyed by (catalog version, query structural hash).
type QueryCache = HashMap<(u64, u64), Arc<ResultSet>>;

/// Resource limits applied to each query execution.
///
/// Both limits are off by default. When a limit trips, execution stops
/// with [`EngineError::ResourceExhausted`] instead of materializing more
/// rows — so a widget interaction that instantiates a huge cross join
/// fails fast rather than hanging the session.
///
/// Limits guard live execution only: a result already in the query cache
/// is returned as-is, since its cost was already paid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Cap on rows materialized by any single operator (joins, cross
    /// products, output). `None` = unlimited.
    pub max_rows: Option<usize>,
    /// Wall-clock budget for one query execution. `None` = unlimited.
    pub timeout: Option<std::time::Duration>,
}

impl ExecLimits {
    /// Limits with only a row cap.
    pub fn rows(max_rows: usize) -> Self {
        ExecLimits { max_rows: Some(max_rows), timeout: None }
    }
}

/// A collection of named tables plus the query entry point.
///
/// Table lookup is case-insensitive. Tables are stored behind `Arc` so that
/// scans and notebook snapshots can share them cheaply. A shared result
/// cache — keyed by (catalog version, query structural hash) — accelerates
/// the interface search, which repeatedly executes the same candidate
/// instantiations. Clones share the cache; registering a table moves a
/// catalog to a fresh globally-unique version, so diverged clones never
/// see each other's results.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    /// Typed column-major mirrors of `tables`, built once at registration
    /// and scanned by the columnar fast path (see [`crate::exec_columnar`]).
    columnar: BTreeMap<String, Arc<ColumnarTable>>,
    /// Globally-unique fingerprint of this catalog's table map; part of
    /// every cache key so clones that diverge (one registers a new table)
    /// can keep sharing the cache soundly.
    version: u64,
    cache: Arc<Mutex<QueryCache>>,
    limits: ExecLimits,
    /// Fast-path vs fallback execution tally, shared across clones.
    exec_counts: Arc<ExecCounts>,
    /// Zone-map pruning tallies, shared across clones.
    scan_stats: Arc<ScanStats>,
}

/// How many fresh (non-cached) executions took each path.
#[derive(Debug, Default)]
struct ExecCounts {
    columnar: AtomicU64,
    reference: AtomicU64,
}

/// Source of globally-unique catalog versions (see [`Catalog::register`]).
static NEXT_VERSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty catalog with the given execution limits.
    pub fn with_limits(limits: ExecLimits) -> Self {
        Catalog { limits, ..Self::default() }
    }

    /// Set the execution limits for subsequent queries.
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.limits = limits;
    }

    /// The execution limits applied to each query.
    pub fn limits(&self) -> ExecLimits {
        self.limits
    }

    /// The catalog's globally-unique content version. Every
    /// [`register`](Self::register) moves the catalog to a fresh version;
    /// clones share their source's version until they diverge. Two
    /// catalogs with the same version hold identical table data, which
    /// makes the version a sound catalog-identity input for cache keys
    /// (the engine's own result cache and the fleet generation cache both
    /// key on it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register (or replace) a table under its own name. The catalog moves
    /// to a fresh version, so previously cached results (including those
    /// shared with clones) no longer match its keys.
    pub fn register(&mut self, table: Table) {
        let key = table.name.to_lowercase();
        self.columnar.insert(key.clone(), Arc::new(ColumnarTable::build(&table)));
        self.tables.insert(key, Arc::new(table));
        self.version = NEXT_VERSION.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(&name.to_lowercase()).cloned()
    }

    /// The columnar mirror of a table (case-insensitive).
    pub(crate) fn columnar(&self, name: &str) -> Option<Arc<ColumnarTable>> {
        self.columnar.get(&name.to_lowercase()).cloned()
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name.clone()).collect()
    }

    /// Execute a query against this catalog (cached — see type docs).
    pub fn execute(&self, query: &Query) -> Result<ResultSet> {
        #[cfg(feature = "faults")]
        if pi2_faults::exec_overrun() {
            return Err(EngineError::ResourceExhausted("injected execution overrun".into()));
        }
        let key = (self.version, query.structural_hash());
        if let Some(hit) = self.cache.lock().get(&key).cloned() {
            return Ok((*hit).clone());
        }
        let result = self.execute_fresh(query)?;
        let mut cache = self.cache.lock();
        if cache.len() >= QUERY_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::new(result.clone()));
        Ok(result)
    }

    /// Execute without consulting or filling the result cache (used by
    /// benchmarks that measure raw engine latency).
    pub fn execute_uncached(&self, query: &Query) -> Result<ResultSet> {
        #[cfg(feature = "faults")]
        if pi2_faults::exec_overrun() {
            return Err(EngineError::ResourceExhausted("injected execution overrun".into()));
        }
        self.execute_fresh(query)
    }

    /// Columnar fast path when the query qualifies, reference interpreter
    /// otherwise.
    fn execute_fresh(&self, query: &Query) -> Result<ResultSet> {
        match crate::exec_columnar::try_execute(self, query) {
            Some(result) => {
                self.exec_counts.columnar.fetch_add(1, Ordering::Relaxed);
                result
            }
            None => {
                self.exec_counts.reference.fetch_add(1, Ordering::Relaxed);
                ExecCtx::new(self).execute(query)
            }
        }
    }

    /// Execute on the row-at-a-time reference path only, bypassing both the
    /// result cache and the columnar fast path. This is the semantic oracle:
    /// differential tests and benchmarks compare it against
    /// [`Catalog::execute_uncached`].
    pub fn execute_reference(&self, query: &Query) -> Result<ResultSet> {
        #[cfg(feature = "faults")]
        if pi2_faults::exec_overrun() {
            return Err(EngineError::ResourceExhausted("injected execution overrun".into()));
        }
        ExecCtx::new(self).execute(query)
    }

    /// How many fresh executions ran columnar vs on the reference fallback
    /// (shared across clones of this catalog).
    pub fn exec_path_counts(&self) -> (u64, u64) {
        (
            self.exec_counts.columnar.load(Ordering::Relaxed),
            self.exec_counts.reference.load(Ordering::Relaxed),
        )
    }

    /// Execute incrementally when only range-predicate bounds shifted since
    /// a previous dispatch of the same query template (see
    /// [`crate::delta`]). `None` means the query is outside the delta
    /// fragment and the caller should fall back to
    /// [`execute_uncached`](Self::execute_uncached); `Some` carries a
    /// result byte-identical to full execution plus how it was obtained.
    pub fn execute_delta(
        &self,
        query: &Query,
        cache: &mut DeltaCache,
    ) -> Option<(Result<ResultSet>, DeltaOutcome)> {
        #[cfg(feature = "faults")]
        if pi2_faults::exec_overrun() {
            return Some((
                Err(EngineError::ResourceExhausted("injected execution overrun".into())),
                DeltaOutcome::Seeded,
            ));
        }
        crate::delta::execute(self, query, cache)
    }

    /// Zone-map block counters: `(blocks_scanned, blocks_pruned)` across
    /// every typed predicate loop run against this catalog (shared across
    /// clones).
    pub fn scan_counts(&self) -> (u64, u64) {
        (self.scan_stats.blocks_scanned(), self.scan_stats.blocks_pruned())
    }

    /// The shared scan counters (for the columnar executor).
    pub(crate) fn scan_stats(&self) -> Arc<ScanStats> {
        Arc::clone(&self.scan_stats)
    }

    /// Total wall-clock nanoseconds spent building the columnar mirrors
    /// currently registered in this catalog.
    pub fn columnar_build_nanos(&self) -> u64 {
        self.columnar.values().map(|c| c.build_nanos()).sum()
    }

    /// Parse and execute SQL text.
    pub fn execute_sql(&self, sql: &str) -> Result<ResultSet> {
        let q = pi2_sql::parse_query(sql)
            .map_err(|e| EngineError::Unsupported(format!("parse error: {e}")))?;
        self.execute(&q)
    }

    /// Statistics for `table.column`, if both exist. Served from the
    /// columnar mirror's lazily computed per-column cache (typed sort /
    /// dictionary read) instead of re-walking row storage per call; the
    /// row-store fallback only covers tables without a mirror.
    pub fn column_stats(&self, table: &str, column: &str) -> Option<ColumnStats> {
        if let Some(columnar) = self.columnar(table) {
            if let Some(idx) = columnar.column_index(column) {
                return Some(columnar.column_stats(idx).clone());
            }
        }
        self.get(table)?.column_stats(column)
    }

    /// The free (correlation) variables of a query — see
    /// [`crate::exec::free_columns`].
    pub fn free_columns(&self, q: &Query) -> Vec<pi2_sql::ColumnRef> {
        crate::exec::free_columns(q, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t =
            Table::builder("T").column("a", DataType::Int).column("b", DataType::Str).build();
        t.push_row(vec![Value::Int(1), Value::str("x")]).unwrap();
        c.register(t);
        c
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let c = demo_catalog();
        assert!(c.get("t").is_some());
        assert!(c.get("T").is_some());
        assert!(c.get("u").is_none());
    }

    #[test]
    fn execute_sql_end_to_end() {
        let c = demo_catalog();
        let r = c.execute_sql("SELECT a FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        assert!(c.execute_sql("SELECT nope FROM t").is_err());
        assert!(c.execute_sql("this is not sql").is_err());
    }

    #[test]
    fn stats_accessor() {
        let c = demo_catalog();
        let s = c.column_stats("t", "a").unwrap();
        assert_eq!(s.min, Some(Value::Int(1)));
        assert!(c.column_stats("t", "nope").is_none());
    }

    fn wide_catalog(limits: ExecLimits) -> Catalog {
        let mut c = Catalog::with_limits(limits);
        for name in ["a", "b"] {
            let mut t = Table::builder(name).column("x", DataType::Int).build();
            for i in 0..50 {
                t.push_row(vec![Value::Int(i)]).unwrap();
            }
            c.register(t);
        }
        c
    }

    #[test]
    fn row_limit_refuses_large_cross_join() {
        let c = wide_catalog(ExecLimits::rows(100));
        // 50 × 50 = 2500 rows would be materialized: refused up front.
        let err = c.execute_sql("SELECT a.x FROM a, b").unwrap_err();
        assert!(matches!(err, EngineError::ResourceExhausted(_)), "got {err}");
        // Queries under the limit still run.
        let r = c.execute_sql("SELECT x FROM a WHERE x < 3").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn zero_timeout_fails_fast_instead_of_hanging() {
        let c =
            wide_catalog(ExecLimits { max_rows: None, timeout: Some(std::time::Duration::ZERO) });
        let err = c.execute_sql("SELECT a.x FROM a, b").unwrap_err();
        assert!(matches!(err, EngineError::ResourceExhausted(_)), "got {err}");
    }

    #[test]
    fn limits_survive_clone_and_default_is_unlimited() {
        let c = wide_catalog(ExecLimits::rows(10));
        assert_eq!(c.clone().limits(), ExecLimits::rows(10));
        let unlimited = wide_catalog(ExecLimits::default());
        let r = unlimited.execute_sql("SELECT a.x FROM a, b").unwrap();
        assert_eq!(r.rows.len(), 2500);
    }
}
