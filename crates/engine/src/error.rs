//! Engine errors.

use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised while building tables or executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A column reference could not be resolved.
    UnknownColumn(String),
    /// A column reference matched more than one visible column.
    AmbiguousColumn(String),
    /// A function is not implemented or was called with bad arguments.
    BadFunction(String),
    /// Operand types are incompatible with an operator.
    TypeMismatch(String),
    /// A scalar subquery returned more than one row or column.
    ScalarSubquery(String),
    /// A row's shape or types don't match the table schema.
    SchemaViolation(String),
    /// Execution exceeded a configured resource limit (rows or wall-clock;
    /// see [`crate::catalog::ExecLimits`]). The query was abandoned.
    ResourceExhausted(String),
    /// Anything else (unsupported construct, internal invariant).
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            EngineError::BadFunction(m) => write!(f, "bad function call: {m}"),
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::ScalarSubquery(m) => write!(f, "scalar subquery: {m}"),
            EngineError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            EngineError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}
