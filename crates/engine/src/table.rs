//! In-memory tables.

use crate::error::{EngineError, Result};
use crate::schema::{Field, Schema};
use crate::stats::ColumnStats;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// A named, row-oriented in-memory table with a fixed schema.
///
/// Rows are validated against the schema on insertion: each value must match
/// the column's declared type or be `NULL` (integer values are silently
/// widened into `FLOAT` columns).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The name.
    pub name: String,
    /// The output schema.
    pub schema: Schema,
    /// The data rows.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Start building a table.
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder { name: name.into(), fields: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after validating it against the schema.
    pub fn push_row(&mut self, mut row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaViolation(format!(
                "table {}: row has {} values, schema has {} columns",
                self.name,
                row.len(),
                self.schema.len()
            )));
        }
        for (value, field) in row.iter_mut().zip(&self.schema.fields) {
            if value.is_null() {
                continue;
            }
            let vt = value.data_type();
            if vt == field.data_type {
                continue;
            }
            // Widen Int into Float columns.
            if field.data_type == DataType::Float && vt == DataType::Int {
                if let Value::Int(v) = value {
                    *value = Value::Float(*v as f64);
                }
                continue;
            }
            return Err(EngineError::SchemaViolation(format!(
                "table {}: column {} expects {}, got {} ({})",
                self.name, field.name, field.data_type, vt, value
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// All values of the column named `name`.
    pub fn column_values(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.schema.index_of(name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }

    /// Compute statistics for the column named `name`.
    pub fn column_stats(&self, name: &str) -> Option<ColumnStats> {
        let idx = self.schema.index_of(name)?;
        let field = &self.schema.fields[idx];
        Some(ColumnStats::compute(field, self.rows.iter().map(|r| &r[idx])))
    }
}

/// Builder for [`Table`].
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
}

impl TableBuilder {
    /// Add a column.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.fields.push(Field::new(name, data_type));
        self
    }

    /// Finish, producing an empty table.
    pub fn build(self) -> Table {
        Table { name: self.name, schema: Schema::new(self.fields), rows: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Str)
            .column("c", DataType::Float)
            .build()
    }

    #[test]
    fn push_valid_row() {
        let mut table = t();
        table.push_row(vec![Value::Int(1), Value::str("x"), Value::Float(1.5)]).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn widens_int_to_float() {
        let mut table = t();
        table.push_row(vec![Value::Int(1), Value::str("x"), Value::Int(2)]).unwrap();
        assert_eq!(table.rows[0][2], Value::Float(2.0));
        assert_eq!(table.rows[0][2].data_type(), DataType::Float);
    }

    #[test]
    fn nulls_allowed_everywhere() {
        let mut table = t();
        table.push_row(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut table = t();
        assert!(table.push_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn rejects_wrong_type() {
        let mut table = t();
        assert!(table.push_row(vec![Value::str("oops"), Value::str("x"), Value::Null]).is_err());
    }

    #[test]
    fn column_values_by_name() {
        let mut table = t();
        table.push_row(vec![Value::Int(1), Value::str("x"), Value::Null]).unwrap();
        table.push_row(vec![Value::Int(2), Value::str("y"), Value::Null]).unwrap();
        let vals = table.column_values("a").unwrap();
        assert_eq!(vals, vec![&Value::Int(1), &Value::Int(2)]);
        assert!(table.column_values("zzz").is_none());
    }
}
