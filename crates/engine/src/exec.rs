//! The query executor.
//!
//! Executes a [`pi2_sql::Query`] AST directly against the catalog. The
//! pipeline is: build the FROM relation (scans, derived tables, joins with a
//! hash-join fast path for equi-joins), filter with WHERE, aggregate if the
//! query groups, project, apply DISTINCT / ORDER BY / LIMIT / OFFSET.

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::eval::{AggBindings, ExecCtx, RelField, RelSchema, Scope};
use crate::result::ResultSet;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use pi2_sql::visit::walk_expr;
use pi2_sql::{
    is_aggregate_function, BinaryOp, ColumnRef, Expr, JoinKind, Literal, Query, SelectItem,
    SortDir, TableRef, UnaryOp,
};
use std::collections::{HashMap, HashSet};

/// An intermediate relation: schema plus materialized rows.
struct Relation {
    schema: RelSchema,
    rows: Vec<Vec<Value>>,
}

impl<'c> ExecCtx<'c> {
    /// Execute a top-level query.
    pub fn execute(&self, q: &Query) -> Result<ResultSet> {
        self.execute_query(q, None)
    }

    pub(crate) fn execute_query(&self, q: &Query, outer: Option<&Scope<'_>>) -> Result<ResultSet> {
        let input = self.build_from(&q.from, outer)?;

        // WHERE
        let mut rows = Vec::with_capacity(input.rows.len());
        match &q.where_clause {
            Some(pred) => {
                for row in input.rows {
                    let scope =
                        Scope { schema: &input.schema, row: &row, parent: outer, aggs: None };
                    if self.eval_ref(pred, &scope)?.is_truthy() {
                        rows.push(row);
                    }
                }
            }
            None => rows = input.rows,
        }

        // Expand the projection list against the input schema.
        let items = expand_projection(&q.projection, &input.schema)?;

        // Static output schema; refined from values after execution.
        let out_fields: Vec<Field> = items
            .iter()
            .map(|(expr, alias)| {
                Field::new(output_name(expr, alias), infer_type(expr, &input.schema))
            })
            .collect();

        // Evaluate rows (+ ORDER BY keys alongside).
        let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        if q.is_aggregating() {
            self.execute_grouped(q, &input.schema, rows, &items, outer, &mut out_rows)?;
        } else {
            if q.having.is_some() {
                return Err(EngineError::Unsupported("HAVING without aggregation".into()));
            }
            for row in rows {
                self.check_limits(out_rows.len())?;
                let scope = Scope { schema: &input.schema, row: &row, parent: outer, aggs: None };
                let mut out = Vec::with_capacity(items.len());
                for (expr, _) in &items {
                    out.push(self.eval(expr, &scope)?);
                }
                let keys = self.order_keys(q, &items, &out, &scope)?;
                out_rows.push((out, keys));
            }
        }

        Ok(finalize_result(q, out_fields, out_rows))
    }

    /// Grouped execution: hash-aggregate `rows`, filter with HAVING, project.
    #[allow(clippy::too_many_arguments)]
    fn execute_grouped(
        &self,
        q: &Query,
        schema: &RelSchema,
        rows: Vec<Vec<Value>>,
        items: &[(Expr, Option<String>)],
        outer: Option<&Scope<'_>>,
        out_rows: &mut Vec<(Vec<Value>, Vec<Value>)>,
    ) -> Result<()> {
        // Aggregate calls appearing anywhere downstream of grouping.
        let mut agg_exprs: Vec<Expr> = Vec::new();
        let mut seen_aggs: HashSet<u64> = HashSet::new();
        let mut collect = |e: &Expr| {
            collect_aggregates(e, &mut |agg| {
                if seen_aggs.insert(agg.structural_hash()) {
                    agg_exprs.push(agg.clone());
                }
            });
        };
        for (expr, _) in items {
            collect(expr);
        }
        if let Some(h) = &q.having {
            collect(h);
        }
        for o in &q.order_by {
            collect(&o.expr);
        }

        // Group rows by GROUP BY keys.
        let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in rows {
            let scope = Scope { schema, row: &row, parent: outer, aggs: None };
            let key: Vec<Value> =
                q.group_by.iter().map(|g| self.eval(g, &scope)).collect::<Result<_>>()?;
            match index.get(&key) {
                Some(&i) => groups[i].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // Ungrouped aggregation over zero rows still yields one group.
        if groups.is_empty() && q.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let null_row = vec![Value::Null; schema.fields.len()];
        for (_, group_rows) in groups {
            self.check_limits(out_rows.len())?;
            let mut aggs = AggBindings::default();
            for agg in &agg_exprs {
                let v = self.compute_aggregate(agg, schema, &group_rows, outer)?;
                aggs.map.insert(agg.structural_hash(), v);
            }
            let rep_row = group_rows.first().unwrap_or(&null_row);
            let scope = Scope { schema, row: rep_row, parent: outer, aggs: Some(&aggs) };
            if let Some(h) = &q.having {
                if !self.eval_ref(h, &scope)?.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(items.len());
            for (expr, _) in items {
                out.push(self.eval(expr, &scope)?);
            }
            let keys = self.order_keys(q, items, &out, &scope)?;
            out_rows.push((out, keys));
        }
        Ok(())
    }

    /// Evaluate one aggregate call over a group.
    fn compute_aggregate(
        &self,
        agg: &Expr,
        schema: &RelSchema,
        group_rows: &[Vec<Value>],
        outer: Option<&Scope<'_>>,
    ) -> Result<Value> {
        let Expr::Function { name, args, distinct } = agg else {
            return Err(EngineError::Unsupported("not an aggregate".into()));
        };
        // count(*) counts rows including NULLs.
        if name == "count" && matches!(args.first(), Some(Expr::Wildcard)) {
            return Ok(Value::Int(group_rows.len() as i64));
        }
        let arg = args
            .first()
            .ok_or_else(|| EngineError::BadFunction(format!("{name}() requires an argument")))?;
        let mut vals: Vec<Value> = Vec::with_capacity(group_rows.len());
        for row in group_rows {
            let scope = Scope { schema, row, parent: outer, aggs: None };
            let v = self.eval(arg, &scope)?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if *distinct {
            let mut seen: HashSet<Value> = HashSet::new();
            vals.retain(|v| seen.insert(v.clone()));
        }
        match name.as_str() {
            "count" => Ok(Value::Int(vals.len() as i64)),
            "min" => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
            "max" => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
            "sum" | "avg" => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
                let total: f64 = vals
                    .iter()
                    .map(|v| {
                        v.as_f64().ok_or_else(|| {
                            EngineError::TypeMismatch(format!("{name}({})", v.data_type()))
                        })
                    })
                    .sum::<Result<f64>>()?;
                if name == "avg" {
                    Ok(Value::Float(total / vals.len() as f64))
                } else if all_int {
                    Ok(Value::Int(total as i64))
                } else {
                    Ok(Value::Float(total))
                }
            }
            other => Err(EngineError::BadFunction(format!("unknown aggregate {other}"))),
        }
    }

    /// Evaluate ORDER BY keys for one output row. A bare column matching a
    /// projection alias (or an integer literal position) sorts by the output
    /// column; anything else evaluates in the row scope.
    fn order_keys(
        &self,
        q: &Query,
        items: &[(Expr, Option<String>)],
        out: &[Value],
        scope: &Scope<'_>,
    ) -> Result<Vec<Value>> {
        let mut keys = Vec::with_capacity(q.order_by.len());
        for o in &q.order_by {
            if let Expr::Column(ColumnRef { table: None, column }) = &o.expr {
                if let Some(idx) = items.iter().position(|(expr, alias)| {
                    alias.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(column))
                        || matches!(expr, Expr::Column(c) if c.column.eq_ignore_ascii_case(column) && c.table.is_none())
                }) {
                    keys.push(out[idx].clone());
                    continue;
                }
            }
            if let Expr::Literal(Literal::Int(pos)) = &o.expr {
                let idx = *pos as usize;
                if idx >= 1 && idx <= out.len() {
                    keys.push(out[idx - 1].clone());
                    continue;
                }
            }
            keys.push(self.eval(&o.expr, scope)?);
        }
        Ok(keys)
    }

    // ---- FROM construction -------------------------------------------------

    fn build_from(&self, from: &[TableRef], outer: Option<&Scope<'_>>) -> Result<Relation> {
        if from.is_empty() {
            return Ok(Relation { schema: RelSchema::default(), rows: vec![Vec::new()] });
        }
        let mut acc = self.build_table_ref(&from[0], outer)?;
        for t in &from[1..] {
            let right = self.build_table_ref(t, outer)?;
            acc = self.cross_product(acc, right)?;
        }
        Ok(acc)
    }

    fn build_table_ref(&self, t: &TableRef, outer: Option<&Scope<'_>>) -> Result<Relation> {
        match t {
            TableRef::Named { name, alias } => {
                let table = self
                    .catalog
                    .get(name)
                    .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                let schema = RelSchema {
                    fields: table
                        .schema
                        .fields
                        .iter()
                        .map(|f| RelField {
                            qualifier: Some(qualifier.clone()),
                            name: f.name.clone(),
                            data_type: f.data_type,
                        })
                        .collect(),
                };
                Ok(Relation { schema, rows: table.rows.clone() })
            }
            TableRef::Subquery { query, alias } => {
                let result = self.execute_query(query, outer)?;
                let schema = RelSchema {
                    fields: result
                        .schema
                        .fields
                        .iter()
                        .map(|f| RelField {
                            qualifier: Some(alias.clone()),
                            name: f.name.clone(),
                            data_type: f.data_type,
                        })
                        .collect(),
                };
                Ok(Relation { schema, rows: result.rows })
            }
            TableRef::Join { left, right, kind, on } => {
                let l = self.build_table_ref(left, outer)?;
                let r = self.build_table_ref(right, outer)?;
                self.join(l, r, *kind, on.as_ref(), outer)
            }
        }
    }

    fn join(
        &self,
        left: Relation,
        right: Relation,
        kind: JoinKind,
        on: Option<&Expr>,
        outer: Option<&Scope<'_>>,
    ) -> Result<Relation> {
        let mut fields = left.schema.fields.clone();
        fields.extend(right.schema.fields.iter().cloned());
        let schema = RelSchema { fields };

        if kind == JoinKind::Cross || on.is_none() {
            return self.cross_product(left, right);
        }
        let on = on.expect("checked above");

        // Hash-join fast path: find an equality conjunct between a
        // left-resolvable and a right-resolvable column.
        let conjuncts = pi2_sql::visit::conjuncts(on);
        let mut hash_key: Option<(usize, usize)> = None;
        let mut residual: Vec<&Expr> = Vec::new();
        for c in &conjuncts {
            if hash_key.is_none() {
                if let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = c {
                    if let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) {
                        let la = left.schema.resolve(ca).ok().flatten();
                        let rb = right.schema.resolve(cb).ok().flatten();
                        if let (Some(li), Some(ri)) = (la, rb) {
                            hash_key = Some((li, ri));
                            continue;
                        }
                        let lb = left.schema.resolve(cb).ok().flatten();
                        let ra = right.schema.resolve(ca).ok().flatten();
                        if let (Some(li), Some(ri)) = (lb, ra) {
                            hash_key = Some((li, ri));
                            continue;
                        }
                    }
                }
            }
            residual.push(c);
        }

        let mut out_rows = Vec::new();
        match hash_key {
            Some((li, ri)) => {
                let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
                for (idx, row) in right.rows.iter().enumerate() {
                    if !row[ri].is_null() {
                        table.entry(&row[ri]).or_default().push(idx);
                    }
                }
                for lrow in &left.rows {
                    self.check_limits(out_rows.len())?;
                    let mut matched = false;
                    if !lrow[li].is_null() {
                        if let Some(candidates) = table.get(&lrow[li]) {
                            for &ridx in candidates {
                                let rrow = &right.rows[ridx];
                                let mut combined = lrow.clone();
                                combined.extend(rrow.iter().cloned());
                                let ok = self.residual_ok(&residual, &schema, &combined, outer)?;
                                if ok {
                                    matched = true;
                                    out_rows.push(combined);
                                }
                            }
                        }
                    }
                    if !matched && kind == JoinKind::Left {
                        let mut combined = lrow.clone();
                        combined
                            .extend(std::iter::repeat_n(Value::Null, right.schema.fields.len()));
                        out_rows.push(combined);
                    }
                }
            }
            None => {
                for lrow in &left.rows {
                    self.check_limits(out_rows.len())?;
                    let mut matched = false;
                    for rrow in &right.rows {
                        let mut combined = lrow.clone();
                        combined.extend(rrow.iter().cloned());
                        let scope =
                            Scope { schema: &schema, row: &combined, parent: outer, aggs: None };
                        if self.eval_ref(on, &scope)?.is_truthy() {
                            matched = true;
                            out_rows.push(combined);
                        }
                    }
                    if !matched && kind == JoinKind::Left {
                        let mut combined = lrow.clone();
                        combined
                            .extend(std::iter::repeat_n(Value::Null, right.schema.fields.len()));
                        out_rows.push(combined);
                    }
                }
            }
        }
        Ok(Relation { schema, rows: out_rows })
    }

    fn residual_ok(
        &self,
        residual: &[&Expr],
        schema: &RelSchema,
        row: &[Value],
        outer: Option<&Scope<'_>>,
    ) -> Result<bool> {
        for pred in residual {
            let scope = Scope { schema, row, parent: outer, aggs: None };
            if !self.eval_ref(pred, &scope)?.is_truthy() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl ExecCtx<'_> {
    fn cross_product(&self, left: Relation, right: Relation) -> Result<Relation> {
        // Check the product size up front: the whole point of the row
        // limit is to refuse a pathological cross join *before*
        // materializing it.
        let product = left.rows.len().saturating_mul(right.rows.len());
        self.check_limits(product)?;
        let mut fields = left.schema.fields;
        fields.extend(right.schema.fields);
        let mut rows = Vec::with_capacity(product);
        for l in &left.rows {
            self.check_limits(rows.len())?;
            for r in &right.rows {
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                rows.push(combined);
            }
        }
        Ok(Relation { schema: RelSchema { fields }, rows })
    }
}

/// The shared query tail: DISTINCT, ORDER BY (over precomputed sort keys),
/// OFFSET/LIMIT, and dynamic type refinement. Both the reference and the
/// columnar executors funnel through this, so the post-projection semantics
/// cannot drift between them.
pub(crate) fn finalize_result(
    q: &Query,
    mut out_fields: Vec<Field>,
    mut out_rows: Vec<(Vec<Value>, Vec<Value>)>,
) -> ResultSet {
    // DISTINCT
    if q.distinct {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        out_rows.retain(|(row, _)| seen.insert(row.clone()));
    }

    // ORDER BY (stable sort; DESC flips per key).
    if !q.order_by.is_empty() {
        let dirs: Vec<SortDir> = q.order_by.iter().map(|o| o.dir).collect();
        out_rows.sort_by(|(_, ka), (_, kb)| {
            for (i, dir) in dirs.iter().enumerate() {
                let ord = ka[i].cmp(&kb[i]);
                let ord = match dir {
                    SortDir::Asc => ord,
                    SortDir::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // OFFSET / LIMIT
    let offset = q.offset.unwrap_or(0) as usize;
    let mut final_rows: Vec<Vec<Value>> =
        out_rows.into_iter().skip(offset).map(|(r, _)| r).collect();
    if let Some(limit) = q.limit {
        final_rows.truncate(limit as usize);
    }

    // Dynamic type refinement for columns the static pass couldn't type.
    for (i, f) in out_fields.iter_mut().enumerate() {
        if f.data_type == DataType::Null {
            if let Some(v) = final_rows.iter().map(|r| &r[i]).find(|v| !v.is_null()) {
                f.data_type = v.data_type();
            }
        }
    }

    ResultSet { schema: Schema::new(out_fields), rows: final_rows }
}

/// Expand wildcards in a projection list into concrete expressions.
pub(crate) fn expand_projection(
    projection: &[SelectItem],
    schema: &RelSchema,
) -> Result<Vec<(Expr, Option<String>)>> {
    let mut items = Vec::new();
    for item in projection {
        match item {
            SelectItem::Wildcard => {
                for f in &schema.fields {
                    let col = match &f.qualifier {
                        Some(q) => ColumnRef::qualified(q.clone(), f.name.clone()),
                        None => ColumnRef::bare(f.name.clone()),
                    };
                    items.push((Expr::Column(col), Some(f.name.clone())));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let mut any = false;
                for f in &schema.fields {
                    if f.qualifier.as_deref().is_some_and(|q| q.eq_ignore_ascii_case(t)) {
                        any = true;
                        items.push((
                            Expr::Column(ColumnRef::qualified(t.clone(), f.name.clone())),
                            Some(f.name.clone()),
                        ));
                    }
                }
                if !any {
                    return Err(EngineError::UnknownTable(format!("{t}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => items.push((expr.clone(), alias.clone())),
        }
    }
    Ok(items)
}

/// The display name of an output column.
pub(crate) fn output_name(expr: &Expr, alias: &Option<String>) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        Expr::Column(c) => c.column.clone(),
        other => other.to_string(),
    }
}

/// Static type inference for an output expression against the input schema.
/// Returns [`DataType::Null`] when the type can only be known dynamically.
pub fn infer_type(expr: &Expr, schema: &RelSchema) -> DataType {
    match expr {
        Expr::Column(c) => match schema.resolve(c) {
            Ok(Some(i)) => schema.fields[i].data_type,
            _ => DataType::Null,
        },
        Expr::Literal(l) => Value::from_literal(l).data_type(),
        Expr::Wildcard => DataType::Null,
        Expr::Unary { op: UnaryOp::Not, .. } => DataType::Bool,
        Expr::Unary { op: UnaryOp::Neg, expr } => infer_type(expr, schema),
        Expr::Binary { left, op, right } => {
            if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                DataType::Bool
            } else if *op == BinaryOp::Concat {
                DataType::Str
            } else {
                let lt = infer_type(left, schema);
                let rt = infer_type(right, schema);
                // Date ± Int stays Date; Date - Date is Int days.
                match (lt, op, rt) {
                    (DataType::Date, BinaryOp::Sub, DataType::Date) => DataType::Int,
                    (DataType::Date, _, _) | (_, _, DataType::Date) => DataType::Date,
                    _ => lt.unify(rt).unwrap_or(DataType::Null),
                }
            }
        }
        Expr::Function { name, args, .. } => match name.as_str() {
            "count" | "length" | "year" | "month" | "day" => DataType::Int,
            "avg" => DataType::Float,
            "sum" | "min" | "max" | "abs" | "round" | "floor" | "ceil" => {
                args.first().map_or(DataType::Null, |a| infer_type(a, schema))
            }
            "lower" | "upper" | "substr" => DataType::Str,
            "coalesce" => args
                .iter()
                .map(|a| infer_type(a, schema))
                .reduce(|a, b| a.unify(b).unwrap_or(DataType::Null))
                .unwrap_or(DataType::Null),
            _ => DataType::Null,
        },
        Expr::Case { branches, else_expr, .. } => {
            let mut t = DataType::Null;
            for (_, then) in branches {
                t = t.unify(infer_type(then, schema)).unwrap_or(DataType::Null);
            }
            if let Some(e) = else_expr {
                t = t.unify(infer_type(e, schema)).unwrap_or(DataType::Null);
            }
            t
        }
        Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Between { .. }
        | Expr::IsNull { .. }
        | Expr::Like { .. } => DataType::Bool,
        Expr::ScalarSubquery(_) => DataType::Null,
    }
}

/// Invoke `f` on each aggregate call in `expr`, without descending into
/// subqueries (they aggregate in their own scope) or into aggregate
/// arguments (aggregates cannot nest).
pub(crate) fn collect_aggregates(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    match expr {
        Expr::Function { name, .. } if is_aggregate_function(name) => f(expr),
        Expr::InSubquery { expr, .. } => collect_aggregates(expr, f),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_aggregates(expr, f),
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, f);
            collect_aggregates(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, f);
            }
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                collect_aggregates(o, f);
            }
            for (w, t) in branches {
                collect_aggregates(w, f);
                collect_aggregates(t, f);
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, f);
            for e in list {
                collect_aggregates(e, f);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, f);
            collect_aggregates(low, f);
            collect_aggregates(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, f);
            collect_aggregates(pattern, f);
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

// ---- free-variable analysis -------------------------------------------------

/// The columns a query references that are *not* resolvable from its own
/// FROM clause (at any nesting level): its correlation variables. Used to
/// memoize correlated-subquery executions; also used by the DiffTree layer
/// to detect correlated structure.
pub fn free_columns(q: &Query, catalog: &Catalog) -> Vec<ColumnRef> {
    let mut out = Vec::new();
    collect_free(q, catalog, &[], &mut out);
    // Dedup, preserving first-seen order.
    let mut seen = HashSet::new();
    out.retain(|c| seen.insert(c.clone()));
    out
}

/// The (qualifier, column-name) pairs visible inside one query level, plus
/// its projection output names (so alias references in ORDER BY / HAVING
/// are not mistaken for correlation).
struct VisibleSet {
    /// Visible relation qualifiers (lower-cased).
    qualifiers: HashSet<String>,
    /// Visible column names (lower-cased).
    columns: HashSet<String>,
}

impl VisibleSet {
    fn resolves(&self, c: &ColumnRef) -> bool {
        match &c.table {
            // If the qualifier names a visible relation, the reference is
            // local even if the column is misspelled (that's an execution
            // error, not correlation).
            Some(q) => self.qualifiers.contains(&q.to_lowercase()),
            None => self.columns.contains(&c.column.to_lowercase()),
        }
    }
}

fn visible_of(q: &Query, catalog: &Catalog) -> VisibleSet {
    let mut vis = VisibleSet { qualifiers: HashSet::new(), columns: HashSet::new() };
    fn add_table(t: &TableRef, catalog: &Catalog, vis: &mut VisibleSet) {
        match t {
            TableRef::Named { name, alias } => {
                let q = alias.as_deref().unwrap_or(name);
                vis.qualifiers.insert(q.to_lowercase());
                if let Some(table) = catalog.get(name) {
                    for f in &table.schema.fields {
                        vis.columns.insert(f.name.to_lowercase());
                    }
                }
            }
            TableRef::Subquery { query, alias } => {
                vis.qualifiers.insert(alias.to_lowercase());
                for item in &query.projection {
                    if let SelectItem::Expr { expr, alias } = item {
                        let name = output_name(expr, alias);
                        vis.columns.insert(name.to_lowercase());
                    }
                }
            }
            TableRef::Join { left, right, .. } => {
                add_table(left, catalog, vis);
                add_table(right, catalog, vis);
            }
        }
    }
    for t in &q.from {
        add_table(t, catalog, &mut vis);
    }
    // Projection aliases are referencable in ORDER BY / HAVING.
    for item in &q.projection {
        if let SelectItem::Expr { alias: Some(a), .. } = item {
            vis.columns.insert(a.to_lowercase());
        }
    }
    vis
}

fn collect_free(q: &Query, catalog: &Catalog, outer: &[&VisibleSet], out: &mut Vec<ColumnRef>) {
    let vis = visible_of(q, catalog);
    let mut envs: Vec<&VisibleSet> = outer.to_vec();
    envs.push(&vis);

    // Gather this level's expressions (including join ON predicates) and
    // its derived tables.
    fn scan_table<'a>(t: &'a TableRef, derived: &mut Vec<&'a Query>, ons: &mut Vec<&'a Expr>) {
        match t {
            TableRef::Named { .. } => {}
            TableRef::Subquery { query, .. } => derived.push(query),
            TableRef::Join { left, right, on, .. } => {
                scan_table(left, derived, ons);
                scan_table(right, derived, ons);
                if let Some(on) = on {
                    ons.push(on);
                }
            }
        }
    }
    let mut derived: Vec<&Query> = Vec::new();
    let mut exprs: Vec<&Expr> = Vec::new();
    for t in &q.from {
        scan_table(t, &mut derived, &mut exprs);
    }
    for item in &q.projection {
        if let SelectItem::Expr { expr, .. } = item {
            exprs.push(expr);
        }
    }
    if let Some(w) = &q.where_clause {
        exprs.push(w);
    }
    exprs.extend(q.group_by.iter());
    if let Some(h) = &q.having {
        exprs.push(h);
    }
    exprs.extend(q.order_by.iter().map(|o| &o.expr));

    {
        let envs_ref = &envs;
        let mut check = |e: &Expr| -> bool {
            match e {
                Expr::Column(c) => {
                    if !envs_ref.iter().any(|v| v.resolves(c)) {
                        out.push(c.clone());
                    }
                    true
                }
                // Recurse into subqueries with the extended environment;
                // `walk_expr` must not descend itself (return false), but
                // the left-hand side of IN still needs checking.
                Expr::InSubquery { expr, subquery, .. } => {
                    walk_expr(expr, &mut |e2| {
                        if let Expr::Column(c) = e2 {
                            if !envs_ref.iter().any(|v| v.resolves(c)) {
                                out.push(c.clone());
                            }
                        }
                        true
                    });
                    collect_free(subquery, catalog, envs_ref, out);
                    false
                }
                Expr::Exists { subquery, .. } => {
                    collect_free(subquery, catalog, envs_ref, out);
                    false
                }
                Expr::ScalarSubquery(sq) => {
                    collect_free(sq, catalog, envs_ref, out);
                    false
                }
                _ => true,
            }
        };
        for e in exprs {
            walk_expr(e, &mut check);
        }
    }

    // Derived tables cannot be correlated in this dialect, so they see only
    // the outer environments they could legally reference: none beyond their
    // own. Analyzing with the current environment stack is harmlessly
    // lenient (it can only shrink the memo key when a name shadows).
    for dq in derived {
        collect_free(dq, catalog, &envs, out);
    }
}
