//! Incremental recomputation of shifted range predicates.
//!
//! Interactive gestures — pan, zoom, brush — re-dispatch the *same* query
//! with only the bounds of one or more `BETWEEN` conjuncts moved. Instead
//! of rescanning all N rows, this module caches the previous dispatch's
//! selection mask per query *template* (the query with its shiftable
//! bounds erased) and, on the next dispatch, re-evaluates only the zone-map
//! blocks whose value range intersects the bounds' movement: a row's
//! membership can only change if its value lies between an old and new
//! bound, so blocks outside those hull intervals keep their previous bits
//! verbatim.
//!
//! The path is deliberately conservative. It applies only when the WHERE
//! clause is an AND-tree whose every conjunct takes a typed loop that
//! cannot fail (column-vs-constant comparisons with matching types, typed
//! `BETWEEN`, `IS NULL` on a column) and at least one conjunct is a
//! shiftable range. Anything else returns `None` and the caller falls back
//! to full execution — so the delta path can never produce an error or a
//! row set that full execution would not. Debug builds additionally
//! recompute the full mask and assert bit-for-bit agreement, which the
//! conformance corpus replays continuously; release parity is covered by
//! the `columnar-parity` oracle's delta arm.

use crate::catalog::Catalog;
use crate::columnar::{block_count, block_range, BitMask, ColumnData};
use crate::error::Result;
use crate::exec_columnar::{prepare, Prepared};
use crate::result::ResultSet;
use crate::value::Value;
use pi2_sql::{BinaryOp, Expr, Literal, Query};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Upper bound on cached templates per [`DeltaCache`]; cleared wholesale
/// when full (a session interacts with a handful of chart queries at a
/// time, so 32 templates is generous).
const CACHE_CAP: usize = 32;

/// Per-session cache of selection masks keyed by query template, enabling
/// [`Catalog::execute_delta`] to recompute only the blocks a gesture's
/// bound shift can affect.
#[derive(Debug, Default)]
pub struct DeltaCache {
    entries: HashMap<u64, Entry>,
}

#[derive(Debug)]
struct Entry {
    /// Catalog version the mask was computed against.
    version: u64,
    /// The shiftable conjuncts' bounds at the time of the last dispatch,
    /// in WHERE-traversal order.
    bounds: Vec<(f64, f64)>,
    /// The full selection mask of the last dispatch.
    mask: BitMask,
}

impl DeltaCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached query templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no templates are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn insert(&mut self, key: u64, entry: Entry) {
        if self.entries.len() >= CACHE_CAP && !self.entries.contains_key(&key) {
            self.entries.clear();
        }
        self.entries.insert(key, entry);
    }
}

/// How a delta execution was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// No cached mask for this template yet (or the catalog changed): the
    /// mask was computed in full and cached for the next gesture.
    Seeded,
    /// The cached mask was reused; only `dirty_blocks` of `total_blocks`
    /// were re-evaluated.
    Incremental {
        /// Blocks whose bits were recomputed.
        dirty_blocks: usize,
        /// Total zone-map blocks in the table.
        total_blocks: usize,
    },
}

/// One shiftable `BETWEEN` conjunct: which column it ranges over and its
/// current bounds, encoded as f64 exactly as the typed loops compare them
/// (numerics directly, dates by day number).
struct Shift {
    col: usize,
    lo: f64,
    hi: f64,
}

struct Analysis {
    /// Structural hash of the query with shiftable bounds erased.
    key: u64,
    shifts: Vec<Shift>,
}

/// Try to execute `q` incrementally. `None` means the query is outside the
/// delta fragment (caller falls back to full execution); `Some` carries the
/// result — byte-identical to full execution — and how it was obtained.
pub(crate) fn execute(
    catalog: &Catalog,
    q: &Query,
    cache: &mut DeltaCache,
) -> Option<(Result<ResultSet>, DeltaOutcome)> {
    let p = prepare(catalog, q)?;
    let analysis = analyze(q, &p)?;
    let ctx = p.ctx(catalog);
    let version = catalog.version();
    let len = p.table.len;
    let total_blocks = block_count(len);

    let hit = cache
        .entries
        .get(&analysis.key)
        .filter(|e| {
            e.version == version && e.mask.len() == len && e.bounds.len() == analysis.shifts.len()
        })
        .map(|e| (e.bounds.clone(), e.mask.clone()));

    let bounds: Vec<(f64, f64)> = analysis.shifts.iter().map(|s| (s.lo, s.hi)).collect();
    let Some((old_bounds, mut mask)) = hit else {
        let mask = match ctx.compute_mask() {
            Ok(m) => m,
            Err(e) => return Some((Err(e), DeltaOutcome::Seeded)),
        };
        let result = ctx.run_with_mask(q, &mask);
        cache.insert(analysis.key, Entry { version, bounds, mask });
        return Some((result, DeltaOutcome::Seeded));
    };

    let dirty = dirty_blocks(&p, &analysis.shifts, &old_bounds, total_blocks);
    for &b in &dirty {
        mask.fill_range(block_range(b, len), true);
    }
    if let Err(e) = ctx.refine_blocks(&mut mask, &dirty) {
        return Some((
            Err(e),
            DeltaOutcome::Incremental { dirty_blocks: dirty.len(), total_blocks },
        ));
    }
    #[cfg(debug_assertions)]
    if let Ok(full) = ctx.compute_mask() {
        debug_assert!(mask == full, "delta-recomputed mask diverged from full recomputation");
    }
    let result = ctx.run_with_mask(q, &mask);
    let outcome = DeltaOutcome::Incremental { dirty_blocks: dirty.len(), total_blocks };
    cache.insert(analysis.key, Entry { version, bounds, mask });
    Some((result, outcome))
}

/// Classify the WHERE clause and build the template key. `None` when the
/// query is outside the delta fragment.
fn analyze(q: &Query, p: &Prepared) -> Option<Analysis> {
    q.where_clause.as_ref()?;
    let mut template = q.clone();
    let mut shifts = Vec::new();
    let w = template.where_clause.as_mut()?;
    if !classify(w, p, &mut shifts) || shifts.is_empty() {
        return None;
    }
    Some(Analysis { key: template.structural_hash(), shifts })
}

/// Walk an AND-tree of conjuncts, erasing shiftable bounds in place (the
/// expression becomes the cache template) and recording their values.
/// Returns false as soon as any conjunct falls outside the typed,
/// cannot-error fragment.
fn classify(e: &mut Expr, p: &Prepared, shifts: &mut Vec<Shift>) -> bool {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            classify(left, p, shifts) && classify(right, p, shifts)
        }
        Expr::Between { expr, low, high, negated: false } => {
            let Expr::Column(c) = &**expr else { return false };
            let Some(col) = p.resolve_column(c) else { return false };
            let (Expr::Literal(l), Expr::Literal(h)) = (&**low, &**high) else {
                return false;
            };
            let (lo, hi) = (Value::from_literal(l), Value::from_literal(h));
            let bounds = match (&p.table.columns[col].data, &lo, &hi) {
                (ColumnData::Int(_) | ColumnData::Float(_), _, _)
                    if lo.data_type().is_numeric() && hi.data_type().is_numeric() =>
                {
                    match (lo.as_f64(), hi.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => return false,
                    }
                }
                (ColumnData::Date(_), Value::Date(a), Value::Date(b)) => (a.0 as f64, b.0 as f64),
                _ => return false,
            };
            shifts.push(Shift { col, lo: bounds.0, hi: bounds.1 });
            **low = Expr::Literal(Literal::Null);
            **high = Expr::Literal(Literal::Null);
            true
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let (c, lit) = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(l)) | (Expr::Literal(l), Expr::Column(c)) => (c, l),
                _ => return false,
            };
            let Some(col) = p.resolve_column(c) else { return false };
            let k = Value::from_literal(lit);
            // A NULL constant clears the mask on every column type without
            // evaluating rows; otherwise the (column, constant) pair must
            // have a typed loop, which cannot error.
            k.is_null()
                || matches!(
                    (&p.table.columns[col].data, &k),
                    (ColumnData::Int(_), Value::Int(_) | Value::Float(_))
                        | (ColumnData::Float(_), Value::Int(_) | Value::Float(_))
                        | (ColumnData::Str(_), Value::Str(_))
                        | (ColumnData::Date(_), Value::Date(_))
                        | (ColumnData::Bool(_), Value::Bool(_))
                )
        }
        // IS [NOT] NULL on a bare column never errors.
        Expr::IsNull { expr, .. } => {
            matches!(&**expr, Expr::Column(c) if p.resolve_column(c).is_some())
        }
        _ => false,
    }
}

/// Blocks whose rows' membership can differ between the old and new bounds
/// of any shiftable conjunct: a row changes membership only if its value
/// lies in the closed hull of a moving bound, so a block is dirty exactly
/// when its zone range intersects one of those hulls.
fn dirty_blocks(
    p: &Prepared,
    shifts: &[Shift],
    old_bounds: &[(f64, f64)],
    total_blocks: usize,
) -> Vec<usize> {
    let fmin = |a: f64, b: f64| if a.total_cmp(&b) == Ordering::Greater { b } else { a };
    let fmax = |a: f64, b: f64| if a.total_cmp(&b) == Ordering::Less { b } else { a };
    let le = |a: f64, b: f64| a.total_cmp(&b) != Ordering::Greater;
    let intersects = |z: (f64, f64), h: (f64, f64)| le(z.0, h.1) && le(h.0, z.1);

    let mut dirty = vec![false; total_blocks];
    for (s, &(lo0, hi0)) in shifts.iter().zip(old_bounds) {
        let lo_hull = (fmin(lo0, s.lo), fmax(lo0, s.lo));
        let hi_hull = (fmin(hi0, s.hi), fmax(hi0, s.hi));
        if lo_hull.0.total_cmp(&lo_hull.1) == Ordering::Equal
            && hi_hull.0.total_cmp(&hi_hull.1) == Ordering::Equal
        {
            continue; // bounds unchanged for this conjunct
        }
        let zones = &p.table.columns[s.col].zones;
        for (b, z) in zones.iter().enumerate() {
            if dirty[b] {
                continue;
            }
            // An all-NULL block has no rows whose membership can change.
            let Some((zmin, zmax)) = &z.min_max else { continue };
            match (zmin.as_f64(), zmax.as_f64()) {
                (Some(zmin), Some(zmax)) => {
                    if intersects((zmin, zmax), lo_hull) || intersects((zmin, zmax), hi_hull) {
                        dirty[b] = true;
                    }
                }
                // Un-summarizable zone values: be conservative.
                _ => dirty[b] = true,
            }
        }
    }
    dirty.iter().enumerate().filter_map(|(b, &d)| d.then_some(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use crate::value::DataType;

    fn catalog(rows: i64) -> Catalog {
        let mut t = Table::builder("t")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .column("c", DataType::Str)
            .build();
        for i in 0..rows {
            t.push_row(vec![
                Value::Int(i),
                Value::Float(i as f64 / 2.0),
                Value::str(if i % 3 == 0 { "a" } else { "b" }),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register(t);
        c
    }

    fn q(sql: &str) -> Query {
        pi2_sql::parse_query(sql).unwrap()
    }

    #[test]
    fn seed_then_incremental_pan_matches_full() {
        let c = catalog(20_000);
        let mut cache = DeltaCache::new();
        let q1 = q("SELECT x, y FROM t WHERE x BETWEEN 100 AND 200 AND c = 'a'");
        let (r1, o1) = execute(&c, &q1, &mut cache).expect("delta applies");
        assert_eq!(o1, DeltaOutcome::Seeded);
        assert_eq!(r1.unwrap(), c.execute_reference(&q1).unwrap());

        // Pan: shift the window; only boundary blocks should be dirty.
        let q2 = q("SELECT x, y FROM t WHERE x BETWEEN 150 AND 250 AND c = 'a'");
        let (r2, o2) = execute(&c, &q2, &mut cache).expect("delta applies");
        let DeltaOutcome::Incremental { dirty_blocks, total_blocks } = o2 else {
            panic!("expected incremental, got {o2:?}");
        };
        assert!(dirty_blocks < total_blocks, "{dirty_blocks}/{total_blocks}");
        assert_eq!(r2.unwrap(), c.execute_reference(&q2).unwrap());
    }

    #[test]
    fn zoom_and_repeat_dispatches_stay_exact() {
        let c = catalog(10_000);
        let mut cache = DeltaCache::new();
        let windows = [(0, 9999), (2000, 7999), (3000, 6999), (3000, 6999), (0, 9999)];
        for (lo, hi) in windows {
            let query = q(&format!("SELECT count(*) AS n FROM t WHERE x BETWEEN {lo} AND {hi}"));
            let (r, _) = execute(&c, &query, &mut cache).expect("delta applies");
            assert_eq!(r.unwrap(), c.execute_reference(&query).unwrap(), "window {lo}..{hi}");
        }
    }

    #[test]
    fn inapplicable_shapes_return_none() {
        let c = catalog(100);
        let mut cache = DeltaCache::new();
        // No shiftable range.
        assert!(execute(&c, &q("SELECT x FROM t WHERE c = 'a'"), &mut cache).is_none());
        // OR at the top level.
        assert!(execute(&c, &q("SELECT x FROM t WHERE x BETWEEN 1 AND 5 OR c = 'a'"), &mut cache)
            .is_none());
        // Expression bound.
        assert!(execute(&c, &q("SELECT x FROM t WHERE x BETWEEN 1 AND y"), &mut cache).is_none());
        // No WHERE at all.
        assert!(execute(&c, &q("SELECT x FROM t"), &mut cache).is_none());
    }

    #[test]
    fn catalog_version_change_invalidates_entries() {
        let mut c = catalog(5_000);
        let mut cache = DeltaCache::new();
        let q1 = q("SELECT count(*) AS n FROM t WHERE x BETWEEN 10 AND 20");
        let (_, o1) = execute(&c, &q1, &mut cache).unwrap();
        assert_eq!(o1, DeltaOutcome::Seeded);

        // Re-register the table: different data, same name.
        let mut t = Table::builder("t").column("x", DataType::Int).build();
        for i in 0..50 {
            t.push_row(vec![Value::Int(i)]).unwrap();
        }
        c.register(t);
        let q2 = q("SELECT count(*) AS n FROM t WHERE x BETWEEN 10 AND 25");
        let (r2, o2) = execute(&c, &q2, &mut cache).unwrap();
        assert_eq!(o2, DeltaOutcome::Seeded, "stale mask must not be reused");
        assert_eq!(r2.unwrap(), c.execute_reference(&q2).unwrap());
    }
}
