//! Expression evaluation with SQL three-valued logic, name scopes, and
//! correlated-subquery support.
//!
//! Evaluation happens inside an [`ExecCtx`], which also owns the query
//! executor (see [`crate::exec`]) and a memo table for correlated
//! subqueries keyed on the subquery's free variables.

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::functions::eval_scalar;
use crate::result::ResultSet;
use crate::value::{DataType, Value};
use pi2_sql::{is_aggregate_function, BinaryOp, ColumnRef, Expr, Query, UnaryOp};
use std::borrow::Cow;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

/// Memo of subquery executions, keyed by (query hash, free-variable values).
type SubqueryMemo = HashMap<(u64, Vec<Value>), Rc<ResultSet>>;

/// One field of an intermediate relation: the visible qualifier (table name
/// or alias), the column name, and its type.
#[derive(Debug, Clone)]
pub struct RelField {
    /// Qualifier.
    pub qualifier: Option<String>,
    /// The name.
    pub name: String,
    /// The column's data type.
    pub data_type: DataType,
}

/// The schema of an intermediate relation during execution.
#[derive(Debug, Clone, Default)]
pub struct RelSchema {
    /// The fields, in order.
    pub fields: Vec<RelField>,
}

impl RelSchema {
    /// Resolve a column reference. `Ok(Some(i))` is the field index,
    /// `Ok(None)` means "not visible here" (the caller tries the outer
    /// scope), and `Err` means the reference is ambiguous.
    pub fn resolve(&self, col: &ColumnRef) -> Result<Option<usize>> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            let matches = match &col.table {
                Some(q) => {
                    f.qualifier.as_deref().is_some_and(|fq| fq.eq_ignore_ascii_case(q))
                        && f.name.eq_ignore_ascii_case(&col.column)
                }
                None => f.name.eq_ignore_ascii_case(&col.column),
            };
            if matches {
                if found.is_some() {
                    return Err(EngineError::AmbiguousColumn(col.to_string()));
                }
                found = Some(i);
            }
        }
        Ok(found)
    }
}

/// Values of the aggregate calls computed for one group, keyed by the
/// structural hash of the aggregate expression.
#[derive(Debug, Default)]
pub struct AggBindings {
    /// Map.
    pub map: HashMap<u64, Value>,
}

/// A name-resolution scope: the current relation schema and row, an optional
/// parent scope (for correlated subqueries), and optional aggregate
/// bindings (when evaluating post-aggregation expressions).
pub struct Scope<'a> {
    /// The output schema.
    pub schema: &'a RelSchema,
    /// Row.
    pub row: &'a [Value],
    /// Parent.
    pub parent: Option<&'a Scope<'a>>,
    /// Aggs.
    pub aggs: Option<&'a AggBindings>,
}

impl<'a> Scope<'a> {
    /// A scope with no parent and no aggregates.
    pub fn base(schema: &'a RelSchema, row: &'a [Value]) -> Self {
        Scope { schema, row, parent: None, aggs: None }
    }

    fn lookup(&self, col: &ColumnRef) -> Result<Value> {
        self.lookup_ref(col).cloned()
    }

    /// Resolve a column to a borrowed value, walking parent scopes. The
    /// returned borrow lives as long as the scope's row — this is what lets
    /// the executor's hot loops evaluate predicates without cloning.
    pub(crate) fn lookup_ref(&self, col: &ColumnRef) -> Result<&'a Value> {
        match self.schema.resolve(col)? {
            Some(i) => Ok(&self.row[i]),
            None => match self.parent {
                Some(p) => p.lookup_ref(col),
                None => Err(EngineError::UnknownColumn(col.to_string())),
            },
        }
    }
}

/// Execution context: the catalog plus per-execution caches.
pub struct ExecCtx<'c> {
    /// Catalog.
    pub catalog: &'c Catalog,
    /// Memo for subquery executions, keyed by (query hash, free-var values).
    pub(crate) memo: RefCell<SubqueryMemo>,
    /// Cache of each subquery's free variables, keyed by query hash.
    pub(crate) free_vars: RefCell<HashMap<u64, Rc<Vec<ColumnRef>>>>,
    /// Resource limits copied from the catalog at context creation.
    pub(crate) limits: crate::catalog::ExecLimits,
    /// When this execution started (for the wall-clock limit).
    pub(crate) started: std::time::Instant,
}

impl<'c> ExecCtx<'c> {
    /// Create a fresh context for one top-level query execution.
    pub fn new(catalog: &'c Catalog) -> Self {
        Self {
            catalog,
            memo: RefCell::new(HashMap::new()),
            free_vars: RefCell::new(HashMap::new()),
            limits: catalog.limits(),
            started: std::time::Instant::now(),
        }
    }

    /// Enforce the catalog's [`crate::catalog::ExecLimits`] against the
    /// number of rows an operator has materialized so far. Called from
    /// the executor's row-producing loops; the wall-clock check is
    /// amortized to every 256th row to keep the common case to a compare.
    pub(crate) fn check_limits(&self, rows: usize) -> Result<()> {
        enforce_limits(&self.limits, self.started, rows)
    }

    /// Evaluate `expr` in `scope`, borrowing the result from the row when
    /// the expression is a plain column reference. Hot loops (WHERE
    /// filtering, comparisons, IN lists) go through this to avoid cloning a
    /// `Value` — potentially a heap string — per row per column access.
    pub(crate) fn eval_ref<'s>(&self, expr: &Expr, scope: &Scope<'s>) -> Result<Cow<'s, Value>> {
        match expr {
            Expr::Column(c) => scope.lookup_ref(c).map(Cow::Borrowed),
            other => self.eval(other, scope).map(Cow::Owned),
        }
    }

    /// Evaluate `expr` in `scope`.
    pub fn eval(&self, expr: &Expr, scope: &Scope<'_>) -> Result<Value> {
        match expr {
            Expr::Column(c) => scope.lookup(c),
            Expr::Literal(l) => Ok(Value::from_literal(l)),
            Expr::Wildcard => Err(EngineError::Unsupported("bare * outside count(*)".into())),
            Expr::Unary { op, expr } => {
                let v = self.eval_ref(expr, scope)?;
                match op {
                    UnaryOp::Not => Ok(match &*v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(EngineError::TypeMismatch(format!("NOT {other}")));
                        }
                    }),
                    UnaryOp::Neg => match &*v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(v) => Ok(Value::Int(-v)),
                        Value::Float(v) => Ok(Value::Float(-v)),
                        other => Err(EngineError::TypeMismatch(format!("-{other}"))),
                    },
                }
            }
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right, scope),
            Expr::Function { name, args, distinct } => {
                if is_aggregate_function(name) {
                    let key = expr.structural_hash();
                    if let Some(aggs) = scope.aggs {
                        if let Some(v) = aggs.map.get(&key) {
                            return Ok(v.clone());
                        }
                    }
                    // A correlated reference to an outer aggregate context.
                    let mut cur = scope.parent;
                    while let Some(s) = cur {
                        if let Some(aggs) = s.aggs {
                            if let Some(v) = aggs.map.get(&key) {
                                return Ok(v.clone());
                            }
                        }
                        cur = s.parent;
                    }
                    Err(EngineError::Unsupported(format!(
                        "aggregate {name}(..) used outside an aggregating query"
                    )))
                } else {
                    let _ = distinct;
                    let vals: Vec<Value> =
                        args.iter().map(|a| self.eval(a, scope)).collect::<Result<_>>()?;
                    eval_scalar(name, &vals)
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                let op_val = operand.as_ref().map(|o| self.eval_ref(o, scope)).transpose()?;
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(ov) => {
                            let wv = self.eval_ref(when, scope)?;
                            cmp_values(ov, &wv)? == Some(Ordering::Equal)
                        }
                        None => self.eval_ref(when, scope)?.is_truthy(),
                    };
                    if hit {
                        return self.eval(then, scope);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, scope),
                    None => Ok(Value::Null),
                }
            }
            Expr::InList { expr, list, negated } => {
                let needle = self.eval_ref(expr, scope)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = self.eval_ref(item, scope)?;
                    match cmp_values(&needle, &v)? {
                        None => saw_null = true,
                        Some(Ordering::Equal) => {
                            return Ok(Value::Bool(!negated));
                        }
                        Some(_) => {}
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::InSubquery { expr, subquery, negated } => {
                let needle = self.eval_ref(expr, scope)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let result = self.exec_subquery(subquery, scope)?;
                if result.schema.len() != 1 {
                    return Err(EngineError::ScalarSubquery(format!(
                        "IN subquery returns {} columns",
                        result.schema.len()
                    )));
                }
                let mut saw_null = false;
                for row in &result.rows {
                    match cmp_values(&needle, &row[0])? {
                        None => saw_null = true,
                        Some(Ordering::Equal) => return Ok(Value::Bool(!negated)),
                        Some(_) => {}
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Exists { subquery, negated } => {
                let result = self.exec_subquery(subquery, scope)?;
                Ok(Value::Bool(result.rows.is_empty() == *negated))
            }
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval_ref(expr, scope)?;
                let lo = self.eval_ref(low, scope)?;
                let hi = self.eval_ref(high, scope)?;
                let ge = three_valued_cmp(&v, &lo, |o| o != Ordering::Less)?;
                let le = three_valued_cmp(&v, &hi, |o| o != Ordering::Greater)?;
                let both = and3(ge, le);
                Ok(match both {
                    None => Value::Null,
                    Some(b) => Value::Bool(b != *negated),
                })
            }
            Expr::ScalarSubquery(q) => {
                let result = self.exec_subquery(q, scope)?;
                if result.schema.len() != 1 {
                    return Err(EngineError::ScalarSubquery(format!(
                        "scalar subquery returns {} columns",
                        result.schema.len()
                    )));
                }
                match result.rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(result.rows[0][0].clone()),
                    n => Err(EngineError::ScalarSubquery(format!(
                        "scalar subquery returned {n} rows"
                    ))),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval_ref(expr, scope)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval_ref(expr, scope)?;
                let p = self.eval_ref(pattern, scope)?;
                match (&*v, &*p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(p, s) != *negated)),
                    (a, b) => Err(EngineError::TypeMismatch(format!("{a} LIKE {b}"))),
                }
            }
        }
    }

    fn eval_binary(
        &self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        scope: &Scope<'_>,
    ) -> Result<Value> {
        // AND/OR use SQL three-valued logic with short-circuiting where the
        // truth value is already determined.
        match op {
            BinaryOp::And => {
                let lv = self.eval_ref(left, scope)?;
                let l = to_bool3(&lv)?;
                if l == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let rv = self.eval_ref(right, scope)?;
                let r = to_bool3(&rv)?;
                return Ok(match and3(l, r) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                });
            }
            BinaryOp::Or => {
                let lv = self.eval_ref(left, scope)?;
                let l = to_bool3(&lv)?;
                if l == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let rv = self.eval_ref(right, scope)?;
                let r = to_bool3(&rv)?;
                return Ok(match or3(l, r) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                });
            }
            _ => {}
        }
        let l = self.eval_ref(left, scope)?;
        let r = self.eval_ref(right, scope)?;
        if op.is_comparison() {
            return Ok(match cmp_values(&l, &r)? {
                None => Value::Null,
                Some(ord) => Value::Bool(apply_comparison(op, ord)),
            });
        }
        arithmetic(&l, op, &r)
    }

    /// Execute a subquery with memoization on its free variables.
    pub(crate) fn exec_subquery(&self, q: &Query, outer: &Scope<'_>) -> Result<Rc<ResultSet>> {
        let qhash = q.structural_hash();
        let free = {
            let mut cache = self.free_vars.borrow_mut();
            cache
                .entry(qhash)
                .or_insert_with(|| Rc::new(crate::exec::free_columns(q, self.catalog)))
                .clone()
        };
        // Evaluate the free variables in the outer scope; if any fails,
        // fall back to unmemoized execution (the executor will surface the
        // real error, or the reference resolves through a path the analysis
        // didn't model).
        let mut key_vals = Vec::with_capacity(free.len());
        let mut keyable = true;
        for col in free.iter() {
            match outer.lookup(col) {
                Ok(v) => key_vals.push(v),
                Err(_) => {
                    keyable = false;
                    break;
                }
            }
        }
        if keyable {
            let key = (qhash, key_vals);
            if let Some(hit) = self.memo.borrow().get(&key) {
                return Ok(hit.clone());
            }
            let result = Rc::new(self.execute_query(q, Some(outer))?);
            self.memo.borrow_mut().insert(key, result.clone());
            Ok(result)
        } else {
            Ok(Rc::new(self.execute_query(q, Some(outer))?))
        }
    }
}

/// SQL comparison: `None` if either side is NULL, the ordering otherwise.
/// Numeric types compare across Int/Float; other types must match.
pub fn cmp_values(a: &Value, b: &Value) -> Result<Option<Ordering>> {
    use Value::*;
    Ok(Some(match (a, b) {
        (Null, _) | (_, Null) => return Ok(None),
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x.total_cmp(y),
        (Int(x), Float(y)) => (*x as f64).total_cmp(y),
        (Float(x), Int(y)) => x.total_cmp(&(*y as f64)),
        (Str(x), Str(y)) => x.cmp(y),
        (Date(x), Date(y)) => x.cmp(y),
        (x, y) => {
            return Err(EngineError::TypeMismatch(format!(
                "cannot compare {} with {}",
                x.data_type(),
                y.data_type()
            )))
        }
    }))
}

/// Wall-clock / row-count limit enforcement shared by the reference and
/// columnar executors (see [`ExecCtx::check_limits`] for the cadence).
pub(crate) fn enforce_limits(
    limits: &crate::catalog::ExecLimits,
    started: std::time::Instant,
    rows: usize,
) -> Result<()> {
    if limits.max_rows.is_some_and(|m| rows > m) {
        return Err(EngineError::ResourceExhausted(format!(
            "row limit exceeded: materialized {rows} rows (limit {})",
            limits.max_rows.unwrap_or(0)
        )));
    }
    if let Some(timeout) = limits.timeout {
        if rows.is_multiple_of(256) && started.elapsed() >= timeout {
            return Err(EngineError::ResourceExhausted(format!(
                "query timeout: exceeded {timeout:?}"
            )));
        }
    }
    Ok(())
}

/// Map a comparison operator over an ordering; `op` must be a comparison.
pub(crate) fn apply_comparison(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

pub(crate) fn three_valued_cmp(
    a: &Value,
    b: &Value,
    f: impl Fn(Ordering) -> bool,
) -> Result<Option<bool>> {
    Ok(cmp_values(a, b)?.map(f))
}

pub(crate) fn to_bool3(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::TypeMismatch(format!("expected boolean, got {other}"))),
    }
}

pub(crate) fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub(crate) fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

pub(crate) fn arithmetic(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    use Value::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    if op == BinaryOp::Concat {
        return Ok(Str(format!("{l}{r}")));
    }
    // Date arithmetic: Date ± Int, Date - Date.
    match (&l, op, &r) {
        (Date(d), BinaryOp::Add, Int(n)) | (Int(n), BinaryOp::Add, Date(d)) => {
            return Ok(Date(d.plus_days(*n as i32)));
        }
        (Date(d), BinaryOp::Sub, Int(n)) => return Ok(Date(d.plus_days(-(*n as i32)))),
        (Date(a), BinaryOp::Sub, Date(b)) => return Ok(Int((a.0 - b.0) as i64)),
        _ => {}
    }
    match (&l, &r) {
        (Int(a), Int(b)) => {
            let (a, b) = (*a, *b);
            Ok(match op {
                BinaryOp::Add => Int(a.wrapping_add(b)),
                BinaryOp::Sub => Int(a.wrapping_sub(b)),
                BinaryOp::Mul => Int(a.wrapping_mul(b)),
                // Division by zero yields NULL, matching SQLite.
                BinaryOp::Div => {
                    if b == 0 {
                        Null
                    } else {
                        Int(a.wrapping_div(b))
                    }
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        Null
                    } else {
                        Int(a.wrapping_rem(b))
                    }
                }
                other => return Err(EngineError::TypeMismatch(format!("{a} {} {b}", other.sql()))),
            })
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(EngineError::TypeMismatch(format!(
                    "{} {} {}",
                    l.data_type(),
                    op.sql(),
                    r.data_type()
                )));
            };
            Ok(match op {
                BinaryOp::Add => Float(a + b),
                BinaryOp::Sub => Float(a - b),
                BinaryOp::Mul => Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Null
                    } else {
                        Float(a / b)
                    }
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        Null
                    } else {
                        Float(a % b)
                    }
                }
                other => return Err(EngineError::TypeMismatch(format!("{a} {} {b}", other.sql()))),
            })
        }
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches one character.
/// Case-sensitive, as in standard SQL.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn go(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Try consuming 0..=len characters.
                (0..=t.len()).any(|k| go(&p[1..], &t[k..]))
            }
            Some('_') => !t.is_empty() && go(&p[1..], &t[1..]),
            Some(c) => t.first() == Some(c) && go(&p[1..], &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    go(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like_match("New%", "New York"));
        assert!(!like_match("New%", "Vermont"));
        assert!(like_match("%ork", "New York"));
        assert!(like_match("%o%", "Florida"));
        assert!(like_match("F_orida", "Florida"));
        assert!(!like_match("F_orida", "Fllorida"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("abc", "abc"));
    }

    #[test]
    fn three_valued_tables() {
        assert_eq!(and3(Some(true), None), None);
        assert_eq!(and3(Some(false), None), Some(false));
        assert_eq!(or3(Some(true), None), Some(true));
        assert_eq!(or3(Some(false), None), None);
        assert_eq!(or3(None, None), None);
    }

    #[test]
    fn arithmetic_int_division_truncates() {
        assert_eq!(
            arithmetic(&Value::Int(7), BinaryOp::Div, &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(arithmetic(&Value::Int(7), BinaryOp::Div, &Value::Int(0)).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_mixed_is_float() {
        assert_eq!(
            arithmetic(&Value::Int(1), BinaryOp::Add, &Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn date_arithmetic() {
        let d = Value::date("2021-12-30");
        assert_eq!(
            arithmetic(&d, BinaryOp::Add, &Value::Int(3)).unwrap(),
            Value::date("2022-01-02")
        );
        assert_eq!(
            arithmetic(&Value::date("2022-01-02"), BinaryOp::Sub, &Value::date("2021-12-30"))
                .unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn concat_coerces() {
        assert_eq!(
            arithmetic(&Value::str("a"), BinaryOp::Concat, &Value::Int(1)).unwrap(),
            Value::str("a1")
        );
    }

    #[test]
    fn cmp_rejects_cross_type() {
        assert!(cmp_values(&Value::Int(1), &Value::str("1")).is_err());
        assert_eq!(cmp_values(&Value::Int(1), &Value::Null).unwrap(), None);
    }
}
