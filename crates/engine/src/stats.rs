//! Column statistics.
//!
//! Statistics drive two PI2 decisions: (1) visualization selection — a
//! nominal axis with 500 distinct values wants a different chart than one
//! with 5 — and (2) widget-domain generalization — an `ANY` over two
//! literals can widen to a slider spanning the column's full `[min, max]`
//! range (paper §2, "Tree Transformations").

use crate::schema::Field;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// How many distinct values are retained verbatim before a column's domain
/// is summarized by its range only.
pub const DISTINCT_SAMPLE_CAP: usize = 64;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// The name.
    pub name: String,
    /// The column's data type.
    pub data_type: DataType,
    /// Total rows, including NULLs.
    pub row_count: usize,
    /// Number of NULL values.
    pub null_count: usize,
    /// Number of distinct non-NULL values.
    pub distinct_count: usize,
    /// Minimum non-NULL value, if any.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if any.
    pub max: Option<Value>,
    /// The distinct values in sorted order, retained only while there are at
    /// most [`DISTINCT_SAMPLE_CAP`] of them.
    pub distinct_values: Option<Vec<Value>>,
}

impl ColumnStats {
    /// Compute statistics over an iterator of column values.
    pub fn compute<'a>(field: &Field, values: impl Iterator<Item = &'a Value>) -> Self {
        let mut row_count = 0;
        let mut null_count = 0;
        let mut distinct: BTreeSet<Value> = BTreeSet::new();
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for v in values {
            row_count += 1;
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if min.as_ref().is_none_or(|m| v < m) {
                min = Some(v.clone());
            }
            if max.as_ref().is_none_or(|m| v > m) {
                max = Some(v.clone());
            }
            distinct.insert(v.clone());
        }
        let distinct_count = distinct.len();
        let distinct_values =
            (distinct_count <= DISTINCT_SAMPLE_CAP).then(|| distinct.into_iter().collect());
        ColumnStats {
            name: field.name.clone(),
            data_type: field.data_type,
            row_count,
            null_count,
            distinct_count,
            min,
            max,
            distinct_values,
        }
    }

    /// True when the column looks categorical: few distinct values relative
    /// to a nominal type, or any type with a very small domain.
    pub fn is_low_cardinality(&self) -> bool {
        self.distinct_count <= 20
    }
}

/// Zone-map effectiveness counters for the columnar executor, accumulated
/// across every typed predicate loop run against a catalog (shared by all
/// of its clones, like the exec-path tallies). `blocks_pruned` counts
/// blocks decided wholesale from their zone map — cleared without reading
/// data, or accepted without a scan — while `blocks_scanned` counts blocks
/// that had to be walked row by row.
#[derive(Debug, Default)]
pub struct ScanStats {
    blocks_scanned: AtomicU64,
    blocks_pruned: AtomicU64,
}

impl ScanStats {
    /// Record one predicate loop's block tallies.
    pub fn record(&self, scanned: u64, pruned: u64) {
        if scanned > 0 {
            self.blocks_scanned.fetch_add(scanned, Ordering::Relaxed);
        }
        if pruned > 0 {
            self.blocks_pruned.fetch_add(pruned, Ordering::Relaxed);
        }
    }

    /// Blocks walked row by row.
    pub fn blocks_scanned(&self) -> u64 {
        self.blocks_scanned.load(Ordering::Relaxed)
    }

    /// Blocks decided from their zone map alone.
    pub fn blocks_pruned(&self) -> u64 {
        self.blocks_pruned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field {
        Field::new("x", DataType::Int)
    }

    #[test]
    fn computes_min_max_distinct() {
        let vals = [Value::Int(3), Value::Int(1), Value::Null, Value::Int(3)];
        let s = ColumnStats::compute(&field(), vals.iter());
        assert_eq!(s.row_count, 4);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 2);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(3)));
        assert_eq!(s.distinct_values, Some(vec![Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::compute(&field(), std::iter::empty());
        assert_eq!(s.row_count, 0);
        assert!(s.min.is_none());
        assert_eq!(s.distinct_values, Some(vec![]));
    }

    #[test]
    fn caps_distinct_values() {
        let vals: Vec<Value> = (0..200).map(Value::Int).collect();
        let s = ColumnStats::compute(&field(), vals.iter());
        assert_eq!(s.distinct_count, 200);
        assert!(s.distinct_values.is_none());
        assert!(!s.is_low_cardinality());
    }
}
