#![warn(missing_docs)]

//! # pi2-mcts
//!
//! A generic, fully deterministic (seeded) Monte-Carlo Tree Search with
//! UCB1 selection (UCT, after Coulom [8] / Kocsis–Szepesvári), plus a
//! greedy hill-climbing searcher used as an ablation baseline.
//!
//! PI2 uses MCTS to search the space of DiffTree forests (paper §2 step ④:
//! "the space of possible interfaces is enormous, so we solve this problem
//! using Monte Carlo Tree Search; MCTS balances exploitation of good
//! explored states with exploration of new states"). This crate knows
//! nothing about DiffTrees: the search problem is abstracted behind
//! [`SearchProblem`], and `pi2-core` instantiates it.
//!
//! ## Parallel search
//!
//! [`mcts_parallel`] runs **root-parallel UCT**: `config.workers`
//! independent trees grow from the same root on scoped threads, each with
//! its own deterministically derived seed, sharing one lock-sharded
//! [`SharedRewardCache`] so no thread re-evaluates a state any other
//! thread has already scored. Because rewards are pure functions of the
//! state, the cache can only short-circuit recomputation — never change a
//! value — so each worker's trajectory is bit-for-bit independent of
//! thread interleaving, and the merged result is deterministic for a
//! fixed `(seed, workers)` pair. Worker 0 uses `config.seed` verbatim,
//! which makes `workers = 1` reproduce the sequential [`mcts`] exactly.
//!
//! ```
//! use pi2_mcts::{mcts, MctsConfig, SearchProblem};
//!
//! struct Climb;
//! impl SearchProblem for Climb {
//!     type State = i32;
//!     type Action = i32;
//!     fn initial(&self) -> i32 { 0 }
//!     fn actions(&self, s: &i32) -> Vec<i32> { if *s < 5 { vec![1] } else { vec![] } }
//!     fn apply(&self, s: &i32, a: &i32) -> Option<i32> { Some(s + a) }
//!     fn reward(&self, s: &i32) -> f64 { *s as f64 }
//!     fn state_key(&self, s: &i32) -> u64 { *s as u64 }
//! }
//! let (best, stats) = mcts(&Climb, &MctsConfig { iterations: 50, ..Default::default() });
//! assert_eq!(best, 5);
//! assert_eq!(stats.best_reward, 5.0);
//! ```

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A search problem over an implicit graph of states.
pub trait SearchProblem {
    /// State.
    type State: Clone;
    /// Action.
    type Action: Clone;

    /// The root state.
    fn initial(&self) -> Self::State;
    /// Actions applicable in `state`.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;
    /// Apply an action; `None` if it no longer applies.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;
    /// Reward of a state (higher is better). Must be a pure function of
    /// the state: the searchers memoize it by [`SearchProblem::state_key`],
    /// and the parallel searcher shares those memos across threads.
    fn reward(&self, state: &Self::State) -> f64;
    /// A collision-resistant key identifying the state (for transposition
    /// detection and reward memoization).
    fn state_key(&self, state: &Self::State) -> u64;
}

/// Resource budget for one generation/search run. All limits are optional;
/// the default budget is unbounded and reproduces pre-budget behaviour.
///
/// When any limit trips, the search stops where it is and returns the
/// best state found so far — an *anytime* result — with
/// [`SearchStats::budget_exhausted`] set. The wall-clock deadline is also
/// checked between rollout steps, so a single slow rollout cannot overrun
/// the deadline by more than one reward evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationBudget {
    /// Wall-clock deadline for the whole search (shared by all workers).
    pub deadline: Option<Duration>,
    /// Cap on iterations per worker tree, applied on top of
    /// [`MctsConfig::iterations`] (the smaller of the two wins).
    pub max_iterations: Option<usize>,
    /// Cap on states materialized per worker tree — a coarse memory
    /// estimate, since retained states dominate the search's footprint.
    pub max_states: Option<usize>,
}

impl GenerationBudget {
    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        GenerationBudget { deadline: Some(deadline), ..Default::default() }
    }

    /// True when no limit is set (the default).
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.max_iterations.is_none() && self.max_states.is_none()
    }

    /// A stable fingerprint of the budget's limits, an input to search
    /// cache keys: two searches with different budgets may legitimately
    /// return different (anytime) results, so they must not share cached
    /// outcomes.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.deadline.map(|d| d.as_nanos()).hash(&mut h);
        self.max_iterations.hash(&mut h);
        self.max_states.hash(&mut h);
        h.finish()
    }
}

/// MCTS configuration.
#[derive(Debug, Clone)]
pub struct MctsConfig {
    /// Number of select–expand–simulate–backpropagate iterations per tree.
    pub iterations: usize,
    /// UCB1 exploration constant (√2 is the classic choice).
    pub exploration: f64,
    /// Maximum random-rollout depth from a newly expanded node.
    pub rollout_depth: usize,
    /// RNG seed: equal `(seed, workers)` pairs give identical searches.
    pub seed: u64,
    /// Cap on actions considered per node (keeps branching manageable);
    /// actions beyond the cap are sampled away deterministically.
    pub max_actions_per_node: usize,
    /// Number of root-parallel worker trees used by [`mcts_parallel`]
    /// (the sequential [`mcts`] ignores it). Defaults to the machine's
    /// available parallelism, capped at 8.
    pub workers: usize,
    /// Resource budget; unbounded by default. See [`GenerationBudget`].
    pub budget: GenerationBudget,
}

impl MctsConfig {
    /// A stable fingerprint of everything that determines the search
    /// outcome for a fixed problem: iteration budget, exploration constant
    /// (exact bit pattern), rollout depth, seed, action cap, worker count,
    /// and the nested [`GenerationBudget`]. Equal fingerprints mean the
    /// deterministic search returns bit-identical results, so the fleet
    /// generation cache keys on it.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.iterations.hash(&mut h);
        self.exploration.to_bits().hash(&mut h);
        self.rollout_depth.hash(&mut h);
        self.seed.hash(&mut h);
        self.max_actions_per_node.hash(&mut h);
        self.workers.hash(&mut h);
        self.budget.fingerprint().hash(&mut h);
        h.finish()
    }
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            exploration: std::f64::consts::SQRT_2,
            rollout_depth: 3,
            seed: 0,
            max_actions_per_node: 64,
            workers: default_workers(),
            budget: GenerationBudget::default(),
        }
    }
}

/// Available parallelism capped at 8 (the default for
/// [`MctsConfig::workers`]).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Derive the seed for a worker tree: worker 0 uses the configured seed
/// verbatim (so a single worker reproduces the sequential search), later
/// workers get SplitMix64-scrambled variants.
pub fn derive_worker_seed(seed: u64, worker: usize) -> u64 {
    if worker == 0 {
        return seed;
    }
    let mut z = seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const CACHE_SHARDS: usize = 16;

/// A lock-sharded transposition/reward cache shared by all worker trees.
///
/// Keys are [`SearchProblem::state_key`] values; entries are memoized
/// rewards. Lookups take one shard lock; computation happens outside the
/// lock, so two threads may race to evaluate the same state — both arrive
/// at the same pure value, so the race is benign and determinism of each
/// worker's trajectory is preserved.
#[derive(Debug)]
pub struct SharedRewardCache {
    shards: Vec<Mutex<HashMap<u64, f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SharedRewardCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedRewardCache {
    /// An empty cache.
    pub fn new() -> Self {
        SharedRewardCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, f64>> {
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % CACHE_SHARDS;
        &self.shards[idx]
    }

    /// Memoized reward for `key`, computing it with `f` on a miss.
    pub fn get_or_compute(&self, key: u64, f: impl FnOnce() -> f64) -> f64 {
        if let Some(&r) = self.shard(key).lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return r;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let r = f();
        self.shard(key).lock().insert(key, r);
        r
    }

    /// Number of distinct states cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to evaluate the reward.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Per-worker summary from a [`mcts_parallel`] run.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// The derived RNG seed this worker's tree used.
    pub seed: u64,
    /// Iterations this worker executed.
    pub iterations: usize,
    /// Nodes in this worker's tree at the end.
    pub tree_nodes: usize,
    /// Best reward this worker found.
    pub best_reward: f64,
    /// Wall-clock time this worker's tree took.
    pub elapsed: Duration,
    /// This worker's tree stopped early because the budget ran out.
    pub budget_exhausted: bool,
    /// This worker panicked; its partial tree was discarded and the other
    /// fields are zeroed. The run's result comes from the survivors.
    pub panicked: bool,
}

/// Statistics from one search run.
#[derive(Debug, Clone)]
pub struct SearchStats {
    /// Iterations actually executed (summed across workers).
    pub iterations: usize,
    /// Nodes in the search tree(s) at the end (summed across workers).
    pub tree_nodes: usize,
    /// Distinct states whose reward was evaluated.
    pub states_evaluated: usize,
    /// Best reward found.
    pub best_reward: f64,
    /// Iteration at which the winning worker first reached the best reward.
    pub best_at_iteration: usize,
    /// Best-so-far reward after each iteration of the winning worker
    /// (for convergence plots).
    pub reward_trace: Vec<f64>,
    /// Successful node expansions (summed across workers).
    pub expansions: usize,
    /// Histogram of rollout depths actually reached: index = depth,
    /// final slot = `rollout_depth` (summed across workers).
    pub rollout_depths: Vec<u64>,
    /// Reward-cache lookups answered without recomputing.
    pub cache_hits: u64,
    /// Reward-cache lookups that evaluated the reward function.
    pub cache_misses: u64,
    /// Per-worker summaries (one entry for sequential/greedy searches).
    pub workers: Vec<WorkerStats>,
    /// Some worker stopped early because the [`GenerationBudget`] ran out;
    /// the returned state is the best found before expiry (anytime result).
    pub budget_exhausted: bool,
    /// Number of workers that panicked (their trees were discarded).
    pub worker_panics: usize,
}

impl SearchStats {
    /// Fraction of reward lookups served from cache, if any were made.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }

    /// Ratio of the slowest worker's wall-clock to the fastest's — 1.0
    /// means perfectly balanced trees. `None` for empty worker lists.
    pub fn worker_balance(&self) -> Option<f64> {
        let min = self.workers.iter().map(|w| w.elapsed).min()?;
        let max = self.workers.iter().map(|w| w.elapsed).max()?;
        if min.is_zero() {
            return Some(1.0);
        }
        Some(max.as_secs_f64() / min.as_secs_f64())
    }
}

struct Node<A> {
    state_idx: usize,
    untried: Vec<A>,
    children: Vec<usize>,
    visits: f64,
    total_reward: f64,
}

/// Everything one worker tree produces; merged by [`mcts_parallel`].
struct TreeOutcome<S> {
    best_state: S,
    best_reward: f64,
    best_at: usize,
    trace: Vec<f64>,
    tree_nodes: usize,
    iterations: usize,
    expansions: usize,
    rollout_depths: Vec<u64>,
    elapsed: Duration,
    budget_exhausted: bool,
}

/// Grow one UCT tree from the root. All randomness comes from `seed`; all
/// reward evaluation goes through the shared cache. `deadline` is the
/// absolute expiry instant, computed once by the caller so every worker
/// shares the same wall-clock budget.
fn run_tree<P: SearchProblem>(
    problem: &P,
    config: &MctsConfig,
    seed: u64,
    cache: &SharedRewardCache,
    deadline: Option<Instant>,
) -> TreeOutcome<P::State> {
    let started = Instant::now();
    let mut rng = SmallRng::seed_from_u64(seed);
    let max_iterations = config.iterations.min(config.budget.max_iterations.unwrap_or(usize::MAX));
    let expired = |b: &mut bool| -> bool {
        let hit = deadline.is_some_and(|d| Instant::now() >= d);
        *b |= hit;
        hit
    };
    let mut budget_exhausted = max_iterations < config.iterations;

    let eval =
        |s: &P::State| -> f64 { cache.get_or_compute(problem.state_key(s), || problem.reward(s)) };

    let root_state = problem.initial();
    let mut best_state = root_state.clone();
    let mut best_reward = eval(&root_state);
    let mut best_at = 0;

    let mut states: Vec<P::State> = vec![root_state];
    let mut nodes: Vec<Node<P::Action>> = vec![Node {
        state_idx: 0,
        untried: capped_actions(problem, &states[0], config, &mut rng),
        children: Vec::new(),
        visits: 0.0,
        total_reward: 0.0,
    }];
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut trace = Vec::with_capacity(config.iterations);
    let mut expansions = 0usize;
    let mut rollout_depths = vec![0u64; config.rollout_depth + 1];

    let mut iterations_done = 0usize;
    for iter in 0..max_iterations {
        if expired(&mut budget_exhausted) {
            break;
        }
        if config.budget.max_states.is_some_and(|m| states.len() >= m) {
            budget_exhausted = true;
            break;
        }
        iterations_done = iter + 1;
        // ---- selection ----
        let mut current = 0usize;
        loop {
            let node = &nodes[current];
            if !node.untried.is_empty() || node.children.is_empty() {
                break;
            }
            // UCB1 over children.
            let ln_n = node.visits.max(1.0).ln();
            let mut best_child = node.children[0];
            let mut best_ucb = f64::NEG_INFINITY;
            for &c in &node.children {
                let ch = &nodes[c];
                let ucb = if ch.visits == 0.0 {
                    f64::INFINITY
                } else {
                    ch.total_reward / ch.visits + config.exploration * (ln_n / ch.visits).sqrt()
                };
                if ucb > best_ucb {
                    best_ucb = ucb;
                    best_child = c;
                }
            }
            current = best_child;
        }

        // ---- expansion ----
        let mut leaf = current;
        if !nodes[current].untried.is_empty() {
            let pick = rng.gen_range(0..nodes[current].untried.len());
            let action = nodes[current].untried.swap_remove(pick);
            let parent_state = states[nodes[current].state_idx].clone();
            if let Some(new_state) = problem.apply(&parent_state, &action) {
                let untried = capped_actions(problem, &new_state, config, &mut rng);
                states.push(new_state);
                let state_idx = states.len() - 1;
                nodes.push(Node {
                    state_idx,
                    untried,
                    children: Vec::new(),
                    visits: 0.0,
                    total_reward: 0.0,
                });
                parents.push(Some(current));
                let new_idx = nodes.len() - 1;
                nodes[current].children.push(new_idx);
                leaf = new_idx;
                expansions += 1;
            }
        }

        // ---- simulation (random rollout) ----
        let mut sim_state = states[nodes[leaf].state_idx].clone();
        let mut rollout_best = eval(&sim_state);
        if rollout_best > best_reward {
            best_reward = rollout_best;
            best_state = sim_state.clone();
            best_at = iter;
        }
        let mut depth_reached = 0usize;
        for _ in 0..config.rollout_depth {
            // Deadline check between rollout steps: expiry mid-rollout
            // still backpropagates what this rollout saw so far.
            if expired(&mut budget_exhausted) {
                break;
            }
            let actions = problem.actions(&sim_state);
            if actions.is_empty() {
                break;
            }
            let a = &actions[rng.gen_range(0..actions.len())];
            let Some(next) = problem.apply(&sim_state, a) else { break };
            sim_state = next;
            depth_reached += 1;
            let r = eval(&sim_state);
            if r > rollout_best {
                rollout_best = r;
            }
            if r > best_reward {
                best_reward = r;
                best_state = sim_state.clone();
                best_at = iter;
            }
        }
        rollout_depths[depth_reached] += 1;

        // ---- backpropagation (mean of rollout-best rewards) ----
        let mut cur = Some(leaf);
        while let Some(i) = cur {
            nodes[i].visits += 1.0;
            nodes[i].total_reward += rollout_best;
            cur = parents[i];
        }
        trace.push(best_reward);
    }

    TreeOutcome {
        best_state,
        best_reward,
        best_at,
        trace,
        tree_nodes: nodes.len(),
        iterations: iterations_done,
        expansions,
        rollout_depths,
        elapsed: started.elapsed(),
        budget_exhausted,
    }
}

/// The search could not produce any result at all.
///
/// Budget expiry is *not* an error (the search degrades to an anytime
/// result); the only way a search fails outright is every worker dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// Every worker tree panicked, so there is no partial result to merge.
    AllWorkersPanicked {
        /// How many workers were spawned (and died).
        workers: usize,
        /// Panic payload of the first (lowest-index) worker, when it was a
        /// string.
        first_message: String,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::AllWorkersPanicked { workers, first_message } => {
                write!(f, "all {workers} search worker(s) panicked: {first_message}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// What one spawned worker came back with: its tree, or its panic message.
struct WorkerRun<S> {
    worker: usize,
    seed: u64,
    result: Result<TreeOutcome<S>, String>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn merge_runs<S>(
    config: &MctsConfig,
    cache: &SharedRewardCache,
    runs: Vec<WorkerRun<S>>,
) -> Result<(S, SearchStats), SearchError> {
    let total_workers = runs.len();
    // Deterministic merge over the survivors: strictly greater reward
    // wins; ties keep the lowest worker index, so the result is
    // independent of scheduling — and of *which* other workers died.
    let mut winner: Option<usize> = None;
    for (i, run) in runs.iter().enumerate() {
        let Ok(o) = &run.result else { continue };
        match winner {
            Some(w) => {
                let Ok(best) = &runs[w].result else { unreachable!() };
                if o.best_reward > best.best_reward {
                    winner = Some(i);
                }
            }
            None => winner = Some(i),
        }
    }
    let Some(winner) = winner else {
        let first_message = runs
            .into_iter()
            .find_map(|r| r.result.err())
            .unwrap_or_else(|| "no workers were spawned".to_string());
        return Err(SearchError::AllWorkersPanicked { workers: total_workers, first_message });
    };

    let mut rollout_depths = vec![0u64; config.rollout_depth + 1];
    let mut workers = Vec::with_capacity(runs.len());
    let (mut iterations, mut tree_nodes, mut expansions) = (0, 0, 0);
    let mut budget_exhausted = false;
    let mut worker_panics = 0usize;
    for run in &runs {
        match &run.result {
            Ok(o) => {
                iterations += o.iterations;
                tree_nodes += o.tree_nodes;
                expansions += o.expansions;
                budget_exhausted |= o.budget_exhausted;
                for (slot, v) in rollout_depths.iter_mut().zip(&o.rollout_depths) {
                    *slot += v;
                }
                workers.push(WorkerStats {
                    worker: run.worker,
                    seed: run.seed,
                    iterations: o.iterations,
                    tree_nodes: o.tree_nodes,
                    best_reward: o.best_reward,
                    elapsed: o.elapsed,
                    budget_exhausted: o.budget_exhausted,
                    panicked: false,
                });
            }
            Err(_) => {
                worker_panics += 1;
                workers.push(WorkerStats {
                    worker: run.worker,
                    seed: run.seed,
                    iterations: 0,
                    tree_nodes: 0,
                    best_reward: f64::NEG_INFINITY,
                    elapsed: Duration::ZERO,
                    budget_exhausted: false,
                    panicked: true,
                });
            }
        }
    }

    let win = match runs.into_iter().nth(winner).map(|r| r.result) {
        Some(Ok(o)) => o,
        _ => unreachable!("winner indexes a surviving run"),
    };
    let stats = SearchStats {
        iterations,
        tree_nodes,
        states_evaluated: cache.len(),
        best_reward: win.best_reward,
        best_at_iteration: win.best_at,
        reward_trace: win.trace,
        expansions,
        rollout_depths,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        workers,
        budget_exhausted,
        worker_panics,
    };
    Ok((win.best_state, stats))
}

/// The absolute expiry instant for this run, derived once so that every
/// worker measures the same wall-clock budget.
fn search_deadline(config: &MctsConfig) -> Option<Instant> {
    config.budget.deadline.map(|d| Instant::now() + d)
}

/// Run sequential MCTS, returning the best state found anywhere (tree or
/// rollout) and search statistics. Ignores [`MctsConfig::workers`];
/// equivalent to [`mcts_parallel`] with `workers = 1`. Stops early with
/// an anytime result when the [`GenerationBudget`] expires.
pub fn mcts<P: SearchProblem>(problem: &P, config: &MctsConfig) -> (P::State, SearchStats) {
    let cache = SharedRewardCache::new();
    let deadline = search_deadline(config);
    let outcome = run_tree(problem, config, config.seed, &cache, deadline);
    let run = WorkerRun { worker: 0, seed: config.seed, result: Ok(outcome) };
    match merge_runs(config, &cache, vec![run]) {
        Ok(r) => r,
        Err(_) => unreachable!("sequential run cannot lose its only worker"),
    }
}

/// Run root-parallel MCTS: `config.workers` independent trees from the
/// same root on scoped threads, sharing one reward cache, merged into the
/// single best result. Deterministic for a fixed `(seed, workers)` pair;
/// `workers = 1` (or `0`) reproduces [`mcts`] exactly and spawns no
/// threads.
///
/// Each worker body runs under `catch_unwind`: a panicking worker is
/// recorded in [`SearchStats::workers`] (with `panicked` set) and the
/// survivors' trees are merged as usual. Because every worker's seed is
/// derived only from its own index and the shared reward cache cannot
/// change values, the merged result equals what a run without the dead
/// workers would have produced. [`SearchError::AllWorkersPanicked`] is
/// returned only when no worker survives.
pub fn mcts_parallel<P>(
    problem: &P,
    config: &MctsConfig,
) -> Result<(P::State, SearchStats), SearchError>
where
    P: SearchProblem + Sync,
    P::State: Send,
    P::Action: Send,
{
    let workers = config.workers.max(1);
    let cache = SharedRewardCache::new();
    let deadline = search_deadline(config);

    let run_worker = |w: usize, seed: u64| -> Result<TreeOutcome<P::State>, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "faults")]
            pi2_faults::maybe_panic_worker(w);
            #[cfg(not(feature = "faults"))]
            let _ = w;
            run_tree(problem, config, seed, &cache, deadline)
        }))
        .map_err(panic_message)
    };

    let runs: Vec<WorkerRun<P::State>> = if workers == 1 {
        vec![WorkerRun { worker: 0, seed: config.seed, result: run_worker(0, config.seed) }]
    } else {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let seed = derive_worker_seed(config.seed, w);
                    let handle = s.spawn(move || run_worker(w, seed));
                    (w, seed, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(worker, seed, h)| {
                    // The worker body catches its own panics, so join()
                    // only fails if the catch itself aborted; fold that
                    // into the same per-worker error path.
                    let result = match h.join() {
                        Ok(r) => r,
                        Err(payload) => Err(panic_message(payload)),
                    };
                    WorkerRun { worker, seed, result }
                })
                .collect()
        })
        .unwrap_or_else(|_| Vec::new())
    };
    if runs.is_empty() {
        return Err(SearchError::AllWorkersPanicked {
            workers,
            first_message: "worker scope failed".to_string(),
        });
    }

    merge_runs(config, &cache, runs)
}

fn capped_actions<P: SearchProblem>(
    problem: &P,
    state: &P::State,
    config: &MctsConfig,
    rng: &mut SmallRng,
) -> Vec<P::Action> {
    let mut actions = problem.actions(state);
    while actions.len() > config.max_actions_per_node {
        let i = rng.gen_range(0..actions.len());
        actions.swap_remove(i);
    }
    actions
}

/// Greedy hill climbing: repeatedly take the best-improving neighbor until
/// none improves or the evaluation budget runs out. The ablation baseline
/// the benchmarks compare MCTS against. Runs with an unbounded
/// [`GenerationBudget`]; see [`greedy_with_budget`].
pub fn greedy<P: SearchProblem>(problem: &P, max_evaluations: usize) -> (P::State, SearchStats) {
    greedy_with_budget(problem, max_evaluations, &GenerationBudget::default())
}

/// [`greedy`] under a [`GenerationBudget`]: the deadline is checked before
/// every neighbor evaluation and `budget.max_iterations` caps the number
/// of hill-climbing steps. On expiry the current (best-so-far) state is
/// returned with [`SearchStats::budget_exhausted`] set.
pub fn greedy_with_budget<P: SearchProblem>(
    problem: &P,
    max_evaluations: usize,
    budget: &GenerationBudget,
) -> (P::State, SearchStats) {
    let started = Instant::now();
    let deadline = budget.deadline.map(|d| started + d);
    let max_steps = budget.max_iterations.unwrap_or(usize::MAX);
    let mut budget_exhausted = false;
    let cache = SharedRewardCache::new();
    let evals = AtomicU64::new(0);
    let eval = |s: &P::State| -> f64 {
        cache.get_or_compute(problem.state_key(s), || {
            evals.fetch_add(1, Ordering::Relaxed);
            problem.reward(s)
        })
    };

    let mut current = problem.initial();
    let mut current_reward = eval(&current);
    let mut trace = vec![current_reward];
    let mut steps = 0;

    loop {
        if steps >= max_steps {
            budget_exhausted = true;
            break;
        }
        let mut best_next: Option<(P::State, f64)> = None;
        for a in problem.actions(&current) {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                budget_exhausted = true;
                break;
            }
            if evals.load(Ordering::Relaxed) >= max_evaluations as u64 {
                break;
            }
            let Some(next) = problem.apply(&current, &a) else { continue };
            let r = eval(&next);
            if r > current_reward && best_next.as_ref().is_none_or(|(_, br)| r > *br) {
                best_next = Some((next, r));
            }
        }
        if budget_exhausted {
            break;
        }
        match best_next {
            Some((next, r)) if evals.load(Ordering::Relaxed) <= max_evaluations as u64 => {
                current = next;
                current_reward = r;
                steps += 1;
                trace.push(current_reward);
            }
            _ => break,
        }
        if evals.load(Ordering::Relaxed) >= max_evaluations as u64 {
            break;
        }
    }

    let stats = SearchStats {
        iterations: steps,
        tree_nodes: steps + 1,
        states_evaluated: cache.len(),
        best_reward: current_reward,
        best_at_iteration: steps,
        reward_trace: trace,
        expansions: steps,
        rollout_depths: Vec::new(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        workers: vec![WorkerStats {
            worker: 0,
            seed: 0,
            iterations: steps,
            tree_nodes: steps + 1,
            best_reward: current_reward,
            elapsed: started.elapsed(),
            budget_exhausted,
            panicked: false,
        }],
        budget_exhausted,
        worker_panics: 0,
    };
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy problem: states are integers, actions add deltas; reward has a
    /// deceptive local optimum at 10 (reward 5) and the global optimum at
    /// -6 (reward 9), reachable only by first moving downhill.
    struct Deceptive;

    impl SearchProblem for Deceptive {
        type State = i64;
        type Action = i64;

        fn initial(&self) -> i64 {
            0
        }
        fn actions(&self, s: &i64) -> Vec<i64> {
            if s.abs() >= 10 {
                vec![]
            } else {
                vec![1, -1, 2, -2]
            }
        }
        fn apply(&self, s: &i64, a: &i64) -> Option<i64> {
            Some((s + a).clamp(-10, 10))
        }
        fn reward(&self, s: &i64) -> f64 {
            match *s {
                10 => 5.0,
                -6 => 9.0,
                v if v > 0 => v as f64 * 0.5, // uphill toward 10
                v => -0.1 * v.abs() as f64,   // downhill valley
            }
        }
        fn state_key(&self, s: &i64) -> u64 {
            *s as u64
        }
    }

    #[test]
    fn mcts_escapes_deceptive_local_optimum() {
        // The exploration constant must be scaled to the reward range
        // (here ~[−1, 9]) for UCB to keep probing the low-mean branch.
        let (best, stats) = mcts(
            &Deceptive,
            &MctsConfig { iterations: 800, seed: 42, exploration: 6.0, ..Default::default() },
        );
        assert_eq!(best, -6, "stats: {stats:?}");
        assert_eq!(stats.best_reward, 9.0);
    }

    #[test]
    fn greedy_gets_stuck_on_deceptive_problem() {
        let (best, stats) = greedy(&Deceptive, 10_000);
        // Greedy climbs toward +10 and never finds -10.
        assert_eq!(best, 10, "stats: {stats:?}");
        assert_eq!(stats.best_reward, 5.0);
    }

    #[test]
    fn mcts_is_deterministic_per_seed() {
        let c = MctsConfig { iterations: 150, seed: 7, ..Default::default() };
        let (a, sa) = mcts(&Deceptive, &c);
        let (b, sb) = mcts(&Deceptive, &c);
        assert_eq!(a, b);
        assert_eq!(sa.reward_trace, sb.reward_trace);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let (_, sa) =
            mcts(&Deceptive, &MctsConfig { iterations: 30, seed: 1, ..Default::default() });
        let (_, sb) =
            mcts(&Deceptive, &MctsConfig { iterations: 30, seed: 2, ..Default::default() });
        // Traces usually differ (not guaranteed, but true for these seeds).
        assert_ne!(sa.reward_trace, sb.reward_trace);
    }

    #[test]
    fn reward_trace_is_monotone() {
        let (_, stats) =
            mcts(&Deceptive, &MctsConfig { iterations: 100, seed: 3, ..Default::default() });
        assert_eq!(stats.reward_trace.len(), 100);
        for w in stats.reward_trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn zero_iterations_returns_initial() {
        let (best, stats) =
            mcts(&Deceptive, &MctsConfig { iterations: 0, seed: 0, ..Default::default() });
        assert_eq!(best, 0);
        assert_eq!(stats.iterations, 0);
    }

    /// Terminal-only problem: no actions anywhere.
    struct Terminal;
    impl SearchProblem for Terminal {
        type State = u8;
        type Action = ();
        fn initial(&self) -> u8 {
            1
        }
        fn actions(&self, _: &u8) -> Vec<()> {
            vec![]
        }
        fn apply(&self, _: &u8, _: &()) -> Option<u8> {
            None
        }
        fn reward(&self, s: &u8) -> f64 {
            *s as f64
        }
        fn state_key(&self, s: &u8) -> u64 {
            *s as u64
        }
    }

    #[test]
    fn handles_terminal_root() {
        let (best, _) = mcts(&Terminal, &MctsConfig { iterations: 10, ..Default::default() });
        assert_eq!(best, 1);
        let (best, _) = greedy(&Terminal, 10);
        assert_eq!(best, 1);
    }

    #[test]
    fn parallel_single_worker_matches_sequential() {
        let c = MctsConfig { iterations: 150, seed: 7, workers: 1, ..Default::default() };
        let (seq, seq_stats) = mcts(&Deceptive, &c);
        let (par, par_stats) = mcts_parallel(&Deceptive, &c).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq_stats.reward_trace, par_stats.reward_trace);
        assert_eq!(seq_stats.tree_nodes, par_stats.tree_nodes);
    }

    #[test]
    fn parallel_is_deterministic_per_seed_and_workers() {
        for workers in [2usize, 4] {
            let c = MctsConfig { iterations: 120, seed: 9, workers, ..Default::default() };
            let (a, sa) = mcts_parallel(&Deceptive, &c).unwrap();
            let (b, sb) = mcts_parallel(&Deceptive, &c).unwrap();
            assert_eq!(a, b, "workers={workers}");
            assert_eq!(sa.reward_trace, sb.reward_trace, "workers={workers}");
            assert_eq!(sa.best_at_iteration, sb.best_at_iteration, "workers={workers}");
            assert_eq!(sa.workers.len(), workers);
        }
    }

    #[test]
    fn parallel_never_worse_than_its_own_workers() {
        let c = MctsConfig {
            iterations: 200,
            seed: 5,
            workers: 4,
            exploration: 6.0,
            ..Default::default()
        };
        let (_, stats) = mcts_parallel(&Deceptive, &c).unwrap();
        for w in &stats.workers {
            assert!(stats.best_reward >= w.best_reward);
        }
        assert_eq!(stats.iterations, 4 * 200);
        assert_eq!(stats.worker_panics, 0);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn parallel_shares_reward_cache() {
        let c = MctsConfig { iterations: 300, seed: 1, workers: 4, ..Default::default() };
        let (_, stats) = mcts_parallel(&Deceptive, &c).unwrap();
        // The state space has only 21 states, so nearly every lookup
        // after warm-up is a cache hit.
        assert!(stats.states_evaluated <= 21);
        assert!(stats.cache_hits > stats.cache_misses);
        assert!(stats.cache_hit_rate().unwrap() > 0.5);
    }

    #[test]
    fn rollout_depth_histogram_accounts_all_iterations() {
        let c = MctsConfig { iterations: 100, seed: 3, ..Default::default() };
        let (_, stats) = mcts(&Deceptive, &c);
        assert_eq!(stats.rollout_depths.len(), c.rollout_depth + 1);
        assert_eq!(stats.rollout_depths.iter().sum::<u64>(), 100);
        assert!(stats.expansions > 0);
    }

    #[test]
    fn worker_seed_derivation_is_stable_and_distinct() {
        assert_eq!(derive_worker_seed(42, 0), 42);
        let seeds: Vec<u64> = (0..8).map(|w| derive_worker_seed(42, w)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn zero_iteration_budget_returns_initial_state() {
        let c = MctsConfig {
            iterations: 500,
            seed: 4,
            budget: GenerationBudget { max_iterations: Some(0), ..Default::default() },
            ..Default::default()
        };
        let (best, stats) = mcts(&Deceptive, &c);
        assert_eq!(best, 0, "budget of 0 iterations must return the root state");
        assert_eq!(stats.iterations, 0);
        assert!(stats.budget_exhausted);
        // The root is still evaluated, so the best reward is the root's.
        assert_eq!(stats.best_reward, Deceptive.reward(&0));
    }

    #[test]
    fn iteration_budget_caps_the_search() {
        let budget = GenerationBudget { max_iterations: Some(25), ..Default::default() };
        let c = MctsConfig { iterations: 500, seed: 4, budget, ..Default::default() };
        let (_, stats) = mcts(&Deceptive, &c);
        assert_eq!(stats.iterations, 25);
        assert!(stats.budget_exhausted);
        assert!(stats.workers[0].budget_exhausted);
    }

    #[test]
    fn iteration_budget_above_iterations_is_not_exhaustion() {
        let budget = GenerationBudget { max_iterations: Some(10_000), ..Default::default() };
        let c = MctsConfig { iterations: 50, seed: 4, budget, ..Default::default() };
        let (_, stats) = mcts(&Deceptive, &c);
        assert_eq!(stats.iterations, 50);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn expired_deadline_still_returns_a_state() {
        // A deadline of zero expires before the first iteration: the
        // search must return the evaluated root, not hang or panic.
        let budget = GenerationBudget::with_deadline(Duration::ZERO);
        let c = MctsConfig { iterations: 10_000, seed: 8, budget, ..Default::default() };
        let (best, stats) = mcts(&Deceptive, &c);
        assert_eq!(best, 0);
        assert_eq!(stats.iterations, 0);
        assert!(stats.budget_exhausted);

        let (pbest, pstats) = mcts_parallel(&Deceptive, &MctsConfig { workers: 4, ..c }).unwrap();
        assert_eq!(pbest, 0);
        assert!(pstats.budget_exhausted);
        assert_eq!(pstats.worker_panics, 0);
    }

    #[test]
    fn state_budget_caps_tree_growth() {
        let budget = GenerationBudget { max_states: Some(5), ..Default::default() };
        let c = MctsConfig { iterations: 1_000, seed: 2, budget, ..Default::default() };
        let (_, stats) = mcts(&Deceptive, &c);
        // One extra state can be added by the iteration that crosses the
        // cap; growth stops at the next check.
        assert!(stats.tree_nodes <= 6, "tree_nodes = {}", stats.tree_nodes);
        assert!(stats.budget_exhausted);
    }

    #[test]
    fn greedy_budget_deadline_is_anytime() {
        let (best, stats) = greedy_with_budget(
            &Deceptive,
            10_000,
            &GenerationBudget::with_deadline(Duration::ZERO),
        );
        assert_eq!(best, 0, "expired deadline returns the evaluated root");
        assert!(stats.budget_exhausted);

        let (best, stats) = greedy_with_budget(
            &Deceptive,
            10_000,
            &GenerationBudget { max_iterations: Some(1), ..Default::default() },
        );
        assert_eq!(best, 2, "one uphill step from 0");
        assert!(stats.budget_exhausted);
    }

    #[test]
    fn unbounded_budget_matches_legacy_behaviour() {
        let c = MctsConfig { iterations: 150, seed: 7, ..Default::default() };
        assert!(c.budget.is_unbounded());
        let (_, stats) = mcts(&Deceptive, &c);
        assert_eq!(stats.reward_trace.len(), 150);
        assert_eq!(stats.iterations, 150);
        assert!(!stats.budget_exhausted);
        let (gb, gs) = greedy(&Deceptive, 10_000);
        assert_eq!(gb, 10);
        assert!(!gs.budget_exhausted);
    }
}
