#![warn(missing_docs)]

//! # pi2-mcts
//!
//! A generic, fully deterministic (seeded) Monte-Carlo Tree Search with
//! UCB1 selection (UCT, after Coulom [8] / Kocsis–Szepesvári), plus a
//! greedy hill-climbing searcher used as an ablation baseline.
//!
//! PI2 uses MCTS to search the space of DiffTree forests (paper §2 step ④:
//! "the space of possible interfaces is enormous, so we solve this problem
//! using Monte Carlo Tree Search; MCTS balances exploitation of good
//! explored states with exploration of new states"). This crate knows
//! nothing about DiffTrees: the search problem is abstracted behind
//! [`SearchProblem`], and `pi2-core` instantiates it.
//!
//! ```
//! use pi2_mcts::{mcts, MctsConfig, SearchProblem};
//!
//! struct Climb;
//! impl SearchProblem for Climb {
//!     type State = i32;
//!     type Action = i32;
//!     fn initial(&self) -> i32 { 0 }
//!     fn actions(&self, s: &i32) -> Vec<i32> { if *s < 5 { vec![1] } else { vec![] } }
//!     fn apply(&self, s: &i32, a: &i32) -> Option<i32> { Some(s + a) }
//!     fn reward(&self, s: &i32) -> f64 { *s as f64 }
//!     fn state_key(&self, s: &i32) -> u64 { *s as u64 }
//! }
//! let (best, stats) = mcts(&Climb, &MctsConfig { iterations: 50, ..Default::default() });
//! assert_eq!(best, 5);
//! assert_eq!(stats.best_reward, 5.0);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A search problem over an implicit graph of states.
pub trait SearchProblem {
    /// State.
    type State: Clone;
    /// Action.
    type Action: Clone;

    /// The root state.
    fn initial(&self) -> Self::State;
    /// Actions applicable in `state`.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;
    /// Apply an action; `None` if it no longer applies.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;
    /// Reward of a state (higher is better). May be expensive; the
    /// searchers memoize it by [`SearchProblem::state_key`].
    fn reward(&self, state: &Self::State) -> f64;
    /// A collision-resistant key identifying the state (for transposition
    /// detection and reward memoization).
    fn state_key(&self, state: &Self::State) -> u64;
}

/// MCTS configuration.
#[derive(Debug, Clone)]
pub struct MctsConfig {
    /// Number of select–expand–simulate–backpropagate iterations.
    pub iterations: usize,
    /// UCB1 exploration constant (√2 is the classic choice).
    pub exploration: f64,
    /// Maximum random-rollout depth from a newly expanded node.
    pub rollout_depth: usize,
    /// RNG seed: equal seeds give identical searches.
    pub seed: u64,
    /// Cap on actions considered per node (keeps branching manageable);
    /// actions beyond the cap are sampled away deterministically.
    pub max_actions_per_node: usize,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self {
            iterations: 200,
            exploration: std::f64::consts::SQRT_2,
            rollout_depth: 4,
            seed: 0,
            max_actions_per_node: 64,
        }
    }
}

/// Statistics from one search run.
#[derive(Debug, Clone)]
pub struct SearchStats {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Nodes in the search tree at the end.
    pub tree_nodes: usize,
    /// Distinct states whose reward was evaluated.
    pub states_evaluated: usize,
    /// Best reward found.
    pub best_reward: f64,
    /// Iteration at which the best reward was first reached.
    pub best_at_iteration: usize,
    /// Best-so-far reward after each iteration (for convergence plots).
    pub reward_trace: Vec<f64>,
}

struct Node<A> {
    state_idx: usize,
    untried: Vec<A>,
    children: Vec<usize>,
    visits: f64,
    total_reward: f64,
}

/// Run MCTS, returning the best state found anywhere (tree or rollout) and
/// search statistics.
pub fn mcts<P: SearchProblem>(problem: &P, config: &MctsConfig) -> (P::State, SearchStats) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut reward_cache: HashMap<u64, f64> = HashMap::new();
    let mut states: Vec<P::State> = Vec::new();

    let eval = |s: &P::State, cache: &mut HashMap<u64, f64>| -> f64 {
        let key = problem.state_key(s);
        if let Some(&r) = cache.get(&key) {
            return r;
        }
        let r = problem.reward(s);
        cache.insert(key, r);
        r
    };

    let root_state = problem.initial();
    let mut best_state = root_state.clone();
    let mut best_reward = eval(&root_state, &mut reward_cache);
    let mut best_at = 0;

    states.push(root_state);
    let mut nodes: Vec<Node<P::Action>> = vec![Node {
        state_idx: 0,
        untried: capped_actions(problem, &states[0], config, &mut rng),
        children: Vec::new(),
        visits: 0.0,
        total_reward: 0.0,
    }];
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut trace = Vec::with_capacity(config.iterations);

    for iter in 0..config.iterations {
        // ---- selection ----
        let mut current = 0usize;
        loop {
            let node = &nodes[current];
            if !node.untried.is_empty() || node.children.is_empty() {
                break;
            }
            // UCB1 over children.
            let ln_n = node.visits.max(1.0).ln();
            let mut best_child = node.children[0];
            let mut best_ucb = f64::NEG_INFINITY;
            for &c in &node.children {
                let ch = &nodes[c];
                let ucb = if ch.visits == 0.0 {
                    f64::INFINITY
                } else {
                    ch.total_reward / ch.visits + config.exploration * (ln_n / ch.visits).sqrt()
                };
                if ucb > best_ucb {
                    best_ucb = ucb;
                    best_child = c;
                }
            }
            current = best_child;
        }

        // ---- expansion ----
        let mut leaf = current;
        if !nodes[current].untried.is_empty() {
            let pick = rng.gen_range(0..nodes[current].untried.len());
            let action = nodes[current].untried.swap_remove(pick);
            let parent_state = states[nodes[current].state_idx].clone();
            if let Some(new_state) = problem.apply(&parent_state, &action) {
                let untried = capped_actions(problem, &new_state, config, &mut rng);
                states.push(new_state);
                let state_idx = states.len() - 1;
                nodes.push(Node { state_idx, untried, children: Vec::new(), visits: 0.0, total_reward: 0.0 });
                parents.push(Some(current));
                let new_idx = nodes.len() - 1;
                nodes[current].children.push(new_idx);
                leaf = new_idx;
            }
        }

        // ---- simulation (random rollout) ----
        let mut sim_state = states[nodes[leaf].state_idx].clone();
        let mut rollout_best = eval(&sim_state, &mut reward_cache);
        if rollout_best > best_reward {
            best_reward = rollout_best;
            best_state = sim_state.clone();
            best_at = iter;
        }
        for _ in 0..config.rollout_depth {
            let actions = problem.actions(&sim_state);
            if actions.is_empty() {
                break;
            }
            let a = &actions[rng.gen_range(0..actions.len())];
            let Some(next) = problem.apply(&sim_state, a) else { break };
            sim_state = next;
            let r = eval(&sim_state, &mut reward_cache);
            if r > rollout_best {
                rollout_best = r;
            }
            if r > best_reward {
                best_reward = r;
                best_state = sim_state.clone();
                best_at = iter;
            }
        }

        // ---- backpropagation (mean of rollout-best rewards) ----
        let mut cur = Some(leaf);
        while let Some(i) = cur {
            nodes[i].visits += 1.0;
            nodes[i].total_reward += rollout_best;
            cur = parents[i];
        }
        trace.push(best_reward);
    }

    let stats = SearchStats {
        iterations: config.iterations,
        tree_nodes: nodes.len(),
        states_evaluated: reward_cache.len(),
        best_reward,
        best_at_iteration: best_at,
        reward_trace: trace,
    };
    (best_state, stats)
}

fn capped_actions<P: SearchProblem>(
    problem: &P,
    state: &P::State,
    config: &MctsConfig,
    rng: &mut SmallRng,
) -> Vec<P::Action> {
    let mut actions = problem.actions(state);
    while actions.len() > config.max_actions_per_node {
        let i = rng.gen_range(0..actions.len());
        actions.swap_remove(i);
    }
    actions
}

/// Greedy hill climbing: repeatedly take the best-improving neighbor until
/// none improves or the evaluation budget runs out. The ablation baseline
/// the benchmarks compare MCTS against.
pub fn greedy<P: SearchProblem>(problem: &P, max_evaluations: usize) -> (P::State, SearchStats) {
    let mut reward_cache: HashMap<u64, f64> = HashMap::new();
    let mut evals = 0usize;
    let eval = |s: &P::State, cache: &mut HashMap<u64, f64>, evals: &mut usize| -> f64 {
        let key = problem.state_key(s);
        if let Some(&r) = cache.get(&key) {
            return r;
        }
        *evals += 1;
        let r = problem.reward(s);
        cache.insert(key, r);
        r
    };

    let mut current = problem.initial();
    let mut current_reward = eval(&current, &mut reward_cache, &mut evals);
    let mut trace = vec![current_reward];
    let mut steps = 0;

    loop {
        let mut best_next: Option<(P::State, f64)> = None;
        for a in problem.actions(&current) {
            if evals >= max_evaluations {
                break;
            }
            let Some(next) = problem.apply(&current, &a) else { continue };
            let r = eval(&next, &mut reward_cache, &mut evals);
            if r > current_reward && best_next.as_ref().is_none_or(|(_, br)| r > *br) {
                best_next = Some((next, r));
            }
        }
        match best_next {
            Some((next, r)) if evals <= max_evaluations => {
                current = next;
                current_reward = r;
                steps += 1;
                trace.push(current_reward);
            }
            _ => break,
        }
        if evals >= max_evaluations {
            break;
        }
    }

    let stats = SearchStats {
        iterations: steps,
        tree_nodes: steps + 1,
        states_evaluated: reward_cache.len(),
        best_reward: current_reward,
        best_at_iteration: steps,
        reward_trace: trace,
    };
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy problem: states are integers, actions add deltas; reward has a
    /// deceptive local optimum at 10 (reward 5) and the global optimum at
    /// -6 (reward 9), reachable only by first moving downhill.
    struct Deceptive;

    impl SearchProblem for Deceptive {
        type State = i64;
        type Action = i64;

        fn initial(&self) -> i64 {
            0
        }
        fn actions(&self, s: &i64) -> Vec<i64> {
            if s.abs() >= 10 {
                vec![]
            } else {
                vec![1, -1, 2, -2]
            }
        }
        fn apply(&self, s: &i64, a: &i64) -> Option<i64> {
            Some((s + a).clamp(-10, 10))
        }
        fn reward(&self, s: &i64) -> f64 {
            match *s {
                10 => 5.0,
                -6 => 9.0,
                v if v > 0 => v as f64 * 0.5,       // uphill toward 10
                v => -0.1 * v.abs() as f64,         // downhill valley
            }
        }
        fn state_key(&self, s: &i64) -> u64 {
            *s as u64
        }
    }

    #[test]
    fn mcts_escapes_deceptive_local_optimum() {
        // The exploration constant must be scaled to the reward range
        // (here ~[−1, 9]) for UCB to keep probing the low-mean branch.
        let (best, stats) = mcts(
            &Deceptive,
            &MctsConfig { iterations: 800, seed: 42, exploration: 6.0, ..Default::default() },
        );
        assert_eq!(best, -6, "stats: {stats:?}");
        assert_eq!(stats.best_reward, 9.0);
    }

    #[test]
    fn greedy_gets_stuck_on_deceptive_problem() {
        let (best, stats) = greedy(&Deceptive, 10_000);
        // Greedy climbs toward +10 and never finds -10.
        assert_eq!(best, 10, "stats: {stats:?}");
        assert_eq!(stats.best_reward, 5.0);
    }

    #[test]
    fn mcts_is_deterministic_per_seed() {
        let c = MctsConfig { iterations: 150, seed: 7, ..Default::default() };
        let (a, sa) = mcts(&Deceptive, &c);
        let (b, sb) = mcts(&Deceptive, &c);
        assert_eq!(a, b);
        assert_eq!(sa.reward_trace, sb.reward_trace);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let (_, sa) = mcts(&Deceptive, &MctsConfig { iterations: 30, seed: 1, ..Default::default() });
        let (_, sb) = mcts(&Deceptive, &MctsConfig { iterations: 30, seed: 2, ..Default::default() });
        // Traces usually differ (not guaranteed, but true for these seeds).
        assert_ne!(sa.reward_trace, sb.reward_trace);
    }

    #[test]
    fn reward_trace_is_monotone() {
        let (_, stats) = mcts(&Deceptive, &MctsConfig { iterations: 100, seed: 3, ..Default::default() });
        assert_eq!(stats.reward_trace.len(), 100);
        for w in stats.reward_trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn zero_iterations_returns_initial() {
        let (best, stats) = mcts(&Deceptive, &MctsConfig { iterations: 0, seed: 0, ..Default::default() });
        assert_eq!(best, 0);
        assert_eq!(stats.iterations, 0);
    }

    /// Terminal-only problem: no actions anywhere.
    struct Terminal;
    impl SearchProblem for Terminal {
        type State = u8;
        type Action = ();
        fn initial(&self) -> u8 {
            1
        }
        fn actions(&self, _: &u8) -> Vec<()> {
            vec![]
        }
        fn apply(&self, _: &u8, _: &()) -> Option<u8> {
            None
        }
        fn reward(&self, s: &u8) -> f64 {
            *s as f64
        }
        fn state_key(&self, s: &u8) -> u64 {
            *s as u64
        }
    }

    #[test]
    fn handles_terminal_root() {
        let (best, _) = mcts(&Terminal, &MctsConfig { iterations: 10, ..Default::default() });
        assert_eq!(best, 1);
        let (best, _) = greedy(&Terminal, 10);
        assert_eq!(best, 1);
    }
}
