//! Property tests: every generated query pretty-prints to SQL that re-parses
//! to the identical AST, and normalization is idempotent.

use pi2_sql::*;
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("cases".to_string()),
        Just("state".to_string()),
        Just("date".to_string()),
        Just("ra".to_string()),
        Just("total_count".to_string()),
        Just("G2".to_string()),
    ]
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i64>().prop_map(Literal::Int),
        // Finite floats only; the SQL grammar has no NaN/inf literal.
        (-1e12f64..1e12).prop_map(|v| Literal::Float(F64(v))),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::Str),
        (0i32..60000).prop_map(|d| Literal::Date(Date(d))),
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        ident_strategy().prop_map(Expr::col),
        (ident_strategy(), ident_strategy()).prop_map(|(t, c)| Expr::qcol(t, c)),
        literal_strategy().prop_map(Expr::Literal),
    ]
}

fn binop_strategy() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Or),
        Just(BinaryOp::And),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Concat),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), binop_strategy(), inner.clone()).prop_filter_map(
                "comparisons are non-associative; avoid chaining them",
                |(l, op, r)| {
                    let chains_comparison = |e: &Expr| {
                        matches!(e, Expr::Binary { op, .. } if op.is_comparison())
                            || matches!(
                                e,
                                Expr::InList { .. }
                                    | Expr::Between { .. }
                                    | Expr::Like { .. }
                                    | Expr::IsNull { .. }
                            )
                    };
                    if op.is_comparison() && (chains_comparison(&l) || chains_comparison(&r)) {
                        None
                    } else {
                        Some(Expr::binary(l, op, r))
                    }
                }
            ),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..3), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
            (inner.clone(), leaf_expr(), leaf_expr(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated
                }
            ),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(|args| Expr::Function {
                name: "sum".into(),
                args,
                distinct: false
            }),
            (inner.clone(), inner.clone(), proptest::option::of(inner)).prop_map(|(w, t, e)| {
                Expr::Case { operand: None, branches: vec![(w, t)], else_expr: e.map(Box::new) }
            }),
        ]
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec((expr_strategy(), proptest::option::of(ident_strategy())), 1..4),
        proptest::collection::vec(ident_strategy(), 0..2),
        proptest::option::of(expr_strategy()),
        proptest::collection::vec(expr_strategy(), 0..2),
        proptest::option::of((expr_strategy(), any::<bool>())),
        proptest::option::of(0u64..1000),
        any::<bool>(),
    )
        .prop_map(|(proj, tables, where_clause, group_by, order, limit, distinct)| {
            let mut q = Query::new();
            q.distinct = distinct;
            q.projection =
                proj.into_iter().map(|(expr, alias)| SelectItem::Expr { expr, alias }).collect();
            q.from = tables.into_iter().map(TableRef::named).collect();
            q.where_clause = where_clause;
            q.group_by = group_by;
            q.order_by = order
                .into_iter()
                .map(|(expr, desc)| OrderByItem {
                    expr,
                    dir: if desc { SortDir::Desc } else { SortDir::Asc },
                })
                .collect();
            q.limit = limit;
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(q in query_strategy()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .map_err(|e| TestCaseError::fail(format!("failed to reparse {printed:?}: {e}")))?;
        prop_assert_eq!(&q, &reparsed, "printed: {}", printed);
    }

    #[test]
    fn normalization_is_idempotent(q in query_strategy()) {
        let mut once = q.clone();
        normalize_query(&mut once);
        let mut twice = once.clone();
        normalize_query(&mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalized_query_still_roundtrips(q in query_strategy()) {
        let mut n = q;
        normalize_query(&mut n);
        let printed = n.to_string();
        let reparsed = parse_query(&printed)
            .map_err(|e| TestCaseError::fail(format!("failed to reparse {printed:?}: {e}")))?;
        prop_assert_eq!(&n, &reparsed, "printed: {}", printed);
    }

    #[test]
    fn structural_hash_agrees_with_equality(a in query_strategy(), b in query_strategy()) {
        if a == b {
            prop_assert_eq!(a.structural_hash(), b.structural_hash());
        }
        // Self-consistency: hashing is deterministic.
        prop_assert_eq!(a.structural_hash(), a.clone().structural_hash());
        prop_assert_eq!(b.structural_hash(), b.clone().structural_hash());
    }

    #[test]
    fn lexer_never_panics(s in "\\PC{0,60}") {
        let _ = pi2_sql::lexer::tokenize(&s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,60}") {
        let _ = parse_query(&s);
    }
}
