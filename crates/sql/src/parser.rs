//! A recursive-descent parser for the PI2 SQL dialect.
//!
//! Precedence climbing handles binary operators; `NOT`, `IN`, `BETWEEN`,
//! `LIKE`, `IS NULL` and `EXISTS` are parsed at the standard SQL precedence
//! levels. Function names are lower-cased during parsing so that aggregates
//! compare canonically; table/column identifiers keep their spelling and are
//! matched case-insensitively by the execution engine.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::tokenize;
use crate::token::{Symbol, Token, TokenKind};

/// Parse a single `SELECT` query (an optional trailing `;` is allowed).
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

/// Parse a `;`-separated sequence of queries (e.g. a whole query log).
pub fn parse_queries(input: &str) -> Result<Vec<Query>> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.query()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(msg, t.offset, t.line, t.column)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error_here(format!("unexpected trailing input near {}", self.peek_kind())))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}, found {}", self.peek_kind())))
        }
    }

    fn at_symbol(&self, sym: Symbol) -> bool {
        matches!(self.peek_kind(), TokenKind::Symbol(s) if *s == sym)
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if self.at_symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{sym}', found {}", self.peek_kind())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek_kind() {
            TokenKind::Ident(_) => {
                let TokenKind::Ident(name) = self.bump().kind else { unreachable!() };
                Ok(name)
            }
            // `DATE` doubles as an ordinary identifier (e.g. the COVID-19
            // dataset's `date` column) unless followed by a string literal.
            TokenKind::Keyword("DATE") => {
                self.bump();
                Ok("date".to_string())
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    fn at_ident(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(_) | TokenKind::Keyword("DATE"))
    }

    // ---- queries ----------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let mut q = Query::new();
        q.distinct = self.eat_keyword("DISTINCT");
        loop {
            q.projection.push(self.select_item()?);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        if self.eat_keyword("FROM") {
            loop {
                q.from.push(self.table_ref()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("WHERE") {
            q.where_clause = Some(self.expr()?);
        }
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                q.group_by.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("HAVING") {
            q.having = Some(self.expr()?);
        }
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let dir = if self.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    self.eat_keyword("ASC");
                    SortDir::Asc
                };
                q.order_by.push(OrderByItem { expr, dir });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("LIMIT") {
            q.limit = Some(self.unsigned_int()?);
        }
        if self.eat_keyword("OFFSET") {
            q.offset = Some(self.unsigned_int()?);
        }
        Ok(q)
    }

    fn unsigned_int(&mut self) -> Result<u64> {
        match self.peek_kind() {
            TokenKind::Int(v) if *v >= 0 => {
                let v = *v as u64;
                self.bump();
                Ok(v)
            }
            other => Err(self.error_here(format!("expected non-negative integer, found {other}"))),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.at_symbol(Symbol::Star) {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(name) = self.peek_kind() {
            let name = name.clone();
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Symbol(Symbol::Dot))
            ) && matches!(
                self.tokens.get(self.pos + 2).map(|t| &t.kind),
                Some(TokenKind::Symbol(Symbol::Star))
            ) {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias =
            if self.eat_keyword("AS") || self.at_ident() { Some(self.ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- FROM clause ------------------------------------------------------

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else if self.at_keyword("INNER") {
                self.bump();
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.at_keyword("LEFT") {
                self.bump();
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.at_keyword("CROSS") {
                self.bump();
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_factor()?;
            let on = if kind != JoinKind::Cross {
                self.expect_keyword("ON")?;
                Some(self.expr()?)
            } else {
                None
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat_symbol(Symbol::LParen) {
            // Either a derived table or a parenthesized join.
            if self.at_keyword("SELECT") {
                let query = Box::new(self.query()?);
                self.expect_symbol(Symbol::RParen)?;
                self.eat_keyword("AS");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery { query, alias });
            }
            let inner = self.table_ref()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let alias =
            if self.eat_keyword("AS") || self.at_ident() { Some(self.ident()?) } else { None };
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            // Fold `NOT EXISTS (...)` into the Exists node's negated flag so
            // both spellings produce the same AST.
            return Ok(match inner {
                Expr::Exists { subquery, negated } => Expr::Exists { subquery, negated: !negated },
                other => Expr::Unary { op: UnaryOp::Not, expr: Box::new(other) },
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates: IN, BETWEEN, LIKE, IS [NOT] NULL.
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            if self.at_keyword("SELECT") {
                let subquery = Box::new(self.query()?);
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::InSubquery { expr: Box::new(left), subquery, negated });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if negated {
            return Err(self.error_here("expected IN, BETWEEN or LIKE after NOT"));
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek_kind() {
            TokenKind::Symbol(Symbol::Eq) => BinaryOp::Eq,
            TokenKind::Symbol(Symbol::NotEq) => BinaryOp::NotEq,
            TokenKind::Symbol(Symbol::Lt) => BinaryOp::Lt,
            TokenKind::Symbol(Symbol::LtEq) => BinaryOp::LtEq,
            TokenKind::Symbol(Symbol::Gt) => BinaryOp::Gt,
            TokenKind::Symbol(Symbol::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Symbol(Symbol::Plus) => BinaryOp::Add,
                TokenKind::Symbol(Symbol::Minus) => BinaryOp::Sub,
                TokenKind::Symbol(Symbol::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Symbol(Symbol::Star) => BinaryOp::Mul,
                TokenKind::Symbol(Symbol::Slash) => BinaryOp::Div,
                TokenKind::Symbol(Symbol::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            // Fold negation into numeric literals for canonical ASTs.
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::int(-v),
                Expr::Literal(Literal::Float(F64(v))) => Expr::float(-v),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::float(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword("NULL") => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword("TRUE") => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword("FALSE") => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword("DATE") => {
                self.bump();
                match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        let d = Date::parse(&s).ok_or_else(|| {
                            self.error_here(format!("invalid date literal '{s}'"))
                        })?;
                        self.bump();
                        Ok(Expr::Literal(Literal::Date(d)))
                    }
                    // Not a literal: `date` is being used as an identifier
                    // (column or function name), e.g. the COVID `date` column.
                    TokenKind::Symbol(Symbol::LParen) => {
                        self.bump();
                        self.function_call("date".to_string())
                    }
                    TokenKind::Symbol(Symbol::Dot) => {
                        self.bump();
                        let column = self.ident()?;
                        Ok(Expr::Column(ColumnRef::qualified("date", column)))
                    }
                    _ => Ok(Expr::Column(ColumnRef::bare("date"))),
                }
            }
            TokenKind::Keyword("CASE") => self.case_expr(),
            TokenKind::Keyword("EXISTS") => {
                self.bump();
                self.expect_symbol(Symbol::LParen)?;
                let subquery = Box::new(self.query()?);
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Exists { subquery, negated: false })
            }
            TokenKind::Keyword("NOT") => {
                // `NOT EXISTS (...)` reachable from primary position.
                self.bump();
                self.expect_keyword("EXISTS")?;
                self.expect_symbol(Symbol::LParen)?;
                let subquery = Box::new(self.query()?);
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Exists { subquery, negated: true })
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.bump();
                if self.at_keyword("SELECT") {
                    let q = Box::new(self.query()?);
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::ScalarSubquery(q));
                }
                let inner = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_symbol(Symbol::LParen) {
                    return self.function_call(name);
                }
                if self.eat_symbol(Symbol::Dot) {
                    let column = self.ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, column)));
                }
                Ok(Expr::Column(ColumnRef::bare(name)))
            }
            other => Err(self.error_here(format!("unexpected token {other} in expression"))),
        }
    }

    fn function_call(&mut self, name: String) -> Result<Expr> {
        let name = name.to_ascii_lowercase();
        let distinct = self.eat_keyword("DISTINCT");
        let mut args = Vec::new();
        if !self.at_symbol(Symbol::RParen) {
            loop {
                if self.at_symbol(Symbol::Star) {
                    self.bump();
                    args.push(Expr::Wildcard);
                } else {
                    args.push(self.expr()?);
                }
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Expr::Function { name, args, distinct })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_keyword("CASE")?;
        let operand = if self.at_keyword("WHEN") { None } else { Some(Box::new(self.expr()?)) };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.expr()?;
            self.expect_keyword("THEN")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_keyword("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let q = parse_query("SELECT a FROM t").unwrap();
        assert_eq!(q.projection.len(), 1);
        assert_eq!(q.from, vec![TableRef::named("t")]);
    }

    #[test]
    fn parses_all_clauses() {
        let q = parse_query(
            "SELECT DISTINCT state, sum(cases) AS total FROM covid \
             WHERE date >= DATE '2021-12-01' AND cases > 0 \
             GROUP BY state HAVING sum(cases) > 100 \
             ORDER BY total DESC, state ASC LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.projection.len(), 2);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].dir, SortDir::Desc);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("SELECT count(*) FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert_eq!(*expr, Expr::count_star());
    }

    #[test]
    fn operator_precedence_and_over_or() {
        let q = parse_query("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        let Some(Expr::Binary { op: BinaryOp::Or, right, .. }) = q.where_clause else {
            panic!("expected OR at root");
        };
        assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT 1 + 2 * 3").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        let Expr::Binary { op: BinaryOp::Add, right, .. } = expr else { panic!("expected +") };
        assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn unary_minus_folds_into_literal() {
        let q = parse_query("SELECT -5, -2.5").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert_eq!(*expr, Expr::int(-5));
        let SelectItem::Expr { expr, .. } = &q.projection[1] else { panic!() };
        assert_eq!(*expr, Expr::float(-2.5));
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT * FROM covid c JOIN regions r ON c.state = r.state LEFT JOIN x ON x.id = r.id",
        )
        .unwrap();
        let TableRef::Join { kind, .. } = &q.from[0] else { panic!("expected join") };
        assert_eq!(*kind, JoinKind::Left);
    }

    #[test]
    fn parses_cross_join_without_on() {
        let q = parse_query("SELECT * FROM a CROSS JOIN b").unwrap();
        let TableRef::Join { kind, on, .. } = &q.from[0] else { panic!() };
        assert_eq!(*kind, JoinKind::Cross);
        assert!(on.is_none());
    }

    #[test]
    fn parses_derived_table() {
        let q = parse_query("SELECT s.total FROM (SELECT sum(x) AS total FROM t) AS s").unwrap();
        assert!(matches!(q.from[0], TableRef::Subquery { .. }));
    }

    #[test]
    fn parses_in_list_and_subquery() {
        let q = parse_query("SELECT a FROM t WHERE a IN (1, 2, 3)").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::InList { .. })));
        let q = parse_query("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::InSubquery { negated: true, .. })));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let q = parse_query("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)")
            .unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Exists { negated: false, .. })));
        let q = parse_query("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Exists { negated: true, .. })));
    }

    #[test]
    fn parses_between() {
        let q = parse_query("SELECT a FROM t WHERE ra BETWEEN 150.0 AND 180.0").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Between { negated: false, .. })));
        let q = parse_query("SELECT a FROM t WHERE ra NOT BETWEEN 1 AND 2").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Between { negated: true, .. })));
    }

    #[test]
    fn parses_case() {
        let q = parse_query("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert!(matches!(expr, Expr::Case { .. }));
    }

    #[test]
    fn parses_scalar_subquery() {
        let q = parse_query("SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)").unwrap();
        let Some(Expr::Binary { right, .. }) = q.where_clause else { panic!() };
        assert!(matches!(*right, Expr::ScalarSubquery(_)));
    }

    #[test]
    fn parses_is_null() {
        let q = parse_query("SELECT a FROM t WHERE a IS NOT NULL").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::IsNull { negated: true, .. })));
    }

    #[test]
    fn parses_like() {
        let q = parse_query("SELECT a FROM t WHERE name LIKE 'New%'").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Like { negated: false, .. })));
    }

    #[test]
    fn parses_date_literal() {
        let q = parse_query("SELECT a FROM t WHERE d = DATE '2021-12-15'").unwrap();
        let Some(Expr::Binary { right, .. }) = q.where_clause else { panic!() };
        assert_eq!(*right, Expr::date("2021-12-15"));
    }

    #[test]
    fn rejects_invalid_date_literal() {
        assert!(parse_query("SELECT DATE '2021-02-30'").is_err());
    }

    #[test]
    fn parses_multiple_statements() {
        let qs = parse_queries("SELECT a FROM t; SELECT b FROM u;").unwrap();
        assert_eq!(qs.len(), 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t xyzzy plugh").is_err());
    }

    #[test]
    fn function_names_are_lowercased() {
        let q = parse_query("SELECT COUNT(*), SUM(x) FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert!(matches!(expr, Expr::Function { name, .. } if name == "count"));
    }

    #[test]
    fn alias_without_as() {
        let q = parse_query("SELECT sum(cases) total FROM covid c").unwrap();
        let SelectItem::Expr { alias, .. } = &q.projection[0] else { panic!() };
        assert_eq!(alias.as_deref(), Some("total"));
        assert_eq!(q.from[0], TableRef::aliased("covid", "c"));
    }

    #[test]
    fn parses_qualified_wildcard() {
        let q = parse_query("SELECT c.* FROM covid c").unwrap();
        assert_eq!(q.projection[0], SelectItem::QualifiedWildcard("c".into()));
    }

    #[test]
    fn parses_correlated_subquery_from_demo() {
        // Shape of Q4 from the paper's §3.2 walkthrough.
        let q = parse_query(
            "SELECT date, state, cases FROM covid c JOIN regions r ON c.state = r.state \
             WHERE r.region = 'South' AND date BETWEEN DATE '2021-12-01' AND DATE '2021-12-31' \
             AND state IN (SELECT c2.state FROM covid c2 JOIN regions r2 ON c2.state = r2.state \
                           WHERE r2.region = r.region GROUP BY c2.state \
                           HAVING avg(c2.cases) > (SELECT avg(c3.cases) FROM covid c3 \
                              JOIN regions r3 ON c3.state = r3.state WHERE r3.region = r.region))",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }
}
