//! Parse errors with source positions.

use std::fmt;

/// Result alias for parsing operations.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl ParseError {
    pub(crate) fn new(
        message: impl Into<String>,
        offset: usize,
        line: usize,
        column: usize,
    ) -> Self {
        Self { message: message.into(), offset, line, column }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}
