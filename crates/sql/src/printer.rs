//! Pretty-printing of the AST back to SQL text.
//!
//! The printer emits canonical SQL that round-trips through the parser: for
//! every query `q`, `parse_query(&q.to_string()) == Ok(q)` (verified by the
//! crate's property tests). Parentheses are inserted from operator
//! precedence, not preserved from the source.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.dir == SortDir::Desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {}", ident(a))?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{}", ident(name))?;
                if let Some(a) = alias {
                    write!(f, " AS {}", ident(a))?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => write!(f, "({query}) AS {}", ident(alias)),
            TableRef::Join { left, right, kind, on } => {
                write!(f, "{left}")?;
                match kind {
                    JoinKind::Inner => write!(f, " JOIN ")?,
                    JoinKind::Left => write!(f, " LEFT JOIN ")?,
                    JoinKind::Cross => write!(f, " CROSS JOIN ")?,
                }
                // A join as the right operand needs parentheses to re-parse
                // with the same associativity.
                match right.as_ref() {
                    TableRef::Join { .. } => write!(f, "({right})")?,
                    _ => write!(f, "{right}")?,
                }
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

/// Quote an identifier if it would not re-lex as a plain identifier.
/// `date` is exempt: the parser accepts the `DATE` keyword in identifier
/// position, so it round-trips unquoted.
pub(crate) fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && (crate::token::keyword_of(name).is_none() || name.eq_ignore_ascii_case("date"));
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

impl Expr {
    /// Precedence of this expression when appearing as an operand; used to
    /// decide where parentheses are required.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            Expr::Unary { op: UnaryOp::Not, .. } => 3,
            // Postfix predicates sit between NOT and comparisons.
            Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::Between { .. }
            | Expr::Like { .. }
            | Expr::IsNull { .. } => 4,
            _ => 10,
        }
    }

    fn fmt_operand(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        if self.precedence() < min_prec {
            write!(f, "({self})")
        } else {
            write!(f, "{self}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Wildcard => write!(f, "*"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    expr.fmt_operand(f, 3)
                }
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    expr.fmt_operand(f, 7)
                }
            },
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                left.fmt_operand(f, prec)?;
                write!(f, " {} ", op.sql())?;
                // Right operand of a left-associative operator needs strictly
                // higher precedence to round-trip; comparisons are
                // non-associative so the same holds.
                right.fmt_operand(f, prec + 1)
            }
            Expr::Function { name, args, distinct } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Case { operand, branches, else_expr } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::InList { expr, list, negated } => {
                expr.fmt_operand(f, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, subquery, negated } => {
                expr.fmt_operand(f, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " IN ({subquery})")
            }
            Expr::Exists { subquery, negated } => {
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "EXISTS ({subquery})")
            }
            Expr::Between { expr, low, high, negated } => {
                expr.fmt_operand(f, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " BETWEEN ")?;
                low.fmt_operand(f, 5)?;
                write!(f, " AND ")?;
                high.fmt_operand(f, 5)
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::IsNull { expr, negated } => {
                expr.fmt_operand(f, 5)?;
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
            Expr::Like { expr, pattern, negated } => {
                expr.fmt_operand(f, 5)?;
                if *negated {
                    write!(f, " NOT")?;
                }
                write!(f, " LIKE ")?;
                pattern.fmt_operand(f, 5)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    /// Assert that SQL text parses, prints, and re-parses to the same AST.
    fn roundtrip(sql: &str) -> String {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = q1.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        assert_eq!(q1, q2, "roundtrip changed AST for {sql:?} -> {printed:?}");
        printed
    }

    #[test]
    fn roundtrips_simple() {
        assert_eq!(roundtrip("select a from t"), "SELECT a FROM t");
    }

    #[test]
    fn roundtrips_all_features() {
        for sql in [
            "SELECT DISTINCT a, b AS c FROM t WHERE a > 1 GROUP BY a, b HAVING count(*) > 2 ORDER BY a DESC LIMIT 3 OFFSET 1",
            "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w",
            "SELECT * FROM a CROSS JOIN b",
            "SELECT x FROM (SELECT y AS x FROM t) AS s",
            "SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t",
            "SELECT CASE a WHEN 1 THEN 'one' END FROM t",
            "SELECT a FROM t WHERE a IN (1, 2) OR b NOT IN (SELECT c FROM u)",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)",
            "SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b NOT BETWEEN 3 AND 4",
            "SELECT a FROM t WHERE d >= DATE '2021-12-01'",
            "SELECT a FROM t WHERE name LIKE 'Flo%' AND x IS NOT NULL",
            "SELECT a + b * c - d / e % f FROM t",
            "SELECT (a + b) * c FROM t",
            "SELECT -a FROM t",
            "SELECT count(DISTINCT state) FROM covid",
            "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
            "SELECT a FROM t WHERE x = (SELECT avg(y) FROM u)",
            "SELECT a || '-' || b FROM t",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn parenthesizes_or_under_and() {
        let printed = roundtrip("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3");
        assert!(printed.contains("(x = 1 OR y = 2) AND"), "got {printed}");
    }

    #[test]
    fn quotes_awkward_identifiers() {
        let printed = roundtrip("SELECT \"case count\" FROM \"my table\"");
        assert!(printed.contains("\"case count\""));
        assert!(printed.contains("\"my table\""));
    }

    #[test]
    fn nested_right_join_parenthesized() {
        let q = roundtrip("SELECT * FROM a JOIN (b JOIN c ON b.x = c.x) ON a.y = b.y");
        assert!(q.contains("("), "got {q}");
    }
}
