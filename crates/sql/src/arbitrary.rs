//! Schema-aware random query generation (test support).
//!
//! The conformance harness (crate `pi2-conformance`) fuzzes the whole PI2
//! pipeline with *valid-by-construction* query logs. The AST-level
//! machinery lives here, next to the AST it produces: callers describe the
//! available tables as [`SchemaSpec`]s (names, column types, literal pools
//! sampled from real data) and draw random queries — or whole query *logs*,
//! families of structurally related queries — from any [`rand::Rng`].
//!
//! The module also provides [`proptest`] [`Arbitrary`] impls for the leaf
//! AST types ([`Literal`], [`Date`], [`F64`]) so property tests can embed
//! them in larger strategies, and [`ProptestRng`], an adapter that drives
//! the `rand`-generic generators from a proptest [`TestRng`].
//!
//! Everything is deterministic per seed: equal specs and equal RNG streams
//! produce equal logs, which the conformance harness relies on to replay
//! and shrink failures.

use crate::ast::{
    BinaryOp, Date, Expr, Literal, OrderByItem, Query, SelectItem, SortDir, TableRef, F64,
};
use proptest::arbitrary::Arbitrary;
use proptest::test_runner::TestRng;
use rand::Rng;

/// The scalar type of a column, as far as query generation cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// String.
    Str,
    /// Calendar date.
    Date,
}

impl ScalarKind {
    /// True for types with a meaningful order (range predicates apply).
    pub fn is_ordered(self) -> bool {
        matches!(self, ScalarKind::Int | ScalarKind::Float | ScalarKind::Date)
    }

    /// True for types `sum`/`avg` accept.
    pub fn is_summable(self) -> bool {
        matches!(self, ScalarKind::Int | ScalarKind::Float)
    }
}

/// One column of a [`TableSpec`].
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Scalar type.
    pub kind: ScalarKind,
    /// Literals that occur in (or at least execute against) the column.
    /// Predicate literals are drawn from this pool, so a non-empty pool
    /// makes every generated predicate satisfiable by construction.
    pub pool: Vec<Literal>,
    /// Whether `GROUP BY` on this column produces a readable result
    /// (low cardinality).
    pub groupable: bool,
}

impl ColumnSpec {
    /// A column spec with an explicit literal pool.
    pub fn new(name: impl Into<String>, kind: ScalarKind, pool: Vec<Literal>) -> Self {
        Self { name: name.into(), kind, pool, groupable: false }
    }

    /// Mark the column as sensible to group by.
    pub fn groupable(mut self) -> Self {
        self.groupable = true;
        self
    }
}

/// One table available to the generator.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnSpec>,
}

impl TableSpec {
    /// A table spec.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSpec>) -> Self {
        Self { name: name.into(), columns }
    }
}

/// An equi-join the schema permits: `left.left_column = right.right_column`.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Left table name.
    pub left: String,
    /// Column of the left table.
    pub left_column: String,
    /// Right table name.
    pub right: String,
    /// Column of the right table.
    pub right_column: String,
}

/// The full schema the generator draws from: tables plus permitted joins.
#[derive(Debug, Clone)]
pub struct SchemaSpec {
    /// Tables.
    pub tables: Vec<TableSpec>,
    /// Permitted equi-joins (empty: single-table queries only).
    pub joins: Vec<JoinSpec>,
}

impl SchemaSpec {
    /// A single-table schema.
    pub fn single(table: TableSpec) -> Self {
        Self { tables: vec![table], joins: Vec::new() }
    }

    fn table(&self, name: &str) -> Option<&TableSpec> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Draw one random query.
    pub fn random_query<R: Rng>(&self, rng: &mut R) -> Query {
        let template = Template::draw(self, rng);
        template.instantiate(self, rng)
    }

    /// Draw a *log*: `len` structurally related queries — one template,
    /// `len` variants differing in literals, predicate presence, and
    /// grouping column. This is the shape PI2 consumes: an analysis
    /// session's incremental edits, not independent random queries.
    pub fn random_log<R: Rng>(&self, rng: &mut R, len: usize) -> Vec<Query> {
        let template = Template::draw(self, rng);
        (0..len).map(|_| template.instantiate(self, rng)).collect()
    }
}

/// The frozen skeleton of a query family. Each [`Template::instantiate`]
/// call re-samples the variable parts (literals, optional predicates,
/// grouping column) while keeping the skeleton, which is exactly the kind
/// of variation DiffTree merging factors into choice nodes.
#[derive(Debug, Clone)]
struct Template {
    /// Base table name.
    table: String,
    /// The join to apply, if any.
    join: Option<JoinSpec>,
    /// Aggregate shape or plain projection.
    shape: Shape,
    /// Candidate predicate columns as (table, column) pairs.
    predicates: Vec<(String, String)>,
    /// A range predicate (`lo <= col AND col <= hi`) column, if drawn.
    range: Option<(String, String)>,
    /// Whether variants may carry ORDER BY + LIMIT.
    order_limit: bool,
}

#[derive(Debug, Clone)]
enum Shape {
    /// `SELECT g, agg FROM … GROUP BY g`, with alternative group columns.
    Aggregate {
        /// (table, column) alternatives for the grouping key.
        group_alternatives: Vec<(String, String)>,
        /// Aggregate call, e.g. `count(*)` or `sum(t.x)`.
        agg: AggSpec,
    },
    /// `SELECT c1, c2, … FROM …` over fixed columns.
    Plain {
        /// Projected (table, column) pairs.
        columns: Vec<(String, String)>,
    },
}

#[derive(Debug, Clone)]
enum AggSpec {
    CountStar,
    Call { func: &'static str, table: String, column: String },
}

impl Template {
    fn draw<R: Rng>(spec: &SchemaSpec, rng: &mut R) -> Template {
        // Join with probability 1/3 when the schema permits one.
        let join = if !spec.joins.is_empty() && rng.gen_bool(1.0 / 3.0) {
            Some(spec.joins[rng.gen_range(0..spec.joins.len())].clone())
        } else {
            None
        };
        let table = match &join {
            Some(j) => j.left.clone(),
            None => spec.tables[rng.gen_range(0..spec.tables.len())].name.clone(),
        };
        let mut scope: Vec<String> = vec![table.clone()];
        if let Some(j) = &join {
            scope.push(j.right.clone());
        }

        let columns_of = |t: &str| spec.table(t).map(|ts| ts.columns.as_slice()).unwrap_or(&[]);
        let in_scope = |f: &dyn Fn(&ColumnSpec) -> bool| -> Vec<(String, String)> {
            scope
                .iter()
                .flat_map(|t| {
                    columns_of(t).iter().filter(|c| f(c)).map(|c| (t.clone(), c.name.clone()))
                })
                .collect()
        };

        let groupables = in_scope(&|c| c.groupable);
        let summables = in_scope(&|c| c.kind.is_summable());
        let shape = if !groupables.is_empty() && rng.gen_bool(0.7) {
            let agg = if !summables.is_empty() && rng.gen_bool(0.4) {
                let (t, c) = summables[rng.gen_range(0..summables.len())].clone();
                let func = ["sum", "avg", "min", "max"][rng.gen_range(0..4)];
                AggSpec::Call { func, table: t, column: c }
            } else {
                AggSpec::CountStar
            };
            Shape::Aggregate { group_alternatives: groupables, agg }
        } else {
            let all = in_scope(&|_| true);
            let mut columns = Vec::new();
            let want = rng.gen_range(1..all.len().min(3) + 1);
            for _ in 0..want {
                let pick = all[rng.gen_range(0..all.len())].clone();
                if !columns.contains(&pick) {
                    columns.push(pick);
                }
            }
            Shape::Plain { columns }
        };

        // Predicate candidates: columns with a non-empty literal pool.
        let candidates = in_scope(&|c| !c.pool.is_empty());
        let mut predicates = Vec::new();
        let want = rng.gen_range(0..candidates.len().min(2) + 1);
        for _ in 0..want {
            let pick = candidates[rng.gen_range(0..candidates.len())].clone();
            if !predicates.contains(&pick) {
                predicates.push(pick);
            }
        }
        // A (lo, hi) range predicate over an ordered column with >= 2 pool
        // values; this is what produces range sliders / brushes / pan-zoom.
        let rangeable: Vec<(String, String)> = scope
            .iter()
            .flat_map(|t| {
                columns_of(t)
                    .iter()
                    .filter(|c| c.kind.is_ordered() && c.pool.len() >= 2)
                    .map(|c| (t.clone(), c.name.clone()))
            })
            .collect();
        let range = if !rangeable.is_empty() && rng.gen_bool(0.4) {
            Some(rangeable[rng.gen_range(0..rangeable.len())].clone())
        } else {
            None
        };

        Template { table, join, shape, predicates, range, order_limit: rng.gen_bool(0.3) }
    }

    /// Column reference style: qualified when a join puts two tables in
    /// scope, bare otherwise.
    fn col(&self, table: &str, column: &str) -> Expr {
        if self.join.is_some() {
            Expr::qcol(table, column)
        } else {
            Expr::col(column)
        }
    }

    fn instantiate<R: Rng>(&self, spec: &SchemaSpec, rng: &mut R) -> Query {
        let mut q = Query::new();

        // FROM (+ JOIN).
        q.from = match &self.join {
            Some(j) => vec![TableRef::Join {
                left: Box::new(TableRef::named(&j.left)),
                right: Box::new(TableRef::named(&j.right)),
                kind: crate::ast::JoinKind::Inner,
                on: Some(Expr::eq(
                    Expr::qcol(&j.left, &j.left_column),
                    Expr::qcol(&j.right, &j.right_column),
                )),
            }],
            None => vec![TableRef::named(&self.table)],
        };

        // Projection (+ GROUP BY).
        match &self.shape {
            Shape::Aggregate { group_alternatives, agg } => {
                let (gt, gc) =
                    group_alternatives[rng.gen_range(0..group_alternatives.len())].clone();
                let group = self.col(&gt, &gc);
                let agg_expr = match agg {
                    AggSpec::CountStar => Expr::count_star(),
                    AggSpec::Call { func, table, column } => {
                        Expr::func(func, vec![self.col(table, column)])
                    }
                };
                q.projection = vec![SelectItem::expr(group.clone()), SelectItem::expr(agg_expr)];
                q.group_by = vec![group];
            }
            Shape::Plain { columns } => {
                q.projection =
                    columns.iter().map(|(t, c)| SelectItem::expr(self.col(t, c))).collect();
            }
        }

        // WHERE: each candidate predicate present with probability 0.7,
        // with a fresh literal each time; the optional range predicate adds
        // a `lo <= col AND col <= hi` pair.
        let mut conjuncts: Vec<Expr> = Vec::new();
        for (t, c) in &self.predicates {
            if !rng.gen_bool(0.7) {
                continue;
            }
            let col_spec = spec
                .table(t)
                .and_then(|ts| ts.columns.iter().find(|cs| &cs.name == c))
                .expect("template references a spec column");
            let lit = col_spec.pool[rng.gen_range(0..col_spec.pool.len())].clone();
            let op = if col_spec.kind.is_ordered() && rng.gen_bool(0.5) {
                [BinaryOp::Lt, BinaryOp::LtEq, BinaryOp::Gt, BinaryOp::GtEq][rng.gen_range(0..4)]
            } else {
                BinaryOp::Eq
            };
            conjuncts.push(Expr::binary(self.col(t, c), op, Expr::Literal(lit)));
        }
        if let Some((t, c)) = &self.range {
            let col_spec = spec
                .table(t)
                .and_then(|ts| ts.columns.iter().find(|cs| &cs.name == c))
                .expect("template references a spec column");
            let a = col_spec.pool[rng.gen_range(0..col_spec.pool.len())].clone();
            let b = col_spec.pool[rng.gen_range(0..col_spec.pool.len())].clone();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            conjuncts.push(Expr::binary(self.col(t, c), BinaryOp::GtEq, Expr::Literal(lo)));
            conjuncts.push(Expr::binary(self.col(t, c), BinaryOp::LtEq, Expr::Literal(hi)));
        }
        q.where_clause = conjuncts.into_iter().reduce(Expr::and);

        // ORDER BY the first projected expression + LIMIT, sometimes.
        if self.order_limit && rng.gen_bool(0.5) {
            if let Some(SelectItem::Expr { expr, .. }) = q.projection.first() {
                let dir = if rng.gen_bool(0.5) { SortDir::Asc } else { SortDir::Desc };
                q.order_by = vec![OrderByItem { expr: expr.clone(), dir }];
                q.limit = Some(rng.gen_range(1..50));
            }
        }

        q
    }
}

// ---- proptest integration -------------------------------------------------

/// Adapter implementing [`rand::RngCore`] on top of a proptest [`TestRng`],
/// so strategies can call the `rand`-generic generators above.
pub struct ProptestRng<'a>(pub &'a mut TestRng);

impl rand::RngCore for ProptestRng<'_> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl Arbitrary for F64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        F64(f64::arbitrary(rng))
    }
}

impl Arbitrary for Date {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Any day in 1900-01-01 ..= 2099-12-31.
        let lo = Date::from_ymd(1900, 1, 1).expect("valid").0;
        let hi = Date::from_ymd(2099, 12, 31).expect("valid").0;
        Date(lo + rng.below((hi - lo + 1) as u64) as i32)
    }
}

impl Arbitrary for Literal {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(6) {
            0 => Literal::Null,
            1 => Literal::Bool(bool::arbitrary(rng)),
            2 => Literal::Int(rng.below(2_000) as i64 - 1_000),
            3 => Literal::Float(F64((rng.unit_f64() - 0.5) * 2e4)),
            4 => {
                let len = rng.below(8) as usize;
                let s: String = (0..len).map(|_| (b'a' + rng.below(26) as u8) as char).collect();
                Literal::Str(s)
            }
            _ => Literal::Date(Date::arbitrary(rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy_spec() -> SchemaSpec {
        SchemaSpec::single(TableSpec::new(
            "t",
            vec![
                ColumnSpec::new("p", ScalarKind::Int, (0..8).map(Literal::Int).collect())
                    .groupable(),
                ColumnSpec::new("a", ScalarKind::Int, (0..5).map(Literal::Int).collect())
                    .groupable(),
                ColumnSpec::new("b", ScalarKind::Int, (0..5).map(Literal::Int).collect()),
            ],
        ))
    }

    #[test]
    fn generated_queries_roundtrip_through_parser() {
        let spec = toy_spec();
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let q = spec.random_query(&mut rng);
            let printed = q.to_string();
            let reparsed = crate::parse_query(&printed)
                .unwrap_or_else(|e| panic!("generated query does not reparse: {printed}: {e}"));
            assert_eq!(
                crate::normalize::normalized(&reparsed),
                crate::normalize::normalized(&q),
                "print/parse changed the query: {printed}"
            );
        }
    }

    #[test]
    fn logs_are_structurally_related() {
        let spec = toy_spec();
        let mut rng = SmallRng::seed_from_u64(7);
        let log = spec.random_log(&mut rng, 4);
        assert_eq!(log.len(), 4);
        // Same template: identical FROM clause across the log.
        for q in &log[1..] {
            assert_eq!(q.from, log[0].from);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = toy_spec();
        let a = spec.random_log(&mut SmallRng::seed_from_u64(9), 5);
        let b = spec.random_log(&mut SmallRng::seed_from_u64(9), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn join_templates_qualify_columns() {
        let mut spec = toy_spec();
        spec.tables.push(TableSpec::new(
            "u",
            vec![
                ColumnSpec::new("a", ScalarKind::Int, (0..5).map(Literal::Int).collect()),
                ColumnSpec::new("w", ScalarKind::Int, (0..9).map(Literal::Int).collect())
                    .groupable(),
            ],
        ));
        spec.joins.push(JoinSpec {
            left: "t".into(),
            left_column: "a".into(),
            right: "u".into(),
            right_column: "a".into(),
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let mut saw_join = false;
        for _ in 0..50 {
            let q = spec.random_query(&mut rng);
            if matches!(q.from[0], TableRef::Join { .. }) {
                saw_join = true;
                let printed = q.to_string();
                assert!(printed.contains("JOIN"), "{printed}");
                crate::parse_query(&printed).unwrap();
            }
        }
        assert!(saw_join, "join never drawn in 50 tries");
    }
}
