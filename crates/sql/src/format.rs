//! A multi-line SQL formatter.
//!
//! [`fmt::Display`] on [`Query`] emits canonical single-line SQL (built for
//! round-tripping); this module pretty-prints for humans — the notebook's
//! cell display and the HTML export's query log, where the walkthrough's Q4
//! (joins plus correlated subqueries) is unreadable on one line.

use crate::ast::*;

/// Pretty-print a query across multiple lines with `indent`-space nesting
/// per subquery level. The output still parses back to the same AST.
pub fn format_query(q: &Query, indent: usize) -> String {
    let mut out = String::new();
    write_query(q, 0, indent, &mut out);
    out
}

fn pad(level: usize, indent: usize) -> String {
    " ".repeat(level * indent)
}

fn write_query(q: &Query, level: usize, indent: usize, out: &mut String) {
    let p = pad(level, indent);

    out.push_str(&p);
    out.push_str("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = q.projection.iter().map(|i| i.to_string()).collect();
    out.push_str(&items.join(", "));

    if !q.from.is_empty() {
        out.push('\n');
        out.push_str(&p);
        out.push_str("FROM ");
        let tables: Vec<String> = q.from.iter().map(|t| format_table_ref(t, indent)).collect();
        out.push_str(&tables.join(", "));
    }

    if let Some(w) = &q.where_clause {
        out.push('\n');
        out.push_str(&p);
        out.push_str("WHERE ");
        write_predicate(w, level, indent, out);
    }

    if !q.group_by.is_empty() {
        out.push('\n');
        out.push_str(&p);
        out.push_str("GROUP BY ");
        let gs: Vec<String> = q.group_by.iter().map(|g| g.to_string()).collect();
        out.push_str(&gs.join(", "));
    }

    if let Some(h) = &q.having {
        out.push('\n');
        out.push_str(&p);
        out.push_str("HAVING ");
        write_predicate(h, level, indent, out);
    }

    if !q.order_by.is_empty() {
        out.push('\n');
        out.push_str(&p);
        out.push_str("ORDER BY ");
        let os: Vec<String> = q
            .order_by
            .iter()
            .map(|o| {
                if o.dir == SortDir::Desc {
                    format!("{} DESC", o.expr)
                } else {
                    o.expr.to_string()
                }
            })
            .collect();
        out.push_str(&os.join(", "));
    }

    if let Some(l) = q.limit {
        out.push('\n');
        out.push_str(&p);
        out.push_str(&format!("LIMIT {l}"));
    }
    if let Some(o) = q.offset {
        out.push('\n');
        out.push_str(&p);
        out.push_str(&format!("OFFSET {o}"));
    }
}

/// Conjuncts go one per line, aligned under the clause keyword; each
/// conjunct containing a subquery expands it on the following lines.
fn write_predicate(pred: &Expr, level: usize, indent: usize, out: &mut String) {
    let parts = crate::visit::conjuncts(pred);
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&pad(level, indent));
            out.push_str("  AND ");
        }
        write_expr(part, level, indent, out);
    }
}

fn write_expr(e: &Expr, level: usize, indent: usize, out: &mut String) {
    match e {
        Expr::InSubquery { expr, subquery, negated } => {
            out.push_str(&format!("{expr} {}IN (\n", if *negated { "NOT " } else { "" }));
            write_query(subquery, level + 1, indent, out);
            out.push('\n');
            out.push_str(&pad(level, indent));
            out.push(')');
        }
        Expr::Exists { subquery, negated } => {
            out.push_str(&format!("{}EXISTS (\n", if *negated { "NOT " } else { "" }));
            write_query(subquery, level + 1, indent, out);
            out.push('\n');
            out.push_str(&pad(level, indent));
            out.push(')');
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            if let Expr::ScalarSubquery(sq) = right.as_ref() {
                out.push_str(&format!("{left} {} (\n", op.sql()));
                write_query(sq, level + 1, indent, out);
                out.push('\n');
                out.push_str(&pad(level, indent));
                out.push(')');
            } else {
                out.push_str(&e.to_string());
            }
        }
        other => out.push_str(&other.to_string()),
    }
}

fn format_table_ref(t: &TableRef, indent: usize) -> String {
    // Derived tables expand; joins stay inline (their ON conditions are
    // usually short).
    match t {
        TableRef::Subquery { query, alias } => {
            let inner = format_query(query, indent);
            let padded: String =
                inner.lines().map(|l| format!("{}{l}\n", pad(1, indent))).collect();
            format!("(\n{padded}) AS {alias}")
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn roundtrip(sql: &str) -> String {
        let q = parse_query(sql).unwrap();
        let pretty = format_query(&q, 2);
        let reparsed = parse_query(&pretty)
            .unwrap_or_else(|e| panic!("formatted SQL does not reparse: {e}\n{pretty}"));
        assert_eq!(q, reparsed, "formatting changed the AST:\n{pretty}");
        pretty
    }

    #[test]
    fn formats_simple_query_on_clause_lines() {
        let pretty = roundtrip("SELECT state, sum(cases) FROM covid WHERE cases > 0 GROUP BY state ORDER BY state LIMIT 5");
        let lines: Vec<&str> = pretty.lines().collect();
        assert_eq!(lines[0], "SELECT state, sum(cases)");
        assert_eq!(lines[1], "FROM covid");
        assert_eq!(lines[2], "WHERE cases > 0");
        assert_eq!(lines[3], "GROUP BY state");
        assert_eq!(lines[4], "ORDER BY state");
        assert_eq!(lines[5], "LIMIT 5");
    }

    #[test]
    fn conjuncts_align_under_where() {
        let pretty = roundtrip("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3");
        assert!(pretty.contains("WHERE x = 1\n  AND y = 2\n  AND z = 3"), "{pretty}");
    }

    #[test]
    fn q4_subqueries_expand_indented() {
        let q4 = &pi2_datasets_free_q4();
        let q = parse_query(q4).unwrap();
        let pretty = format_query(&q, 2);
        // The IN subquery and the scalar subquery each sit on their own
        // indented block.
        assert!(pretty.contains("IN (\n"), "{pretty}");
        assert!(pretty.lines().count() > 8, "{pretty}");
        assert_eq!(parse_query(&pretty).unwrap(), q);
    }

    /// The paper's Q4 shape without depending on pi2-datasets (which would
    /// be a dependency cycle).
    fn pi2_datasets_free_q4() -> String {
        "SELECT c.date, c.state, sum(c.cases) AS cases FROM covid c JOIN regions r ON c.state = r.state \
         WHERE r.region = 'South' AND c.date BETWEEN DATE '2021-12-16' AND DATE '2021-12-31' \
         AND c.state IN (SELECT c2.state FROM covid c2 JOIN regions r2 ON c2.state = r2.state \
           WHERE r2.region = r.region GROUP BY c2.state \
           HAVING avg(c2.cases) > (SELECT avg(c3.cases) FROM covid c3 JOIN regions r3 \
             ON c3.state = r3.state WHERE r3.region = r.region)) GROUP BY c.date, c.state"
            .to_string()
    }

    #[test]
    fn derived_tables_expand() {
        let pretty = roundtrip("SELECT s.total FROM (SELECT sum(x) AS total FROM t) AS s");
        assert!(pretty.contains("FROM (\n"), "{pretty}");
        assert!(pretty.contains(") AS s"), "{pretty}");
    }

    #[test]
    fn scalar_subquery_in_comparison_expands() {
        let pretty = roundtrip("SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)");
        assert!(pretty.contains("> (\n"), "{pretty}");
    }
}
