//! Visitor utilities over the AST.
//!
//! These walkers power the DiffTree lifter, the baselines, and the interface
//! mapper: collecting literals, column references, and aggregate calls, and
//! applying in-place expression rewrites.

use crate::ast::*;

/// Walk every sub-expression of `expr` (pre-order), including `expr` itself.
/// The callback returns `true` to descend into children.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr) -> bool) {
    if !f(expr) {
        return;
    }
    match expr {
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                walk_expr(o, f);
            }
            for (w, t) in branches {
                walk_expr(w, f);
                walk_expr(t, f);
            }
            if let Some(e) = else_expr {
                walk_expr(e, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for e in list {
                walk_expr(e, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            walk_expr(expr, f);
            walk_query_exprs(subquery, f);
        }
        Expr::Exists { subquery, .. } => walk_query_exprs(subquery, f),
        Expr::Between { expr, low, high, .. } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        Expr::ScalarSubquery(q) => walk_query_exprs(q, f),
        Expr::IsNull { expr, .. } => walk_expr(expr, f),
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
    }
}

/// Walk every expression appearing anywhere in `query`, including inside
/// derived tables and subqueries.
pub fn walk_query_exprs<'a>(query: &'a Query, f: &mut dyn FnMut(&'a Expr) -> bool) {
    for item in &query.projection {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, f);
        }
    }
    for t in &query.from {
        walk_table_ref_exprs(t, f);
    }
    if let Some(w) = &query.where_clause {
        walk_expr(w, f);
    }
    for g in &query.group_by {
        walk_expr(g, f);
    }
    if let Some(h) = &query.having {
        walk_expr(h, f);
    }
    for o in &query.order_by {
        walk_expr(&o.expr, f);
    }
}

fn walk_table_ref_exprs<'a>(t: &'a TableRef, f: &mut dyn FnMut(&'a Expr) -> bool) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Subquery { query, .. } => walk_query_exprs(query, f),
        TableRef::Join { left, right, on, .. } => {
            walk_table_ref_exprs(left, f);
            walk_table_ref_exprs(right, f);
            if let Some(on) = on {
                walk_expr(on, f);
            }
        }
    }
}

/// True if `expr` contains an aggregate function call at any depth *outside*
/// nested subqueries (an aggregate inside a subquery does not aggregate the
/// outer query).
pub fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Function { name, args, .. } => {
            is_aggregate_function(name) || args.iter().any(contains_aggregate)
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => false,
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || branches.iter().any(|(w, t)| contains_aggregate(w) || contains_aggregate(t))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        // Subqueries form their own aggregation scope.
        Expr::InSubquery { expr, .. } => contains_aggregate(expr),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
    }
}

/// Collect every literal in the query (including inside subqueries), in
/// syntactic order.
pub fn collect_literals(query: &Query) -> Vec<&Literal> {
    let mut out = Vec::new();
    walk_query_exprs(query, &mut |e| {
        if let Expr::Literal(l) = e {
            out.push(l);
        }
        true
    });
    out
}

/// Collect every column reference in the query (including inside subqueries).
pub fn collect_columns(query: &Query) -> Vec<&ColumnRef> {
    let mut out = Vec::new();
    walk_query_exprs(query, &mut |e| {
        if let Expr::Column(c) = e {
            out.push(c);
        }
        true
    });
    out
}

/// Collect the names of every base table referenced by the query, including
/// inside derived tables and subqueries.
pub fn collect_table_names(query: &Query) -> Vec<&str> {
    fn from_table<'a>(t: &'a TableRef, out: &mut Vec<&'a str>) {
        match t {
            TableRef::Named { name, .. } => out.push(name),
            TableRef::Subquery { query, .. } => from_query(query, out),
            TableRef::Join { left, right, .. } => {
                from_table(left, out);
                from_table(right, out);
            }
        }
    }
    fn from_query<'a>(q: &'a Query, out: &mut Vec<&'a str>) {
        for t in &q.from {
            from_table(t, out);
        }
        let mut grab = |e: &'a Expr| -> bool {
            match e {
                Expr::InSubquery { subquery, .. } | Expr::Exists { subquery, .. } => {
                    from_query(subquery, out);
                }
                Expr::ScalarSubquery(q) => from_query(q, out),
                _ => {}
            }
            true
        };
        if let Some(w) = &q.where_clause {
            walk_expr(w, &mut grab);
        }
        if let Some(h) = &q.having {
            walk_expr(h, &mut grab);
        }
        for item in &q.projection {
            if let SelectItem::Expr { expr, .. } = item {
                walk_expr(expr, &mut grab);
            }
        }
    }
    let mut out = Vec::new();
    from_query(query, &mut out);
    out
}

/// Apply `f` to every expression in the query top-down, replacing each
/// expression with the returned value. `f` receives an owned expression and
/// is applied *before* recursing into the (possibly new) children.
pub fn rewrite_query_exprs(query: &mut Query, f: &mut dyn FnMut(Expr) -> Expr) {
    for item in &mut query.projection {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite_expr(expr, f);
        }
    }
    for t in &mut query.from {
        rewrite_table_ref(t, f);
    }
    if let Some(w) = &mut query.where_clause {
        rewrite_expr(w, f);
    }
    for g in &mut query.group_by {
        rewrite_expr(g, f);
    }
    if let Some(h) = &mut query.having {
        rewrite_expr(h, f);
    }
    for o in &mut query.order_by {
        rewrite_expr(&mut o.expr, f);
    }
}

fn rewrite_table_ref(t: &mut TableRef, f: &mut dyn FnMut(Expr) -> Expr) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Subquery { query, .. } => rewrite_query_exprs(query, f),
        TableRef::Join { left, right, on, .. } => {
            rewrite_table_ref(left, f);
            rewrite_table_ref(right, f);
            if let Some(on) = on {
                rewrite_expr(on, f);
            }
        }
    }
}

/// Apply `f` to `expr` and then recursively to its children, in place.
pub fn rewrite_expr(expr: &mut Expr, f: &mut dyn FnMut(Expr) -> Expr) {
    let owned = std::mem::replace(expr, Expr::Wildcard);
    *expr = f(owned);
    match expr {
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
        Expr::Unary { expr, .. } => rewrite_expr(expr, f),
        Expr::Binary { left, right, .. } => {
            rewrite_expr(left, f);
            rewrite_expr(right, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                rewrite_expr(a, f);
            }
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(o) = operand {
                rewrite_expr(o, f);
            }
            for (w, t) in branches {
                rewrite_expr(w, f);
                rewrite_expr(t, f);
            }
            if let Some(e) = else_expr {
                rewrite_expr(e, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            rewrite_expr(expr, f);
            for e in list {
                rewrite_expr(e, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            rewrite_expr(expr, f);
            rewrite_query_exprs(subquery, f);
        }
        Expr::Exists { subquery, .. } => rewrite_query_exprs(subquery, f),
        Expr::Between { expr, low, high, .. } => {
            rewrite_expr(expr, f);
            rewrite_expr(low, f);
            rewrite_expr(high, f);
        }
        Expr::ScalarSubquery(q) => rewrite_query_exprs(q, f),
        Expr::IsNull { expr, .. } => rewrite_expr(expr, f),
        Expr::Like { expr, pattern, .. } => {
            rewrite_expr(expr, f);
            rewrite_expr(pattern, f);
        }
    }
}

/// Split a boolean expression into its top-level conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary { left, op: BinaryOp::And, right } = e {
            go(left, out);
            go(right, out);
        } else {
            out.push(e);
        }
    }
    go(expr, &mut out);
    out
}

/// Rebuild a conjunction from parts; returns `None` for an empty list.
pub fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
    parts.into_iter().reduce(Expr::and)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn collects_literals_in_order() {
        let q = parse_query("SELECT a FROM t WHERE x = 1 AND y = 'two' AND z > 3.5").unwrap();
        let lits = collect_literals(&q);
        assert_eq!(lits.len(), 3);
        assert_eq!(*lits[0], Literal::Int(1));
        assert_eq!(*lits[1], Literal::Str("two".into()));
    }

    #[test]
    fn collects_literals_inside_subqueries() {
        let q = parse_query("SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = 7)").unwrap();
        let lits = collect_literals(&q);
        assert_eq!(lits, vec![&Literal::Int(7)]);
    }

    #[test]
    fn collects_columns() {
        let q = parse_query("SELECT a, t.b FROM t WHERE c = 1").unwrap();
        let cols: Vec<String> = collect_columns(&q).iter().map(|c| c.column.clone()).collect();
        assert_eq!(cols, vec!["a", "b", "c"]);
    }

    #[test]
    fn collects_table_names_recursively() {
        let q = parse_query(
            "SELECT * FROM covid c JOIN regions r ON c.state = r.state \
             WHERE x IN (SELECT s FROM other)",
        )
        .unwrap();
        let names = collect_table_names(&q);
        assert_eq!(names, vec!["covid", "regions", "other"]);
    }

    #[test]
    fn aggregate_detection_ignores_subqueries() {
        let q = parse_query("SELECT a FROM t WHERE a > (SELECT avg(a) FROM t)").unwrap();
        assert!(!q.is_aggregating());
        let q = parse_query("SELECT avg(a) FROM t").unwrap();
        assert!(q.is_aggregating());
    }

    #[test]
    fn conjuncts_flatten_and_chain() {
        let q = parse_query("SELECT a FROM t WHERE x = 1 AND y = 2 AND (z = 3 OR w = 4)").unwrap();
        let c = conjuncts(q.where_clause.as_ref().unwrap());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn conjoin_rebuilds() {
        let parts =
            vec![Expr::eq(Expr::col("a"), Expr::int(1)), Expr::eq(Expr::col("b"), Expr::int(2))];
        let e = conjoin(parts).unwrap();
        assert_eq!(conjuncts(&e).len(), 2);
        assert!(conjoin(vec![]).is_none());
    }

    #[test]
    fn rewrite_replaces_literals() {
        let mut q = parse_query("SELECT a FROM t WHERE x = 1").unwrap();
        rewrite_query_exprs(&mut q, &mut |e| {
            if let Expr::Literal(Literal::Int(v)) = e {
                Expr::int(v + 100)
            } else {
                e
            }
        });
        assert_eq!(q.to_string(), "SELECT a FROM t WHERE x = 101");
    }
}
