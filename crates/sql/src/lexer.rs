//! A hand-written SQL lexer.
//!
//! The lexer is a single forward pass over the input bytes that tracks line
//! and column information for error reporting. It produces the token stream
//! consumed by [`crate::parser`].

use crate::error::{ParseError, Result};
use crate::token::{keyword_of, Symbol, Token, TokenKind};

/// Tokenize `input`, returning the token stream terminated by an
/// [`TokenKind::Eof`] token.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Self { src: input.as_bytes(), pos: 0, line: 1, column: 1 }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let (offset, line, column) = (self.pos, self.line, self.column);
            let Some(c) = self.peek() else {
                tokens.push(Token { kind: TokenKind::Eof, offset, line, column });
                return Ok(tokens);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'\'' => self.string()?,
                b'"' => self.quoted_ident()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                _ => self.symbol()?,
            };
            tokens.push(Token { kind, offset, line, column });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.pos, self.line, self.column)
    }

    /// Skip whitespace, `-- line` comments and `/* block */` comments.
    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = (self.pos, self.line, self.column);
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                (self.pos, self.line, self.column) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.error(format!("bad float literal {text:?}: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.error(format!("bad integer literal {text:?}: {e}")))
        }
    }

    fn string(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // '' is an escaped quote inside a string literal.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(TokenKind::Str(out));
                    }
                }
                Some(c) => out.push(c as char),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn quoted_ident(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::Ident(out)),
                Some(c) => out.push(c as char),
                None => return Err(self.error("unterminated quoted identifier")),
            }
        }
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        match keyword_of(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn symbol(&mut self) -> Result<TokenKind> {
        let c = self.bump().expect("symbol() called at eof");
        let sym = match c {
            b'(' => Symbol::LParen,
            b')' => Symbol::RParen,
            b',' => Symbol::Comma,
            b'.' => Symbol::Dot,
            b';' => Symbol::Semicolon,
            b'*' => Symbol::Star,
            b'+' => Symbol::Plus,
            b'-' => Symbol::Minus,
            b'/' => Symbol::Slash,
            b'%' => Symbol::Percent,
            b'=' => Symbol::Eq,
            b'|' if self.peek() == Some(b'|') => {
                self.bump();
                Symbol::Concat
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Symbol::LtEq
                }
                Some(b'>') => {
                    self.bump();
                    Symbol::NotEq
                }
                _ => Symbol::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Symbol::GtEq
                }
                _ => Symbol::Gt,
            },
            b'!' if self.peek() == Some(b'=') => {
                self.bump();
                Symbol::NotEq
            }
            other => return Err(self.error(format!("unexpected character {:?}", other as char))),
        };
        Ok(TokenKind::Symbol(sym))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_case_insensitively() {
        assert_eq!(kinds("select"), vec![TokenKind::Keyword("SELECT"), TokenKind::Eof]);
        assert_eq!(kinds("SeLeCt"), vec![TokenKind::Keyword("SELECT"), TokenKind::Eof]);
    }

    #[test]
    fn lexes_identifiers_preserving_case() {
        assert_eq!(kinds("PhotoObj"), vec![TokenKind::Ident("PhotoObj".into()), TokenKind::Eof]);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5), TokenKind::Eof]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0), TokenKind::Eof]);
        assert_eq!(kinds("2.5e-1"), vec![TokenKind::Float(0.25), TokenKind::Eof]);
    }

    #[test]
    fn dot_after_int_without_digit_is_symbol() {
        assert_eq!(
            kinds("t.a"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Symbol(Symbol::Dot),
                TokenKind::Ident("a".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into()), TokenKind::Eof]);
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                TokenKind::Symbol(Symbol::LtEq),
                TokenKind::Symbol(Symbol::GtEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::Lt),
                TokenKind::Symbol(Symbol::Gt),
                TokenKind::Symbol(Symbol::Eq),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("select -- all of it\n1 /* the\n number */ ,2"),
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Int(1),
                TokenKind::Symbol(Symbol::Comma),
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_position_of_bad_character() {
        let err = tokenize("select\n  $").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 4);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(tokenize("/* abc").is_err());
    }

    #[test]
    fn quoted_identifier_keeps_spaces() {
        assert_eq!(
            kinds("\"case count\""),
            vec![TokenKind::Ident("case count".into()), TokenKind::Eof]
        );
    }
}
