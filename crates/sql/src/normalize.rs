//! Structural normalization of queries.
//!
//! Normalization makes semantically-identical query spellings compare equal,
//! which directly improves DiffTree merging: two analysts' predicates
//! `a = 1 AND b = 2` and `b = 2 AND a = 1` should merge without spurious
//! choice nodes. Normalization:
//!
//! 1. orders the operands of commutative comparisons so the column reference
//!    comes first (`1 = a` becomes `a = 1`, flipping the operator),
//! 2. flattens `AND` chains and sorts conjuncts by a stable structural key,
//! 3. recursively normalizes subqueries and derived tables.
//!
//! `x >= lo AND x <= hi` is *not* rewritten into `BETWEEN` (or vice versa):
//! the DiffTree layer detects both spellings as range predicates.

use crate::ast::*;
use crate::visit::{conjoin, conjuncts};

/// Normalize a query in place (see module docs).
pub fn normalize_query(query: &mut Query) {
    for item in &mut query.projection {
        if let SelectItem::Expr { expr, .. } = item {
            normalize_expr(expr);
        }
    }
    for t in &mut query.from {
        normalize_table_ref(t);
    }
    if let Some(w) = query.where_clause.take() {
        query.where_clause = Some(normalize_predicate(w));
    }
    for g in &mut query.group_by {
        normalize_expr(g);
    }
    // GROUP BY order carries no semantics; sort it for a canonical form.
    query.group_by.sort_by_key(|g| g.to_string());
    if let Some(h) = query.having.take() {
        query.having = Some(normalize_predicate(h));
    }
    for o in &mut query.order_by {
        normalize_expr(&mut o.expr);
    }
}

/// Normalized copy of a query.
pub fn normalized(query: &Query) -> Query {
    let mut q = query.clone();
    normalize_query(&mut q);
    q
}

/// Literal-free normalized copy of a query: every literal constant is
/// replaced by a canonical placeholder (`NULL`), then the query is
/// normalized. Two queries that differ only in their literal values —
/// `a = 1` vs `a = 2`, `d BETWEEN '2021-01-01' AND '2021-02-01'` vs any
/// other date window — produce identical literal-free forms, while any
/// structural difference (another column, operator, grouping, …) keeps
/// them apart.
///
/// This is the per-query basis of the fleet generation-cache fingerprint:
/// in a DiffTree, literal variation becomes the *binding domain* of a
/// widget rather than interface structure, so logs that only differ in
/// literals generate the same interface and may share a cache entry.
///
/// Literals are erased *before* normalization so conjunct sort keys never
/// depend on the erased values.
pub fn literal_free(query: &Query) -> Query {
    let mut q = query.clone();
    crate::visit::rewrite_query_exprs(&mut q, &mut |e| match e {
        Expr::Literal(_) => Expr::Literal(Literal::Null),
        other => other,
    });
    normalize_query(&mut q);
    q
}

fn normalize_table_ref(t: &mut TableRef) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Subquery { query, .. } => normalize_query(query),
        TableRef::Join { left, right, on, .. } => {
            normalize_table_ref(left);
            normalize_table_ref(right);
            if let Some(on) = on {
                normalize_expr(on);
            }
        }
    }
}

/// Normalize a boolean predicate: normalize each conjunct, then sort the
/// conjuncts by a stable key and rebuild a left-deep `AND` chain.
fn normalize_predicate(expr: Expr) -> Expr {
    let mut parts: Vec<Expr> = conjuncts(&expr).into_iter().cloned().collect();
    for p in &mut parts {
        normalize_expr(p);
    }
    parts.sort_by_key(sort_key);
    conjoin(parts).expect("predicate has at least one conjunct")
}

/// Stable ordering key for conjuncts: the printed form, which sorts
/// predicates over the same column next to each other.
fn sort_key(e: &Expr) -> String {
    e.to_string()
}

fn normalize_expr(expr: &mut Expr) {
    crate::visit::rewrite_expr(expr, &mut |e| match e {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            // Put the "structural" operand (column/function) on the left when
            // the left side is a bare literal, flipping the comparison.
            if matches!(*left, Expr::Literal(_)) && !matches!(*right, Expr::Literal(_)) {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => other,
                };
                Expr::Binary { left: right, op: flipped, right: left }
            } else {
                Expr::Binary { left, op, right }
            }
        }
        Expr::ScalarSubquery(mut q) => {
            normalize_query(&mut q);
            Expr::ScalarSubquery(q)
        }
        Expr::InSubquery { expr, mut subquery, negated } => {
            normalize_query(&mut subquery);
            Expr::InSubquery { expr, subquery, negated }
        }
        Expr::Exists { mut subquery, negated } => {
            normalize_query(&mut subquery);
            Expr::Exists { subquery, negated }
        }
        other => other,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn norm(sql: &str) -> String {
        let mut q = parse_query(sql).unwrap();
        normalize_query(&mut q);
        q.to_string()
    }

    #[test]
    fn sorts_conjuncts() {
        assert_eq!(
            norm("SELECT x FROM t WHERE b = 2 AND a = 1"),
            norm("SELECT x FROM t WHERE a = 1 AND b = 2")
        );
    }

    #[test]
    fn flips_literal_first_comparisons() {
        assert_eq!(norm("SELECT x FROM t WHERE 5 < a"), "SELECT x FROM t WHERE a > 5");
        assert_eq!(norm("SELECT x FROM t WHERE 5 = a"), "SELECT x FROM t WHERE a = 5");
    }

    #[test]
    fn normalizes_inside_subqueries() {
        let a = norm("SELECT x FROM t WHERE y IN (SELECT z FROM u WHERE c = 3 AND b = 2)");
        let b = norm("SELECT x FROM t WHERE y IN (SELECT z FROM u WHERE b = 2 AND c = 3)");
        assert_eq!(a, b);
    }

    #[test]
    fn normalization_is_idempotent() {
        let once = norm("SELECT x FROM t WHERE c = 3 AND 1 < a AND b = 2");
        let mut q = parse_query(&once).unwrap();
        normalize_query(&mut q);
        assert_eq!(q.to_string(), once);
    }

    #[test]
    fn preserves_or_structure() {
        // OR operands must not be reordered across the OR.
        let s = norm("SELECT x FROM t WHERE b = 2 OR a = 1");
        assert_eq!(s, "SELECT x FROM t WHERE b = 2 OR a = 1");
    }

    #[test]
    fn keeps_between_spelling() {
        let s = norm("SELECT x FROM t WHERE a BETWEEN 1 AND 2");
        assert!(s.contains("BETWEEN"));
    }

    fn lf(sql: &str) -> String {
        literal_free(&parse_query(sql).unwrap()).to_string()
    }

    #[test]
    fn literal_free_erases_only_literals() {
        assert_eq!(
            lf("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"),
            lf("SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p")
        );
        // Different column: still distinct.
        assert_ne!(
            lf("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"),
            lf("SELECT p, count(*) FROM t WHERE b = 1 GROUP BY p")
        );
        // Different operator: still distinct.
        assert_ne!(lf("SELECT x FROM t WHERE a = 1"), lf("SELECT x FROM t WHERE a > 1"));
    }

    #[test]
    fn literal_free_is_order_stable() {
        // Conjunct order never depends on the erased literal values.
        assert_eq!(
            lf("SELECT x FROM t WHERE a = 9 AND b = 0"),
            lf("SELECT x FROM t WHERE b = 7 AND a = 7")
        );
    }

    #[test]
    fn literal_free_reaches_subqueries_and_between() {
        assert_eq!(
            lf("SELECT x FROM t WHERE y IN (SELECT z FROM u WHERE c = 3) AND a BETWEEN 1 AND 5"),
            lf("SELECT x FROM t WHERE y IN (SELECT z FROM u WHERE c = 8) AND a BETWEEN 2 AND 9")
        );
    }
}
