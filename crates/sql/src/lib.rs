#![warn(missing_docs)]

//! # pi2-sql
//!
//! A self-contained SQL front end for the PI2 reproduction: a lexer, a
//! recursive-descent parser, a typed abstract syntax tree, a pretty-printer
//! whose output round-trips through the parser, a structural normalizer, and
//! visitor utilities.
//!
//! The dialect covers the subset of SQL exercised by the PI2 demonstration
//! scenarios (COVID-19, SDSS, S&P 500): `SELECT` queries with joins,
//! grouping, `HAVING`, ordering, limits, scalar/`IN`/`EXISTS` subqueries
//! (including correlated ones), `BETWEEN`, `CASE`, `LIKE`, arithmetic, and
//! the standard aggregates.
//!
//! ```
//! use pi2_sql::parse_query;
//!
//! let q = parse_query("SELECT state, sum(cases) FROM covid GROUP BY state").unwrap();
//! assert_eq!(q.to_string(), "SELECT state, sum(cases) FROM covid GROUP BY state");
//! ```

pub mod arbitrary;
pub mod ast;
pub mod error;
pub mod format;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::*;
pub use error::{ParseError, Result};
pub use format::format_query;
pub use normalize::{literal_free, normalize_query};
pub use parser::{parse_queries, parse_query};
