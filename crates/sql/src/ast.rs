//! The SQL abstract syntax tree.
//!
//! Every node derives structural equality and hashing (floating-point
//! literals are wrapped in [`F64`], which compares by bit pattern) so that
//! the DiffTree layer can merge and deduplicate subtrees cheaply.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A floating-point literal wrapper that provides total equality and hashing
/// by comparing IEEE-754 bit patterns. NaNs with identical payloads compare
/// equal; `0.0` and `-0.0` do not, which is fine for literal identity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for F64 {}
impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64(v)
    }
}
impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.is_finite() && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A calendar date stored as days since 1970-01-01 (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Date(pub i32);

impl Date {
    /// Build a date from year/month/day. Returns `None` for invalid dates.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        // Days from civil algorithm (Howard Hinnant).
        let y = if month <= 2 { year - 1 } else { year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = ((month as i64) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + (day as i64) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Some(Date((era * 146097 + doe - 719468) as i32))
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u32 = parts.next()?.parse().ok()?;
        let day: u32 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Date::from_ymd(year, month, day)
    }

    /// Decompose into (year, month, day).
    pub fn ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097;
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    /// The date `n` days later.
    pub fn plus_days(self, n: i32) -> Self {
        Date(self.0 + n)
    }
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A literal value appearing in SQL text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Literal {
    /// SQL NULL.
    Null,
    /// Boolean literal/value.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(F64),
    /// String.
    Str(String),
    /// Calendar date.
    Date(Date),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "DATE '{d}'"),
        }
    }
}

/// A possibly-qualified column reference (`t.a` or `a`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self { table: None, column: column.into() }
    }
    /// A table-qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self { table: Some(table.into()), column: column.into() }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let col = crate::printer::ident(&self.column);
        match &self.table {
            Some(t) => write!(f, "{}.{col}", crate::printer::ident(t)),
            None => write!(f, "{col}"),
        }
    }
}

/// Binary operators, in SQL precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation.
    Concat,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }

    /// Binding strength; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }

    /// True for `=, <>, <, <=, >, >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference.
    Column(ColumnRef),
    /// A literal constant.
    Literal(Literal),
    /// `*` inside `count(*)`.
    Wildcard,
    /// Unary `NOT` / `-`.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand expression.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call (aggregate or scalar); `distinct` applies to aggregates.
    Function {
        /// The name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// `DISTINCT` flag.
        distinct: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional `CASE` operand.
        operand: Option<Box<Expr>>,
        /// `WHEN … THEN …` branches.
        branches: Vec<(Expr, Expr)>,
        /// Optional `ELSE` expression.
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// The operand expression.
        expr: Box<Expr>,
        /// The listed alternatives.
        list: Vec<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// The operand expression.
        expr: Box<Expr>,
        /// The nested query.
        subquery: Box<Query>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The nested query.
        subquery: Box<Query>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The operand expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// A scalar subquery `(SELECT ...)`.
    ScalarSubquery(Box<Query>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The operand expression.
        expr: Box<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// The operand expression.
        expr: Box<Expr>,
        /// The LIKE pattern expression.
        pattern: Box<Expr>,
        /// True for the `NOT` form.
        negated: bool,
    },
}

impl Expr {
    /// A bare column-reference expression.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef::bare(name))
    }
    /// A qualified column-reference expression.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column(ColumnRef::qualified(table, name))
    }
    /// Int.
    pub fn int(v: i64) -> Self {
        Expr::Literal(Literal::Int(v))
    }
    /// Float.
    pub fn float(v: f64) -> Self {
        Expr::Literal(Literal::Float(F64(v)))
    }
    /// Str.
    pub fn str(v: impl Into<String>) -> Self {
        Expr::Literal(Literal::Str(v.into()))
    }
    /// Date.
    pub fn date(s: &str) -> Self {
        Expr::Literal(Literal::Date(Date::parse(s).expect("valid date literal")))
    }
    /// Binary.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Self {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }
    /// And.
    pub fn and(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinaryOp::And, right)
    }
    /// Eq.
    pub fn eq(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinaryOp::Eq, right)
    }
    /// Func.
    pub fn func(name: &str, args: Vec<Expr>) -> Self {
        Expr::Function { name: name.to_ascii_lowercase(), args, distinct: false }
    }
    /// Count star.
    pub fn count_star() -> Self {
        Expr::func("count", vec![Expr::Wildcard])
    }

    /// True if this expression (at any depth) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        crate::visit::contains_aggregate(self)
    }

    /// 64-bit structural hash, used for dedup in the DiffTree layer.
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Names of the aggregate functions the dialect understands.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["count", "sum", "avg", "min", "max"];

/// Is `name` (case-insensitive) an aggregate function?
pub fn is_aggregate_function(name: &str) -> bool {
    AGGREGATE_FUNCTIONS.iter().any(|a| a.eq_ignore_ascii_case(name))
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The operand expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// The operand expression.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }
    /// Aliased.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr { expr, alias: Some(alias.into()) }
    }
}

/// Join kinds supported by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Cross join.
    Cross,
}

/// A relation in the `FROM` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableRef {
    /// A named base table, optionally aliased.
    Named {
        /// The name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A derived table `(SELECT ...) alias`.
    Subquery {
        /// The nested query.
        query: Box<Query>,
        /// Optional alias.
        alias: String,
    },
    /// An explicit join.
    Join {
        /// Left operand.
        left: Box<TableRef>,
        /// Right operand.
        right: Box<TableRef>,
        /// The kind.
        kind: JoinKind,
        /// Join condition (`None` for cross joins).
        on: Option<Expr>,
    },
}

impl TableRef {
    /// Named.
    pub fn named(name: impl Into<String>) -> Self {
        TableRef::Named { name: name.into(), alias: None }
    }
    /// Aliased.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef::Named { name: name.into(), alias: Some(alias.into()) }
    }

    /// The name this relation is visible as in the enclosing scope.
    pub fn visible_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// Sort direction for `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SortDir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderByItem {
    /// The operand expression.
    pub expr: Expr,
    /// Sort direction.
    pub dir: SortDir,
}

/// A full `SELECT` query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection.
    pub projection: Vec<SelectItem>,
    /// From.
    pub from: Vec<TableRef>,
    /// Where clause.
    pub where_clause: Option<Expr>,
    /// Group by.
    pub group_by: Vec<Expr>,
    /// Having.
    pub having: Option<Expr>,
    /// Order by.
    pub order_by: Vec<OrderByItem>,
    /// Limit.
    pub limit: Option<u64>,
    /// Offset.
    pub offset: Option<u64>,
}

impl Query {
    /// An empty `SELECT` skeleton to build on.
    pub fn new() -> Self {
        Self {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// True if the query has any aggregate in its projection or a GROUP BY.
    pub fn is_aggregating(&self) -> bool {
        !self.group_by.is_empty()
            || self.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
    }

    /// 64-bit structural hash of the whole query.
    pub fn structural_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Default for Query {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrips_ymd() {
        for &(y, m, d) in
            &[(1970, 1, 1), (2000, 2, 29), (2021, 12, 31), (1969, 12, 31), (2024, 2, 29)]
        {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().0, 1);
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::from_ymd(2021, 2, 29).is_none());
        assert!(Date::from_ymd(2021, 13, 1).is_none());
        assert!(Date::from_ymd(2021, 0, 1).is_none());
        assert!(Date::from_ymd(2021, 4, 31).is_none());
        assert!(Date::parse("2021-1").is_none());
        assert!(Date::parse("2021-01-02-03").is_none());
    }

    #[test]
    fn date_parse_display_roundtrip() {
        let d = Date::parse("2021-12-25").unwrap();
        assert_eq!(d.to_string(), "2021-12-25");
    }

    #[test]
    fn date_plus_days_crosses_month() {
        let d = Date::parse("2021-12-30").unwrap().plus_days(3);
        assert_eq!(d.to_string(), "2022-01-02");
    }

    #[test]
    fn f64_equality_is_bitwise() {
        assert_eq!(F64(1.5), F64(1.5));
        assert_ne!(F64(0.0), F64(-0.0));
        assert_eq!(F64(f64::NAN), F64(f64::NAN));
    }

    #[test]
    fn structural_hash_distinguishes_queries() {
        let a = crate::parse_query("SELECT a FROM t").unwrap();
        let b = crate::parse_query("SELECT b FROM t").unwrap();
        let a2 = crate::parse_query("select a from t").unwrap();
        assert_ne!(a.structural_hash(), b.structural_hash());
        assert_eq!(a.structural_hash(), a2.structural_hash());
    }

    #[test]
    fn is_aggregating_detects_group_by_and_aggregates() {
        assert!(crate::parse_query("SELECT count(*) FROM t").unwrap().is_aggregating());
        assert!(crate::parse_query("SELECT a FROM t GROUP BY a").unwrap().is_aggregating());
        assert!(!crate::parse_query("SELECT a FROM t").unwrap().is_aggregating());
    }
}
