//! Token definitions shared by the lexer and parser.

use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind.
    pub kind: TokenKind,
    /// Byte offset of the token start.
    pub offset: usize,
    /// 1-based line of the token start.
    pub line: usize,
    /// 1-based column of the token start.
    pub column: usize,
}

/// The kinds of tokens the SQL lexer produces.
///
/// Keywords are lexed as [`TokenKind::Keyword`] with an upper-cased name;
/// everything alphabetic that is not a keyword becomes an
/// [`TokenKind::Ident`] preserving its original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word, stored upper-case (`SELECT`, `FROM`, ...).
    Keyword(&'static str),
    /// An identifier (table, column, alias, or function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal with escapes resolved.
    Str(String),
    /// Punctuation and operators.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Operator / punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// L Paren.
    LParen,
    /// R Paren.
    RParen,
    /// Comma.
    Comma,
    /// Dot.
    Dot,
    /// Semicolon.
    Semicolon,
    /// Star.
    Star,
    /// Plus.
    Plus,
    /// Minus.
    Minus,
    /// Slash.
    Slash,
    /// Percent.
    Percent,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||` string concatenation.
    Concat,
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symbol::LParen => "(",
            Symbol::RParen => ")",
            Symbol::Comma => ",",
            Symbol::Dot => ".",
            Symbol::Semicolon => ";",
            Symbol::Star => "*",
            Symbol::Plus => "+",
            Symbol::Minus => "-",
            Symbol::Slash => "/",
            Symbol::Percent => "%",
            Symbol::Eq => "=",
            Symbol::NotEq => "<>",
            Symbol::Lt => "<",
            Symbol::LtEq => "<=",
            Symbol::Gt => ">",
            Symbol::GtEq => ">=",
            Symbol::Concat => "||",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Symbol(s) => write!(f, "{s}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// The set of reserved keywords recognized by the lexer.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET", "AS", "AND",
    "OR", "NOT", "IN", "EXISTS", "BETWEEN", "LIKE", "IS", "NULL", "TRUE", "FALSE", "CASE", "WHEN",
    "THEN", "ELSE", "END", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "DISTINCT",
    "ASC", "DESC", "DATE", "UNION", "ALL",
];

/// Look up a word in the keyword table, case-insensitively.
pub fn keyword_of(word: &str) -> Option<&'static str> {
    let upper = word.to_ascii_uppercase();
    KEYWORDS.iter().copied().find(|k| *k == upper)
}
