//! Cross-run memoization of candidate costing.
//!
//! The interface search re-visits the same DiffTree forest many times —
//! within one MCTS run (transpositions), across that run's parallel
//! worker trees, and across successive `Pi2::generate` calls over the
//! same notebook log. Mapping a forest to candidates and costing each
//! candidate dominates generation latency, so [`CostMemo`] caches the
//! whole `map → choose_best` outcome behind a two-part key:
//!
//! * a **context fingerprint** — everything besides the forest that the
//!   outcome depends on (query log, cost weights, screen, mapper flags),
//!   hashed once per pipeline by the caller;
//! * the forest's order-insensitive `structural_hash`.
//!
//! Entries store the winning interface, its cost breakdown, and the
//! candidate count, so a hit skips both mapping and costing entirely.
//! Storage is lock-sharded for the parallel search's concurrent lookups.

use crate::CostBreakdown;
use parking_lot::Mutex;
use pi2_interface::Interface;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The memoized outcome of mapping a forest and choosing its best
/// candidate. `None`-valued entries (see [`CostMemo::get_or_compute`])
/// record forests whose mapping failed.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedChoice {
    /// The winning candidate interface.
    pub interface: Interface,
    /// Its cost breakdown (may be infinite if inexpressive).
    pub breakdown: CostBreakdown,
    /// How many candidates were enumerated and costed.
    pub candidates_considered: usize,
}

const MEMO_SHARDS: usize = 16;

/// One lock shard: memoized outcomes keyed by `(context, structural hash)`.
/// `None` records a deterministic mapping failure.
type MemoShard = HashMap<(u64, u64), Option<Arc<CostedChoice>>>;

/// A lock-sharded, thread-safe cache of [`CostedChoice`] outcomes keyed by
/// `(context fingerprint, forest structural hash)`.
#[derive(Debug)]
pub struct CostMemo {
    shards: Vec<Mutex<MemoShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CostMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl CostMemo {
    /// An empty memo.
    pub fn new() -> Self {
        CostMemo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Mutex<MemoShard> {
        let mixed = (key.0 ^ key.1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % MEMO_SHARDS]
    }

    /// The memoized outcome for this `(context, forest)` pair, computing
    /// and caching it on a miss. `compute` returning `None` (mapping
    /// failed) is cached too — failure is as deterministic as success.
    ///
    /// Computation happens outside the shard lock; concurrent threads may
    /// race to fill the same key, and whichever insert lands last wins —
    /// benign, because `compute` is a pure function of the key.
    pub fn get_or_compute(
        &self,
        context: u64,
        forest_hash: u64,
        compute: impl FnOnce() -> Option<CostedChoice>,
    ) -> Option<Arc<CostedChoice>> {
        let key = (context, forest_hash);
        if let Some(entry) = self.shard(key).lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = compute().map(Arc::new);
        self.shard(key).lock().insert(key, entry.clone());
        entry
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to map and cost.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized forests (across all contexts).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups served from cache, if any were made.
    pub fn hit_rate(&self) -> Option<f64> {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }
}

/// A stable fingerprint of cost weights (for building context
/// fingerprints): hashes the exact f64 bit patterns, so any weight change
/// invalidates memoized outcomes.
pub fn weights_fingerprint(w: &crate::CostWeights) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in [
        w.viz,
        w.interaction,
        w.layout,
        w.views,
        w.generalization,
        w.redundancy_penalty,
        w.nested_choice_penalty,
    ] {
        v.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Stable, order-sensitive combination of fingerprint parts into one
/// `u64`. The shared building block for composite cache keys (the cost
/// memo's context fingerprint, the fleet generation-cache key): callers
/// hash each input with its own `fingerprint()` helper and combine the
/// parts here, so every layer composes keys the same way.
pub fn combine_fingerprints(parts: &[u64]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    parts.len().hash(&mut h);
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_interface::{Interface, Layout, ScreenSpec};

    fn entry(total: f64) -> CostedChoice {
        CostedChoice {
            interface: Interface {
                charts: Vec::new(),
                widgets: Vec::new(),
                layout: Layout::Vertical(Vec::new()),
                screen: ScreenSpec::default(),
            },
            breakdown: CostBreakdown {
                expressive: total.is_finite(),
                viz: 0.0,
                interaction: 0.0,
                layout: 0.0,
                views: 0.0,
                generalization: 0.0,
                total,
            },
            candidates_considered: 1,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let memo = CostMemo::new();
        let mut computed = 0;
        for _ in 0..3 {
            let got = memo.get_or_compute(1, 42, || {
                computed += 1;
                Some(entry(2.0))
            });
            assert_eq!(got.unwrap().breakdown.total, 2.0);
        }
        assert_eq!(computed, 1);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hit_rate(), Some(2.0 / 3.0));
    }

    #[test]
    fn contexts_do_not_collide() {
        let memo = CostMemo::new();
        memo.get_or_compute(1, 42, || Some(entry(1.0)));
        let other = memo.get_or_compute(2, 42, || Some(entry(9.0)));
        assert_eq!(other.unwrap().breakdown.total, 9.0);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn failures_are_cached() {
        let memo = CostMemo::new();
        let mut computed = 0;
        for _ in 0..2 {
            let got = memo.get_or_compute(0, 7, || {
                computed += 1;
                None
            });
            assert!(got.is_none());
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn combined_fingerprints_are_order_sensitive_and_stable() {
        assert_eq!(combine_fingerprints(&[1, 2, 3]), combine_fingerprints(&[1, 2, 3]));
        assert_ne!(combine_fingerprints(&[1, 2, 3]), combine_fingerprints(&[3, 2, 1]));
        assert_ne!(combine_fingerprints(&[]), combine_fingerprints(&[0]));
    }

    #[test]
    fn weight_changes_change_the_fingerprint() {
        let a = crate::CostWeights::default();
        let mut b = crate::CostWeights::default();
        b.viz += 0.25;
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&b));
        assert_eq!(weights_fingerprint(&a), weights_fingerprint(&crate::CostWeights::default()));
    }
}
