//! Channel/field-type effectiveness rankings (Cleveland–McGill / Bertin /
//! Mackinlay), as the paper's cost model "borrows current best practices".

use pi2_interface::{Channel, Chart, FieldType, Mark};

/// Effectiveness of encoding a field of `field_type` on `channel`,
/// in `[0, 1]` (higher is better). Position is the strongest channel for
/// every type; hue is good for nominal data but poor for quantitative.
pub fn channel_effectiveness(channel: Channel, field_type: FieldType) -> f64 {
    use Channel::*;
    use FieldType::*;
    match (channel, field_type) {
        (X | Y, Quantitative) => 1.0,
        (X | Y, Temporal) => 1.0,
        (X | Y, Ordinal) => 0.95,
        (X | Y, Nominal) => 0.85,
        (Color, Nominal) => 0.80,
        (Color, Ordinal) => 0.65,
        (Color, Temporal) => 0.55,
        (Color, Quantitative) => 0.55,
        (Size, Quantitative) => 0.60,
        (Size, Ordinal) => 0.50,
        (Size, _) => 0.30,
        (Detail, _) => 0.40,
    }
}

/// Penalty for a mark that fits its encodings poorly.
pub fn mark_penalty(chart: &Chart) -> f64 {
    let x = chart.encoding(Channel::X).map(|e| e.field_type);
    let y = chart.encoding(Channel::Y).map(|e| e.field_type);
    let mut p = 0.0;
    match chart.mark {
        Mark::Line | Mark::Area => {
            // Lines need an ordered x axis.
            if matches!(x, Some(FieldType::Nominal)) {
                p += 0.4;
            }
        }
        Mark::Bar => {
            // Bars want a discrete x axis.
            if matches!(x, Some(FieldType::Quantitative)) {
                p += 0.3;
            }
        }
        Mark::Scatter => {
            // Scatter wants two quantitative axes.
            if !matches!(x, Some(FieldType::Quantitative))
                || !matches!(y, Some(FieldType::Quantitative))
            {
                p += 0.2;
            }
        }
        Mark::Heatmap | Mark::Table => {}
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_beats_color_for_quantitative() {
        assert!(
            channel_effectiveness(Channel::X, FieldType::Quantitative)
                > channel_effectiveness(Channel::Color, FieldType::Quantitative)
        );
    }

    #[test]
    fn color_better_for_nominal_than_quantitative() {
        assert!(
            channel_effectiveness(Channel::Color, FieldType::Nominal)
                > channel_effectiveness(Channel::Color, FieldType::Quantitative)
        );
    }

    #[test]
    fn line_over_nominal_x_is_penalized() {
        let chart = Chart {
            id: 0,
            name: "G1".into(),
            title: String::new(),
            mark: Mark::Line,
            encodings: vec![pi2_interface::Encoding {
                channel: Channel::X,
                field: "state".into(),
                field_type: FieldType::Nominal,
            }],
            tree: 0,
            interactions: vec![],
        };
        assert!(mark_penalty(&chart) > 0.0);
    }
}
