#![warn(missing_docs)]

//! # pi2-cost
//!
//! The quantitative interface cost model ℂ(𝕀, ℚ) (paper Figure 6, step ③).
//!
//! The paper: "Quantitative interface evaluation is an active area of
//! research, and PI2 borrows current best practices to develop its cost
//! function." This implementation combines:
//!
//! * a **hard expressiveness constraint** — an interface whose DiffTree
//!   forest cannot express every input query costs infinity;
//! * **visualization effectiveness** — encoding quality scored with a
//!   Cleveland–McGill/Bertin-style channel×field-type ranking, plus mark
//!   appropriateness and overplotting penalties;
//! * **interaction effort** — per-widget/-interaction operation costs
//!   grounded in the paper's own motivating example ("the user needs to
//!   manipulate four separate sliders to pan and zoom" — four sliders cost
//!   far more than one pan/zoom);
//! * **layout fit** — a box-model estimate of the interface's footprint
//!   against the available screen, penalizing overflow and deep nesting;
//! * **view count and generalization** — extra views cost; holes that
//!   generalize to continuous domains earn a small reward, bloated ANYs a
//!   penalty.
//!
//! ```
//! use pi2_cost::{cost, CostWeights};
//! use pi2_difftree::DiffForest;
//! use pi2_interface::{map_forest, MapperConfig};
//!
//! let catalog = pi2_datasets::toy::default_catalog();
//! let queries = pi2_datasets::toy::fig3_queries();
//! let forest = DiffForest::fully_merged(&queries);
//! let candidates = map_forest(&forest, &catalog, &queries, &MapperConfig::default()).unwrap();
//! let breakdown = cost(&candidates[0], &forest, &queries, &catalog, &CostWeights::default());
//! assert!(breakdown.expressive);
//! assert!(breakdown.total.is_finite());
//! ```

pub mod effectiveness;
pub mod memo;

pub use memo::{combine_fingerprints, weights_fingerprint, CostMemo, CostedChoice};

use pi2_difftree::{choices, ChoiceKind, DiffForest};
use pi2_engine::Catalog;
use pi2_interface::{
    Element, Interface, Layout, Mark, ScreenSpec, VizInteraction, Widget, WidgetKind,
};
use pi2_sql::Query;
use serde::{Deserialize, Serialize};

/// Tunable weights for the cost terms, plus the two structural penalty
/// knobs the ablation benchmarks sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostWeights {
    /// Visualization-effectiveness weight.
    pub viz: f64,
    /// Interaction-effort weight.
    pub interaction: f64,
    /// Layout-fit weight.
    pub layout: f64,
    /// View-count weight.
    pub views: f64,
    /// Generalization reward/penalty weight.
    pub generalization: f64,
    /// Penalty per pair of redundant charts (same mark+encodings over
    /// same-shaped trees) — what drives merging similar queries.
    pub redundancy_penalty: f64,
    /// Penalty per choice node nested beneath another choice node
    /// (conditionally-dead controls) — what drives the overview+detail
    /// split instead of one tree with holes under an OPT.
    pub nested_choice_penalty: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            viz: 1.0,
            interaction: 1.0,
            layout: 1.0,
            views: 0.5,
            generalization: 0.5,
            redundancy_penalty: 0.35,
            nested_choice_penalty: 0.2,
        }
    }
}

/// The cost of one candidate interface, by term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Expressive.
    pub expressive: bool,
    /// Visualization-effectiveness weight.
    pub viz: f64,
    /// Interaction-effort weight.
    pub interaction: f64,
    /// Layout-fit weight.
    pub layout: f64,
    /// View-count weight.
    pub views: f64,
    /// Generalization reward/penalty weight.
    pub generalization: f64,
    /// Total.
    pub total: f64,
}

impl CostBreakdown {
    fn total_of(
        weights: &CostWeights,
        expressive: bool,
        viz: f64,
        interaction: f64,
        layout: f64,
        views: f64,
        generalization: f64,
    ) -> Self {
        let total = if expressive {
            weights.viz * viz
                + weights.interaction * interaction
                + weights.layout * layout
                + weights.views * views
                + weights.generalization * generalization
        } else {
            f64::INFINITY
        };
        CostBreakdown { expressive, viz, interaction, layout, views, generalization, total }
    }
}

/// Evaluate ℂ(𝕀, ℚ) for a candidate interface over its forest.
pub fn cost(
    interface: &Interface,
    forest: &DiffForest,
    queries: &[Query],
    catalog: &Catalog,
    weights: &CostWeights,
) -> CostBreakdown {
    let expressive = forest.expresses_all(queries);
    let viz = viz_cost(interface, forest, queries, catalog, weights);
    let interaction = interaction_cost(interface, forest, weights);
    let layout = layout_cost(interface);
    let views = 0.15 * interface.charts.len().saturating_sub(1) as f64;
    let generalization = generalization_cost(forest);
    CostBreakdown::total_of(weights, expressive, viz, interaction, layout, views, generalization)
}

/// Pick the lowest-cost candidate; ties break toward the earlier candidate.
pub fn choose_best(
    candidates: &[Interface],
    forest: &DiffForest,
    queries: &[Query],
    catalog: &Catalog,
    weights: &CostWeights,
) -> Option<(usize, CostBreakdown)> {
    let mut best: Option<(usize, CostBreakdown)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let b = cost(c, forest, queries, catalog, weights);
        if best.as_ref().is_none_or(|(_, bb)| b.total < bb.total) {
            best = Some((i, b));
        }
    }
    best
}

// ---- visualization effectiveness ------------------------------------------

fn viz_cost(
    interface: &Interface,
    forest: &DiffForest,
    queries: &[Query],
    catalog: &Catalog,
    weights: &CostWeights,
) -> f64 {
    let mut total = 0.0;
    // Redundant views: charts with identical mark+encodings over trees of
    // identical *shape* (same query up to literal values) show the same
    // thing for trivially-different queries — the "many similar static
    // visualizations and a lengthy notebook" failure mode of §3.2 Step 1.
    // An overview chart and a windowed detail chart have different shapes
    // (the WHERE window) and are not redundant.
    for (i, a) in interface.charts.iter().enumerate() {
        for b in &interface.charts[i + 1..] {
            let same_shape = forest
                .trees
                .get(a.tree)
                .zip(forest.trees.get(b.tree))
                .is_some_and(|(ta, tb)| ta.shape_hash() == tb.shape_hash());
            if a.mark == b.mark && a.encodings == b.encodings && same_shape {
                total += weights.redundancy_penalty;
            }
        }
    }
    for chart in &interface.charts {
        // Encoding quality.
        if chart.mark == Mark::Table {
            // A table is always expressible but visually weakest.
            total += 0.8;
            continue;
        }
        for enc in &chart.encodings {
            total += 1.0 - effectiveness::channel_effectiveness(enc.channel, enc.field_type);
        }
        total += effectiveness::mark_penalty(chart);

        // Overplotting: estimate the default result's cardinality.
        if let Some(tree) = forest.trees.get(chart.tree) {
            let defaults = pi2_difftree::default_bindings(tree, queries);
            if let Ok(q) = pi2_difftree::lower_query(tree, &defaults) {
                if let Ok(r) = catalog.execute(&q) {
                    let rows = r.len();
                    if chart.mark == Mark::Scatter && rows > 5_000 {
                        total += 0.2;
                    }
                    if chart.mark == Mark::Bar && rows > 100 {
                        total += 0.3;
                    }
                    if rows == 0 {
                        total += 0.4;
                    }
                }
            }
        }
    }
    total
}

// ---- interaction effort -----------------------------------------------------

/// Operation cost of a widget, per the HCI-style ranking the paper's
/// motivating example implies.
pub fn widget_effort(kind: &WidgetKind) -> f64 {
    match kind {
        WidgetKind::Toggle => 0.10,
        WidgetKind::ButtonGroup { .. } => 0.15,
        WidgetKind::Radio { options } => 0.20 + 0.01 * options.len() as f64,
        WidgetKind::Slider { .. } => 0.25,
        WidgetKind::RangeSlider { .. } => 0.30,
        WidgetKind::Tabs { options } => 0.25 + 0.01 * options.len() as f64,
        WidgetKind::MultiSelect { options } => 0.20 + 0.01 * options.len() as f64,
        WidgetKind::Dropdown { options } => 0.35 + 0.002 * options.len() as f64,
        WidgetKind::TextInput => 0.60,
    }
}

/// Operation cost of an in-visualization interaction. Direct manipulation
/// is cheap: this is exactly why Figure 1(c) beats Figure 1(b)'s four
/// sliders.
pub fn interaction_effort(i: &VizInteraction) -> f64 {
    match i {
        VizInteraction::PanZoom { .. } => 0.10,
        VizInteraction::BrushX { .. } => 0.15,
        VizInteraction::ClickBind { .. } => 0.10,
    }
}

fn interaction_cost(interface: &Interface, forest: &DiffForest, weights: &CostWeights) -> f64 {
    let mut total = 0.0;
    for w in &interface.widgets {
        total += widget_effort(&w.kind);
    }
    for c in &interface.charts {
        // One gesture drives every binding of the same kind on the same
        // chart (a single brush reconfigures all linked detail views), so
        // duplicate (kind, field) interactions cost once.
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for i in &c.interactions {
            let key = match i {
                VizInteraction::BrushX { field, .. } => format!("brush:{field}"),
                VizInteraction::PanZoom { .. } => "panzoom".to_string(),
                VizInteraction::ClickBind { field, .. } => format!("click:{field}"),
            };
            if seen.insert(key) {
                total += interaction_effort(i);
            }
        }
    }
    // Choice nodes nested beneath other choice nodes are conditionally
    // dead controls (a hole inside an excluded OPT does nothing) —
    // penalized per occurrence.
    for tree in &forest.trees {
        total += weights.nested_choice_penalty * tree.root.nested_choice_count() as f64;
    }
    // Unmapped choice nodes mean analysis states the user cannot reach from
    // the interface — heavily penalized (but not infinite: the default
    // binding still shows something).
    let mapped: std::collections::HashSet<(usize, u32)> =
        interface.all_targets().iter().map(|t| (t.tree, t.node)).collect();
    for (ti, tree) in forest.trees.iter().enumerate() {
        for ch in choices(tree) {
            if !mapped.contains(&(ti, ch.id)) {
                total += 1.0;
            }
            // Deeply nested choices are harder to understand.
            total += 0.05 * ch.context.depth as f64;
        }
    }
    total
}

// ---- layout -----------------------------------------------------------------

/// Preferred box of an element, in abstract pixels.
fn element_box(e: Element, interface: &Interface) -> (f64, f64) {
    match e {
        Element::Chart(_) => (380.0, 260.0),
        Element::Widget(id) => {
            let w: Option<&Widget> = interface.widgets.iter().find(|w| w.id == id);
            match w.map(|w| &w.kind) {
                Some(WidgetKind::Radio { options }) => (220.0, 22.0 * options.len().max(1) as f64),
                Some(WidgetKind::Tabs { .. }) => (320.0, 36.0),
                Some(WidgetKind::RangeSlider { .. } | WidgetKind::Slider { .. }) => (260.0, 48.0),
                _ => (220.0, 40.0),
            }
        }
    }
}

fn layout_box(l: &Layout, interface: &Interface) -> (f64, f64) {
    match l {
        Layout::Leaf(e) => element_box(*e, interface),
        Layout::Horizontal(xs) => {
            let boxes: Vec<(f64, f64)> = xs.iter().map(|x| layout_box(x, interface)).collect();
            (
                boxes.iter().map(|b| b.0).sum::<f64>() + 8.0 * xs.len().saturating_sub(1) as f64,
                boxes.iter().map(|b| b.1).fold(0.0, f64::max),
            )
        }
        Layout::Vertical(xs) => {
            let boxes: Vec<(f64, f64)> = xs.iter().map(|x| layout_box(x, interface)).collect();
            (
                boxes.iter().map(|b| b.0).fold(0.0, f64::max),
                boxes.iter().map(|b| b.1).sum::<f64>() + 8.0 * xs.len().saturating_sub(1) as f64,
            )
        }
    }
}

fn layout_cost(interface: &Interface) -> f64 {
    let (w, h) = layout_box(&interface.layout, interface);
    let ScreenSpec { width, height } = interface.screen;
    let overflow_x = (w / width as f64 - 1.0).max(0.0);
    let overflow_y = (h / height as f64 - 1.0).max(0.0);
    // Horizontal overflow is worse than vertical (scrolling down is normal
    // in a notebook; scrolling right is not).
    2.0 * overflow_x + 0.5 * overflow_y + 0.02 * interface.layout.depth() as f64
}

// ---- generalization -----------------------------------------------------------

fn generalization_cost(forest: &DiffForest) -> f64 {
    let mut total = 0.0;
    for tree in &forest.trees {
        for ch in choices(tree) {
            match &ch.kind {
                ChoiceKind::Hole { domain, .. } => {
                    if domain.is_continuous() {
                        // Generalized domains let the user explore beyond
                        // the log: a small reward.
                        total -= 0.05;
                    }
                }
                ChoiceKind::Any { options } => {
                    if options.len() > 10 {
                        total += 0.02 * (options.len() - 10) as f64;
                    }
                }
                ChoiceKind::Opt { .. } => {}
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_difftree::rules::all_rules;
    use pi2_interface::{map_forest, MapperConfig};

    fn prepare(forest: &mut DiffForest, catalog: &Catalog) {
        let rules = all_rules(Some(catalog.clone()));
        for tree in &mut forest.trees {
            loop {
                let mut progressed = false;
                for rule in &rules {
                    if ["collapse-literal-any", "generalize-hole-domain"].contains(&rule.name()) {
                        while let Some(&loc) = rule.applications(tree).first() {
                            match rule.apply(tree, loc) {
                                Some(next) => {
                                    *tree = next;
                                    progressed = true;
                                }
                                None => break,
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
    }

    #[test]
    fn panzoom_variant_beats_slider_variant() {
        // The paper's Figure 1 argument: PI2's pan/zoom interface costs
        // less than the Hex-style four-slider interface.
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 400, seed: 3 });
        let queries = pi2_datasets::sdss::demo_queries();
        let mut forest = DiffForest::fully_merged(&queries);
        prepare(&mut forest, &catalog);
        let candidates = map_forest(&forest, &catalog, &queries, &MapperConfig::default()).unwrap();
        let weights = CostWeights::default();

        let panzoom = candidates
            .iter()
            .find(|c| {
                c.charts.iter().any(|ch| {
                    ch.interactions.iter().any(|i| matches!(i, VizInteraction::PanZoom { .. }))
                })
            })
            .expect("pan/zoom candidate");
        let sliders = candidates
            .iter()
            .find(|c| c.widgets.iter().any(|w| matches!(w.kind, WidgetKind::RangeSlider { .. })))
            .expect("slider candidate");
        let cp = cost(panzoom, &forest, &queries, &catalog, &weights);
        let cs = cost(sliders, &forest, &queries, &catalog, &weights);
        assert!(cp.expressive && cs.expressive);
        assert!(cp.total < cs.total, "panzoom {} vs sliders {}", cp.total, cs.total);
    }

    #[test]
    fn inexpressive_forest_costs_infinity() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries: Vec<Query> = ["SELECT p FROM t WHERE a = 1", "SELECT b FROM t"]
            .iter()
            .map(|s| pi2_sql::parse_query(s).unwrap())
            .collect();
        // Forest covering only the first query.
        let forest = DiffForest::singletons(&queries[..1]);
        let candidates = map_forest(&forest, &catalog, &queries, &MapperConfig::default()).unwrap();
        let c = cost(&candidates[0], &forest, &queries, &catalog, &CostWeights::default());
        assert!(!c.expressive);
        assert!(c.total.is_infinite());
    }

    #[test]
    fn fewer_views_cost_less_when_merged() {
        // Two identically-shaped SDSS window queries: one interactive chart
        // beats two redundant statics (the Figure 1 argument).
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 4 });
        let queries = pi2_datasets::sdss::demo_queries();
        let weights = CostWeights::default();

        let mut merged = DiffForest::fully_merged(&queries);
        prepare(&mut merged, &catalog);
        let merged_best = {
            let cands = map_forest(&merged, &catalog, &queries, &MapperConfig::default()).unwrap();
            choose_best(&cands, &merged, &queries, &catalog, &weights).unwrap().1
        };

        let split = DiffForest::singletons(&queries);
        let split_best = {
            let cands = map_forest(&split, &catalog, &queries, &MapperConfig::default()).unwrap();
            choose_best(&cands, &split, &queries, &catalog, &weights).unwrap().1
        };
        assert!(
            merged_best.total < split_best.total,
            "merged {} vs split {}",
            merged_best.total,
            split_best.total
        );
    }

    #[test]
    fn narrow_screen_prefers_vertical_layout() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let forest = DiffForest::singletons(&queries);
        let weights = CostWeights::default();
        let cfg = MapperConfig { screen: ScreenSpec::NARROW, enumerate_variants: false };
        let cands = map_forest(&forest, &catalog, &queries, &cfg).unwrap();
        let (best_idx, _) = choose_best(&cands, &forest, &queries, &catalog, &weights).unwrap();
        // The chosen layout should not put three charts side by side on a
        // 480-px screen.
        let best = &cands[best_idx];
        let horizontal_charts = match &best.layout {
            Layout::Horizontal(xs) => xs.len(),
            Layout::Vertical(xs) => xs
                .iter()
                .map(|l| match l {
                    Layout::Horizontal(h) => h.len(),
                    _ => 1,
                })
                .max()
                .unwrap_or(1),
            _ => 1,
        };
        assert!(horizontal_charts <= 1, "layout {:?}", best.layout);
    }

    #[test]
    fn widget_effort_ordering_matches_paper_intuitions() {
        // toggle < radio < dropdown < text input; pan/zoom is cheapest.
        assert!(
            widget_effort(&WidgetKind::Toggle)
                < widget_effort(&WidgetKind::Radio { options: vec![] })
        );
        assert!(
            widget_effort(&WidgetKind::Radio { options: vec!["a".into()] })
                < widget_effort(&WidgetKind::Dropdown { options: vec!["a".into()] })
        );
        assert!(
            widget_effort(&WidgetKind::Dropdown { options: vec![] })
                < widget_effort(&WidgetKind::TextInput)
        );
        let pz = VizInteraction::PanZoom { x: None, y: None, x_field: None, y_field: None };
        assert!(interaction_effort(&pz) <= 0.10);
        // Four sliders (Hex) cost ≫ one pan/zoom (PI2) — the Figure 1 claim.
        let four_sliders = 4.0
            * widget_effort(&WidgetKind::Slider { min: 0.0, max: 1.0, step: 0.1, temporal: false });
        assert!(four_sliders > 5.0 * interaction_effort(&pz));
    }

    #[test]
    fn unmapped_choice_nodes_are_penalized() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig3_queries();
        let forest = DiffForest::fully_merged(&queries);
        let cands = map_forest(&forest, &catalog, &queries, &MapperConfig::default()).unwrap();
        let full = cost(&cands[0], &forest, &queries, &catalog, &CostWeights::default());
        // Strip all widgets: choices become unreachable.
        let mut stripped = cands[0].clone();
        stripped.widgets.clear();
        let c = cost(&stripped, &forest, &queries, &catalog, &CostWeights::default());
        assert!(c.interaction > full.interaction);
    }
}
