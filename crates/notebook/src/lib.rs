#![warn(missing_docs)]

//! # pi2-notebook
//!
//! A headless notebook substrate: the reproduction's stand-in for the
//! Jupyter Lab extension of paper §3.1. It models exactly the interactions
//! the demo describes:
//!
//! * SQL **cells** that execute against the engine and render result
//!   tables;
//! * a **checkbox** per cell selecting it into the query log;
//! * a **Generate Interface** button ([`Notebook::generate_interface`])
//!   that invokes PI2 on the selected queries;
//! * a *Generated Interfaces* side panel with **version tabs** — each
//!   version archives a snapshot of the input query log and the cell
//!   states, "to adapt to edits and ensure the reproducibility of the
//!   generated interface";
//! * **revert**: going back to the notebook state of a previous version.
//!
//! ```
//! use pi2_notebook::Notebook;
//!
//! let mut nb = Notebook::new(pi2_datasets::toy::default_catalog());
//! let cell = nb.add_cell("SELECT a, count(*) FROM t GROUP BY a");
//! nb.run_cell(cell).unwrap();
//! let v1 = nb.generate_interface().unwrap();
//! assert_eq!(nb.version(v1).unwrap().label(), "V1");
//! ```

use pi2_core::{GeneratedInterface, InterfaceSession, Pi2, Pi2Error};
use pi2_engine::{Catalog, EngineError, ResultSet};
use pi2_sql::Query;
use std::fmt;

/// Identifier of a cell within a notebook.
pub type CellId = usize;

/// One notebook cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Stable identifier.
    pub id: CellId,
    /// The cell's SQL text.
    pub source: String,
    /// The checkbox: include this cell's query in the generation log.
    pub selected: bool,
    /// Result of the most recent execution.
    pub result: Option<ResultSet>,
    /// Error of the most recent execution, if it failed.
    pub error: Option<String>,
    /// Monotone execution counter (like Jupyter's `In [n]`), 0 = never run.
    pub execution_count: usize,
}

/// A generated-interface version in the side panel.
pub struct InterfaceVersion {
    /// 1-based version number (`V1`, `V2`, ... in the paper).
    pub number: usize,
    /// The generation result.
    pub generated: GeneratedInterface,
    /// The archived *Query Log* (collapsible section in the panel).
    pub query_log: Vec<String>,
    /// Snapshot of (source, selected) for every cell at generation time.
    pub cell_snapshot: Vec<(String, bool)>,
}

impl InterfaceVersion {
    /// Display label (`V1`, `V2`, ...).
    pub fn label(&self) -> String {
        format!("V{}", self.number)
    }
}

/// Notebook errors.
///
/// Structured like [`Pi2Error`] and `SessionError`: `#[non_exhaustive]`
/// (downstream matches need a `_` arm), with the underlying parse /
/// engine / generation error carried as a typed field and chained through
/// [`std::error::Error::source`] rather than flattened into a string.
#[derive(Debug)]
#[non_exhaustive]
pub enum NotebookError {
    /// No cell with that id.
    UnknownCell(CellId),
    /// No such interface version.
    UnknownVersion(usize),
    /// A cell's SQL failed to parse. The [`pi2_sql::ParseError`] (with
    /// line/column position) is available via `source()`.
    Parse {
        /// The cell whose source failed to parse.
        cell: CellId,
        /// The structured parse error.
        source: pi2_sql::ParseError,
    },
    /// A cell's query failed to execute. The [`EngineError`] is available
    /// via `source()`.
    Execution {
        /// The cell whose query failed.
        cell: CellId,
        /// The structured engine error.
        source: EngineError,
    },
    /// No cells are selected for generation.
    NothingSelected,
    /// Interface generation failed; the [`Pi2Error`] is available via
    /// `source()`.
    Generation(Pi2Error),
}

impl fmt::Display for NotebookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotebookError::UnknownCell(c) => write!(f, "unknown cell {c}"),
            NotebookError::UnknownVersion(v) => write!(f, "unknown interface version {v}"),
            NotebookError::Parse { cell, source } => {
                write!(f, "cell {cell} failed to parse: {source}")
            }
            NotebookError::Execution { cell, source } => {
                write!(f, "cell {cell} failed to execute: {source}")
            }
            NotebookError::NothingSelected => write!(f, "no cells selected for generation"),
            NotebookError::Generation(e) => write!(f, "interface generation failed: {e}"),
        }
    }
}

impl std::error::Error for NotebookError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NotebookError::Parse { source, .. } => Some(source),
            NotebookError::Execution { source, .. } => Some(source),
            NotebookError::Generation(e) => Some(e),
            _ => None,
        }
    }
}

/// The notebook: cells on the left, generated-interface versions on the
/// right (paper Figure 7's split view).
pub struct Notebook {
    pi2: Pi2,
    cells: Vec<Cell>,
    versions: Vec<InterfaceVersion>,
    executions: usize,
}

impl Notebook {
    /// A notebook whose kernel executes against `catalog` with default PI2
    /// settings.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_pi2(Pi2::builder(catalog).build())
    }

    /// A notebook with a custom-configured generator.
    pub fn with_pi2(pi2: Pi2) -> Self {
        Self { pi2, cells: Vec::new(), versions: Vec::new(), executions: 0 }
    }

    /// The cells, in order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The generated-interface versions, oldest first.
    pub fn versions(&self) -> &[InterfaceVersion] {
        &self.versions
    }

    /// Append a cell containing `source`; cells start selected (the demo
    /// flow selects the queries the analyst wants in the interface).
    pub fn add_cell(&mut self, source: impl Into<String>) -> CellId {
        let id = self.cells.len();
        self.cells.push(Cell {
            id,
            source: source.into(),
            selected: true,
            result: None,
            error: None,
            execution_count: 0,
        });
        id
    }

    fn cell_mut(&mut self, id: CellId) -> Result<&mut Cell, NotebookError> {
        self.cells.get_mut(id).ok_or(NotebookError::UnknownCell(id))
    }

    /// Replace a cell's source (the "refer back to previous cells to edit"
    /// workflow). Stale results are cleared.
    pub fn edit_cell(
        &mut self,
        id: CellId,
        source: impl Into<String>,
    ) -> Result<(), NotebookError> {
        let cell = self.cell_mut(id)?;
        cell.source = source.into();
        cell.result = None;
        cell.error = None;
        Ok(())
    }

    /// Set a cell's selection checkbox.
    pub fn set_selected(&mut self, id: CellId, selected: bool) -> Result<(), NotebookError> {
        self.cell_mut(id)?.selected = selected;
        Ok(())
    }

    /// Execute a cell, storing its result (or error) like a kernel would.
    pub fn run_cell(&mut self, id: CellId) -> Result<&ResultSet, NotebookError> {
        self.executions += 1;
        let count = self.executions;
        let catalog = self.pi2.catalog().clone();
        let cell = self.cell_mut(id)?;
        cell.execution_count = count;
        let query = match pi2_sql::parse_query(&cell.source) {
            Ok(q) => q,
            Err(e) => {
                cell.result = None;
                cell.error = Some(e.to_string());
                return Err(NotebookError::Parse { cell: id, source: e });
            }
        };
        match catalog.execute(&query) {
            Ok(r) => {
                cell.result = Some(r);
                cell.error = None;
                Ok(cell.result.as_ref().expect("just set"))
            }
            Err(e) => {
                cell.result = None;
                cell.error = Some(e.to_string());
                Err(NotebookError::Execution { cell: id, source: e })
            }
        }
    }

    /// Execute every cell top to bottom; stops at the first failure.
    pub fn run_all(&mut self) -> Result<(), NotebookError> {
        for id in 0..self.cells.len() {
            self.run_cell(id)?;
        }
        Ok(())
    }

    /// The parsed queries of the currently selected cells, in cell order.
    pub fn selected_queries(&self) -> Result<Vec<Query>, NotebookError> {
        let mut queries = Vec::new();
        for cell in &self.cells {
            if cell.selected {
                let q = pi2_sql::parse_query(&cell.source)
                    .map_err(|e| NotebookError::Parse { cell: cell.id, source: e })?;
                queries.push(q);
            }
        }
        if queries.is_empty() {
            return Err(NotebookError::NothingSelected);
        }
        Ok(queries)
    }

    /// The **Generate Interface** button: snapshot the selected queries,
    /// invoke PI2, append a new version tab, and return its number.
    pub fn generate_interface(&mut self) -> Result<usize, NotebookError> {
        let queries = self.selected_queries()?;
        let generated = self.pi2.generate(&queries).map_err(NotebookError::Generation)?;
        let number = self.versions.len() + 1;
        self.versions.push(InterfaceVersion {
            number,
            query_log: queries.iter().map(|q| q.to_string()).collect(),
            cell_snapshot: self.cells.iter().map(|c| (c.source.clone(), c.selected)).collect(),
            generated,
        });
        Ok(number)
    }

    /// Look up a version by number (1-based).
    pub fn version(&self, number: usize) -> Result<&InterfaceVersion, NotebookError> {
        self.versions
            .get(number.checked_sub(1).ok_or(NotebookError::UnknownVersion(number))?)
            .ok_or(NotebookError::UnknownVersion(number))
    }

    /// Open an interactive session on a version's interface.
    pub fn open_session(&self, number: usize) -> Result<InterfaceSession, NotebookError> {
        let v = self.version(number)?;
        Ok(self.pi2.session(&v.generated))
    }

    /// Fully revert the notebook's cells and selections to the snapshot
    /// archived with a version (the paper's "go back to, or fully revert,
    /// to a previous analysis").
    pub fn revert_to(&mut self, number: usize) -> Result<(), NotebookError> {
        let snapshot = self.version(number)?.cell_snapshot.clone();
        self.cells = snapshot
            .into_iter()
            .enumerate()
            .map(|(id, (source, selected))| Cell {
                id,
                source,
                selected,
                result: None,
                error: None,
                execution_count: 0,
            })
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_notebook() -> Notebook {
        Notebook::new(pi2_datasets::toy::default_catalog())
    }

    #[test]
    fn cells_execute_and_store_results() {
        let mut nb = toy_notebook();
        let c = nb.add_cell("SELECT count(*) FROM t");
        let r = nb.run_cell(c).unwrap();
        assert_eq!(r.rows[0][0], pi2_engine::Value::Int(200));
        assert_eq!(nb.cells()[c].execution_count, 1);
    }

    #[test]
    fn failed_cell_records_error() {
        let mut nb = toy_notebook();
        let c = nb.add_cell("SELECT nope FROM t");
        assert!(nb.run_cell(c).is_err());
        assert!(nb.cells()[c].error.is_some());
        assert!(nb.cells()[c].result.is_none());
    }

    #[test]
    fn errors_are_structured_and_source_chained() {
        let mut nb = toy_notebook();
        let c = nb.add_cell("NOT SQL AT ALL");
        let err = nb.run_cell(c).unwrap_err();
        assert!(matches!(err, NotebookError::Parse { cell, .. } if cell == c), "{err:?}");
        let source = std::error::Error::source(&err).expect("parse source");
        assert!(source.to_string().contains("line 1"), "{source}");

        let c2 = nb.add_cell("SELECT nope FROM t");
        let err = nb.run_cell(c2).unwrap_err();
        assert!(matches!(err, NotebookError::Execution { cell, .. } if cell == c2), "{err:?}");
        let source = std::error::Error::source(&err).expect("engine source");
        assert!(source.to_string().contains("nope"), "{source}");

        // selected_queries reports the failing cell, not a flat string.
        let mut nb = toy_notebook();
        let bad = nb.add_cell("ALSO NOT SQL");
        match nb.generate_interface().unwrap_err() {
            NotebookError::Parse { cell, .. } => assert_eq!(cell, bad),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn edit_clears_stale_results() {
        let mut nb = toy_notebook();
        let c = nb.add_cell("SELECT count(*) FROM t");
        nb.run_cell(c).unwrap();
        nb.edit_cell(c, "SELECT sum(a) FROM t").unwrap();
        assert!(nb.cells()[c].result.is_none());
    }

    #[test]
    fn generate_uses_selected_cells_only() {
        let mut nb = toy_notebook();
        nb.add_cell("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p");
        nb.add_cell("SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p");
        let c3 = nb.add_cell("SELECT 1");
        nb.set_selected(c3, false).unwrap();
        let v = nb.generate_interface().unwrap();
        assert_eq!(v, 1);
        assert_eq!(nb.version(1).unwrap().query_log.len(), 2);
    }

    #[test]
    fn versions_accumulate_and_archive_logs() {
        let mut nb = toy_notebook();
        let c1 = nb.add_cell("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p");
        nb.generate_interface().unwrap();
        nb.add_cell("SELECT a, count(*) FROM t GROUP BY a");
        nb.generate_interface().unwrap();
        assert_eq!(nb.versions().len(), 2);
        assert_eq!(nb.version(1).unwrap().label(), "V1");
        assert_eq!(nb.version(1).unwrap().query_log.len(), 1);
        assert_eq!(nb.version(2).unwrap().query_log.len(), 2);
        // Editing a cell later does not change archived logs (snapshot).
        nb.edit_cell(c1, "SELECT b FROM t").unwrap();
        assert!(nb.version(1).unwrap().query_log[0].contains("a = 1"));
    }

    #[test]
    fn revert_restores_cells() {
        let mut nb = toy_notebook();
        nb.add_cell("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p");
        nb.generate_interface().unwrap();
        nb.add_cell("SELECT a, count(*) FROM t GROUP BY a");
        nb.edit_cell(0, "SELECT b, count(*) FROM t GROUP BY b").unwrap();
        nb.revert_to(1).unwrap();
        assert_eq!(nb.cells().len(), 1);
        assert!(nb.cells()[0].source.contains("a = 1"));
    }

    #[test]
    fn nothing_selected_is_error() {
        let mut nb = toy_notebook();
        let c = nb.add_cell("SELECT 1");
        nb.set_selected(c, false).unwrap();
        assert!(matches!(nb.generate_interface(), Err(NotebookError::NothingSelected)));
    }

    #[test]
    fn session_opens_from_version() {
        let mut nb = toy_notebook();
        nb.add_cell("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p");
        nb.add_cell("SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p");
        let v = nb.generate_interface().unwrap();
        let session = nb.open_session(v).unwrap();
        assert!(!session.interface().charts.is_empty());
        assert!(nb.open_session(99).is_err());
    }
}
