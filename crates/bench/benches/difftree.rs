//! DiffTree micro-benchmarks: lifting, merging, expressiveness checks, and
//! lowering — the per-candidate costs inside the MCTS loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_difftree::{expresses, lower_query, merge_queries, Bindings, DiffForest};

fn bench_difftree(c: &mut Criterion) {
    let covid = pi2_datasets::covid::demo_queries();
    let sdss = pi2_datasets::sdss::exploration_queries();

    let mut group = c.benchmark_group("difftree");

    group.bench_function("lift/covid-q4", |b| b.iter(|| pi2_difftree::lift_query(&covid[4], 0)));

    group.bench_function("merge/covid-6", |b| {
        let indexed: Vec<(usize, &pi2_sql::Query)> = covid.iter().enumerate().collect();
        b.iter(|| merge_queries(&indexed))
    });

    group.bench_function("merge/sdss-7", |b| {
        let indexed: Vec<(usize, &pi2_sql::Query)> = sdss.iter().enumerate().collect();
        b.iter(|| merge_queries(&indexed))
    });

    let merged = DiffForest::fully_merged(&covid);
    group.bench_function("expresses/covid-q4-in-merged", |b| {
        b.iter(|| expresses(&merged.trees[0], &covid[4]).expect("expressible"))
    });

    group.bench_function("lower/covid-merged-defaults", |b| {
        b.iter(|| lower_query(&merged.trees[0], &Bindings::new()).expect("lowers"))
    });

    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    group.bench_function("canonicalize/covid-merged", |b| {
        b.iter(|| pi2_difftree::rules::canonicalize(&merged.trees[0], Some(&catalog)))
    });

    group.finish();
}

criterion_group!(benches, bench_difftree);
criterion_main!(benches);
