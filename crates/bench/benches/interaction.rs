//! Interaction latency: event → rebound SQL → re-execution → fresh chart
//! data. The Falcon-motivated claim: interactions must stay fluid.

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_core::{Event, Pi2, SearchStrategy};

fn bench_interaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("interaction");

    // SDSS pan/zoom.
    {
        let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let queries = pi2_datasets::sdss::demo_queries();
        let g = pi2.generate(&queries).expect("generates");
        group.bench_function("sdss/pan", |b| {
            let mut session = pi2.session(&g);
            let mut dir = 1.0;
            b.iter(|| {
                dir = -dir;
                session
                    .dispatch(Event::Pan { chart: 0, dx: 0.3 * dir, dy: 0.1 * dir })
                    .expect("pan")
            })
        });
        group.bench_function("sdss/zoom", |b| {
            let mut session = pi2.session(&g);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let factor = if flip { 0.8 } else { 1.25 };
                session.dispatch(Event::Zoom { chart: 0, factor }).expect("zoom")
            })
        });
    }

    // COVID linked brushing (V1 two-tree design, built directly).
    {
        let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
        let queries = pi2_datasets::covid::demo_queries_step(3);
        let overview = pi2_difftree::DiffForest::singletons(&queries[..1]);
        let detail = pi2_difftree::DiffForest::fully_merged(&queries[1..3]);
        let mut forest = pi2_difftree::DiffForest {
            trees: vec![overview.trees[0].clone(), detail.trees[0].clone()],
        };
        for t in &mut forest.trees {
            *t = pi2_difftree::rules::canonicalize(t, Some(&catalog));
        }
        let ifaces = pi2_interface::map_forest(
            &forest,
            &catalog,
            &queries,
            &pi2_interface::MapperConfig::default(),
        )
        .expect("mapper");
        let iface = ifaces
            .into_iter()
            .find(|i| {
                i.charts.iter().any(|c| {
                    c.interactions
                        .iter()
                        .any(|x| matches!(x, pi2_interface::VizInteraction::BrushX { .. }))
                })
            })
            .expect("brush interface");
        let lo = pi2_sql::Date::parse("2021-12-01").expect("date").0 as f64;
        group.bench_function("covid/brush", |b| {
            let mut session =
                pi2_core::SessionBuilder::new(catalog.clone(), forest.clone(), iface.clone())
                    .queries(&queries)
                    .build();
            let mut offset = 0.0;
            b.iter(|| {
                offset = (offset + 1.0) % 20.0;
                session
                    .dispatch(Event::Brush { chart: 0, low: lo + offset, high: lo + offset + 10.0 })
                    .expect("brush")
            })
        });
    }

    // Toy toggle + click.
    {
        let catalog = pi2_datasets::toy::default_catalog();
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let g = pi2.generate(&pi2_datasets::toy::fig2_queries()).expect("generates");
        if let Some(toggle) = g
            .interface
            .widgets
            .iter()
            .find(|w| matches!(w.kind, pi2_interface::WidgetKind::Toggle))
            .map(|w| w.id)
        {
            group.bench_function("toy/toggle", |b| {
                let mut session = pi2.session(&g);
                let mut on = true;
                b.iter(|| {
                    on = !on;
                    session
                        .dispatch(Event::SetWidget {
                            widget: toggle,
                            value: pi2_core::WidgetValue::Bool(on),
                        })
                        .expect("toggle")
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_interaction);
criterion_main!(benches);
