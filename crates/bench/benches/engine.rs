//! Raw engine throughput on the query classes the demo exercises:
//! filtered scans, grouped aggregation, hash joins, and correlated
//! subqueries (with and without the free-variable memo).

use criterion::{criterion_group, criterion_main, Criterion};
use pi2_sql::parse_query;

fn bench_engine(c: &mut Criterion) {
    let covid = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    let sdss = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());

    let mut group = c.benchmark_group("engine");

    let scan = parse_query(
        "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 178.5 AND 180.5 AND dec BETWEEN -1.5 AND 0.5",
    )
    .expect("parse");
    group.bench_function("scan-filter/sdss-5k", |b| {
        b.iter(|| sdss.execute_uncached(&scan).expect("executes"))
    });

    let agg = parse_query("SELECT state, sum(cases), avg(cases) FROM covid GROUP BY state")
        .expect("parse");
    group.bench_function("group-by/covid-3k", |b| {
        b.iter(|| covid.execute_uncached(&agg).expect("executes"))
    });

    let join = parse_query(
        "SELECT r.region, sum(c.cases) FROM covid c JOIN regions r ON c.state = r.state GROUP BY r.region",
    )
    .expect("parse");
    group.bench_function("hash-join/covid-3k", |b| {
        b.iter(|| covid.execute_uncached(&join).expect("executes"))
    });

    // The paper's Q4: joins + correlated subqueries. The engine memoizes
    // subquery executions on their free variables, which is what makes the
    // interactive loop viable.
    let q4 = pi2_datasets::covid::demo_queries()[4].clone();
    group.sample_size(10);
    group.bench_function("correlated-q4/covid-3k", |b| {
        b.iter(|| covid.execute_uncached(&q4).expect("executes"))
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
