//! Generation latency (TR evaluation shape): time to produce an interface
//! per scenario, log size, and search strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi2_core::{Pi2, SearchStrategy};
use pi2_mcts::MctsConfig;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);

    for scenario in pi2_datasets::demo_scenarios() {
        let mut sizes = vec![1, 2, scenario.queries.len()];
        sizes.dedup();
        for n in sizes {
            let log = scenario.queries[..n].to_vec();

            let pi2 =
                Pi2::builder(scenario.catalog.clone()).strategy(SearchStrategy::FullMerge).build();
            group.bench_with_input(
                BenchmarkId::new(format!("{}/full-merge", scenario.name), n),
                &log,
                |b, log| b.iter(|| pi2.generate(log).expect("generates")),
            );

            let pi2_mcts = Pi2::builder(scenario.catalog.clone())
                .strategy(SearchStrategy::Mcts(MctsConfig {
                    iterations: 30,
                    rollout_depth: 2,
                    seed: 1,
                    ..Default::default()
                }))
                .build();
            group.bench_with_input(
                BenchmarkId::new(format!("{}/mcts-30", scenario.name), n),
                &log,
                |b, log| b.iter(|| pi2_mcts.generate(log).expect("generates")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
