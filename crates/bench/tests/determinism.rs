//! Determinism guarantees of the parallel interface search.
//!
//! The contract (see `pi2-mcts`): for a fixed `(seed, workers)` pair the
//! chosen interface is byte-identical across runs, and on logs where every
//! worker converges to the same optimum, any worker count reproduces the
//! sequential baseline's interface (ties in the merge keep worker 0, which
//! runs the sequential trajectory verbatim).

use pi2_core::{GeneratedInterface, Pi2, SearchStrategy};
use pi2_mcts::MctsConfig;
use pi2_sql::Query;

fn generate(
    catalog: &pi2_engine::Catalog,
    log: &[Query],
    workers: usize,
    iterations: usize,
    seed: u64,
) -> GeneratedInterface {
    Pi2::builder(catalog.clone())
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations,
            seed,
            workers,
            ..Default::default()
        }))
        .build()
        .generate(log)
        .expect("log generates")
}

#[test]
fn same_seed_and_workers_reproduce_byte_identical_interfaces() {
    let catalog = pi2_datasets::toy::default_catalog();
    let log = pi2_datasets::toy::fig2_queries();
    for workers in [1usize, 2, 4] {
        let runs: Vec<GeneratedInterface> =
            (0..3).map(|_| generate(&catalog, &log, workers, 60, 11)).collect();
        for g in &runs[1..] {
            assert_eq!(
                format!("{:?}", runs[0].interface),
                format!("{:?}", g.interface),
                "workers={workers}: repeated run produced a different interface"
            );
            assert_eq!(runs[0].forest.structural_hash(), g.forest.structural_hash());
            assert_eq!(runs[0].cost.total, g.cost.total);
        }
    }
}

#[test]
fn worker_counts_agree_with_sequential_on_fig2() {
    let catalog = pi2_datasets::toy::default_catalog();
    let log = pi2_datasets::toy::fig2_queries();
    let sequential = generate(&catalog, &log, 1, 60, 11);
    for workers in [2usize, 4] {
        let parallel = generate(&catalog, &log, workers, 60, 11);
        assert_eq!(
            sequential.interface, parallel.interface,
            "workers={workers} diverged from the sequential baseline on the Fig-2 log"
        );
        assert_eq!(sequential.cost.total, parallel.cost.total);
    }
}

#[test]
fn worker_counts_agree_with_sequential_on_covid() {
    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    let log = pi2_datasets::covid::demo_queries();
    let sequential = generate(&catalog, &log, 1, 96, 11);
    for workers in [2usize, 4] {
        let parallel = generate(&catalog, &log, workers, 96, 11);
        assert_eq!(
            sequential.interface, parallel.interface,
            "workers={workers} diverged from the sequential baseline on the COVID log"
        );
    }
}

#[test]
fn regeneration_over_a_warm_memo_is_also_deterministic() {
    // The cross-run memo must not change results, only latency: a second
    // generate over the same Pi2 reproduces the first interface with a
    // saturated cache hit-rate.
    let catalog = pi2_datasets::toy::default_catalog();
    let log = pi2_datasets::toy::fig2_queries();
    let pi2 = Pi2::builder(catalog)
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: 60,
            seed: 11,
            workers: 2,
            ..Default::default()
        }))
        .build();
    let first = pi2.generate(&log).expect("first run");
    let second = pi2.generate(&log).expect("second run");
    assert_eq!(first.interface, second.interface);
    assert!(second.stats.cache_hit_rate().expect("memo was consulted") > 0.9);
}
