//! `render_delta` frame economics under the SDSS gesture storm: replay
//! the closed dyadic pan/zoom cycle through [`dispatch_with_delta`],
//! serialize every damage delta through the wire codec, and compare its
//! size against the full Vega-Lite-style spec a non-streaming client
//! would re-download per gesture. Reports p50/p99 dispatch+encode
//! latency per event class plus the byte economics, and dumps
//! `BENCH_render.json` for the `bench_check` gate (delta p50 bytes must
//! be ≤ 25% of full-spec p50 bytes).
//!
//! [`dispatch_with_delta`]: pi2_core::InterfaceSession::dispatch_with_delta

use crate::text_table;
use pi2_core::scene::{delta_to_json, Renderer};
use pi2_core::{Event, Pi2, SearchStrategy};
use pi2_render::SpecRenderer;
use pi2_telemetry::LatencyHistogram;
use std::collections::BTreeMap;
use std::time::Instant;

/// The gate `bench_check` enforces: delta p50 bytes / full-spec p50 bytes.
pub const DELTA_BYTES_RATIO_TARGET: f64 = 0.25;

const CYCLES: usize = 30;

fn percentile_bytes(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== render_delta frames vs full-spec re-render (SDSS gesture storm) ==\n\n");

    let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
    let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
    let queries = pi2_datasets::sdss::demo_queries();
    let g = pi2.generate(&queries).expect("sdss interface generates");
    let chart = g.interface.charts.first().expect("sdss chart").id;
    // The interaction-storm closed cycle: dyadic deltas over dyadic
    // witness windows, so every cycle revisits bit-identical states.
    let cycle = vec![
        Event::Pan { chart, dx: 0.25, dy: 0.125 },
        Event::Pan { chart, dx: 0.25, dy: 0.0 },
        Event::Zoom { chart, factor: 2.0 },
        Event::Zoom { chart, factor: 0.5 },
        Event::Pan { chart, dx: -0.25, dy: -0.125 },
        Event::Pan { chart, dx: -0.25, dy: 0.0 },
    ];

    let mut session = pi2.session(&g);
    // A streaming client is attached: first contact takes the snapshot
    // that all subsequent deltas are relative to.
    let (_snapshot, v0) = session.scene_snapshot().expect("initial scene snapshot");
    assert_eq!(v0, 1, "fresh scene starts at version 1");

    let spec = SpecRenderer;
    let mut by_class: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
    let mut all = LatencyHistogram::new();
    let mut delta_bytes: Vec<usize> = Vec::new();
    let mut full_bytes: Vec<usize> = Vec::new();
    let mut empty_deltas = 0usize;
    for _ in 0..CYCLES {
        for event in &cycle {
            let class = event.class();
            let started = Instant::now();
            let (_updates, delta) =
                session.dispatch_with_delta(event.clone()).expect("storm dispatch");
            let frame = delta
                .as_ref()
                .map(|d| serde_json::to_string(&delta_to_json(d)).expect("delta serializes"));
            let elapsed = started.elapsed();
            by_class.entry(class).or_default().record(elapsed);
            all.record(elapsed);
            match frame {
                Some(f) => delta_bytes.push(f.len()),
                None => empty_deltas += 1,
            }
            // What a non-streaming client re-downloads for the same state.
            let full = spec.render_live(&session).expect("full spec renders");
            full_bytes.push(serde_json::to_string(&full).expect("spec serializes").len());
        }
    }

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (class, hist) in by_class.iter().map(|(c, h)| (*c, h)).chain([("all", &all)]) {
        rows.push(vec![
            class.to_string(),
            hist.count().to_string(),
            format!("{:.1}", us(hist.percentile(0.50))),
            format!("{:.1}", us(hist.percentile(0.99))),
            format!("{:.1}", us(hist.mean())),
        ]);
        let fields = hist.to_json();
        let fields = fields.trim_start_matches('{').trim_end_matches('}');
        json_rows.push(format!("{{\"event_class\":\"{class}\",{fields}}}"));
    }
    out.push_str(&text_table(&["class", "events", "p50 µs", "p99 µs", "mean µs"], &rows));

    delta_bytes.sort_unstable();
    full_bytes.sort_unstable();
    let delta_p50 = percentile_bytes(&delta_bytes, 0.50);
    let delta_p99 = percentile_bytes(&delta_bytes, 0.99);
    let full_p50 = percentile_bytes(&full_bytes, 0.50);
    let full_p99 = percentile_bytes(&full_bytes, 0.99);
    let ratio_p50 = delta_p50 as f64 / (full_p50 as f64).max(1.0);
    let met = ratio_p50 <= DELTA_BYTES_RATIO_TARGET;
    out.push_str(&format!(
        "\nPatch frame bytes: p50 {delta_p50}, p99 {delta_p99} ({} frames, {empty_deltas} \
         no-op dispatches).\nFull-spec bytes:   p50 {full_p50}, p99 {full_p99}.\n\
         Delta/full p50 ratio: {ratio_p50:.3} (gate: <= {DELTA_BYTES_RATIO_TARGET}: {}).\n\
         A streaming client pays only the damage each gesture causes; a re-rendering\n\
         client re-downloads every chart's data and encodings each time.\n",
        delta_bytes.len(),
        if met { "met" } else { "MISSED" },
    ));

    let json = format!(
        "{{\"schema_version\":1,\"scenario\":\"sdss-panzoom\",\"rows\":[{}],\
         \"bytes\":{{\"frames\":{},\"empty_deltas\":{},\"delta_p50\":{delta_p50},\
         \"delta_p99\":{delta_p99},\"full_p50\":{full_p50},\"full_p99\":{full_p99},\
         \"ratio_p50\":{ratio_p50:.6},\"ratio_target\":{DELTA_BYTES_RATIO_TARGET},\
         \"ratio_target_met\":{met}}}}}",
        json_rows.join(","),
        delta_bytes.len(),
        empty_deltas,
    );
    let path = std::path::Path::new("target").join("BENCH_render.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &json)) {
        Ok(_) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out
}
