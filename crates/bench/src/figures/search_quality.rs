//! Search quality: interface cost vs. MCTS iteration budget, against the
//! greedy hill-climbing ablation — the technical report's
//! solution-quality-vs-budget curve.

use crate::text_table;
use pi2_core::InterfaceSearch;
use pi2_cost::CostWeights;
use pi2_interface::MapperConfig;
use pi2_mcts::{greedy, mcts, MctsConfig, SearchProblem};

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Search quality: cost vs. iterations, MCTS vs greedy ==\n\n");

    let catalog =
        pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 600, seed: 2 });
    let queries = pi2_datasets::sdss::exploration_queries();
    let problem =
        InterfaceSearch::new(&queries, &catalog, MapperConfig::default(), CostWeights::default());
    let initial_cost = -problem.reward(&problem.initial());

    let mut rows = Vec::new();
    rows.push(vec![
        "initial".into(),
        "-".into(),
        "-".into(),
        format!("{initial_cost:.3}"),
        "-".into(),
    ]);

    for iterations in [10, 25, 50, 100, 200] {
        // Average over seeds: MCTS is stochastic.
        let mut costs = Vec::new();
        let mut found_at = Vec::new();
        for seed in 0..3u64 {
            let (_, stats) = mcts(
                &problem,
                // Rollouts deep enough to complete multi-merge chains
                // (merging an n-query log needs n-1 consecutive merges).
                &MctsConfig { iterations, rollout_depth: 8, seed, ..Default::default() },
            );
            costs.push(-stats.best_reward);
            found_at.push(stats.best_at_iteration);
        }
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            "MCTS".into(),
            iterations.to_string(),
            format!("{:.0}", found_at.iter().sum::<usize>() as f64 / found_at.len() as f64),
            format!("{mean:.3}"),
            format!("{best:.3}"),
        ]);
    }

    for budget in [25, 100, 400] {
        let (_, stats) = greedy(&problem, budget);
        rows.push(vec![
            "greedy".into(),
            budget.to_string(),
            stats.iterations.to_string(),
            format!("{:.3}", -stats.best_reward),
            format!("{:.3}", -stats.best_reward),
        ]);
    }

    out.push_str(&text_table(
        &["searcher", "budget", "best found at", "mean cost", "best cost"],
        &rows,
    ));
    out.push_str(
        "\nShape check: cost decreases with budget; at a matched small budget MCTS is far \
         ahead of greedy (one greedy step exhausts the budget evaluating every neighbor), \
         and with generous budgets both converge near the same optimum.\n",
    );
    out
}
