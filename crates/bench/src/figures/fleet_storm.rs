//! Fleet-cache effectiveness under a 64-client generation storm.
//!
//! Sixty-four clients open notebooks concurrently against one server.
//! Ninety percent share the *same* log fingerprint — most replay the base
//! log verbatim (the `hit` hot path), and one per group sends a true
//! literal-variant that the fleet must respecialize onto the client's own
//! literals (`rebind`) instead of serving the cached artifacts verbatim.
//! The rest carry structurally unique logs that genuinely require a cold
//! search. Each client is timed from `open` through `run_cell` to the
//! `generate` response — the full time-to-interface — and bucketed by how
//! the fleet served it (`hit`, `rebind`, `join`, `miss`).
//!
//! Two headline checks, both enforced by `bench_check`:
//!
//! * **cache-hit p50 time-to-interface < 1 ms** — a served-from-cache
//!   open must feel instant;
//! * **exactly one generation per unique fingerprint** — the single-flight
//!   table collapses every repeated log onto one search (fleet `misses`
//!   equals the number of unique fingerprints, and nothing is shed).
//!
//! Writes `target/BENCH_fleet.json` as a side effect.

use pi2_core::FleetConfig;
use pi2_server::{LocalClient, ServerState};
use pi2_telemetry::LatencyHistogram;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Concurrent clients in the storm.
const CLIENTS: usize = 64;
/// One client in `REPEAT_EVERY` carries a structurally unique log; the
/// rest replay the base log (a 90/10 split at 64 clients).
const REPEAT_EVERY: usize = 10;

/// The base log every repeated client replays. Half the clients swap the
/// two literals and reverse the cell order — the two flips cancel, so
/// every repeated client submits the *identical* log and is served the
/// cached entry verbatim (the sub-millisecond `hit` path under test).
fn base_log(client: usize) -> Vec<String> {
    let a = 1 + (client % 2);
    let b = 3 - a;
    let mut log = vec![
        format!("SELECT p, count(*) FROM t WHERE a = {a} GROUP BY p"),
        format!("SELECT p, count(*) FROM t WHERE a = {b} GROUP BY p"),
    ];
    if client % 2 == 1 {
        log.reverse();
    }
    log
}

/// A true literal-variant of the base log: same structure (same
/// fingerprint, same cache entry) but different literal values, so the
/// fleet must respecialize the cached design onto this client's own
/// literals (`rebind`) rather than serve the leader's artifacts verbatim.
fn rebind_log(client: usize) -> Vec<String> {
    let a = 3 + (client % 2);
    vec![
        format!("SELECT p, count(*) FROM t WHERE a = {a} GROUP BY p"),
        "SELECT p, count(*) FROM t WHERE a = 0 GROUP BY p".to_string(),
    ]
}

/// A structurally unique log for variant `v`: the base log plus `v + 1`
/// extra queries. Fingerprints preserve multiplicity, so each variant is
/// its own cache entry and must run its own cold generation.
fn variant_log(v: usize) -> Vec<String> {
    let mut log = base_log(0);
    for _ in 0..=v {
        log.push("SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p".to_string());
    }
    log
}

/// Open a toy session, run `log`, and generate. Returns the fleet
/// outcome reported by the server and the wall-clock time from `open`
/// to the `generate` response (the client's time-to-interface).
fn time_to_interface(client: &LocalClient, log: &[String]) -> (String, std::time::Duration) {
    let start = Instant::now();
    let opened = client.request(json!({"cmd": "open", "scenario": "toy"}));
    assert_eq!(opened["ok"].as_bool(), Some(true), "open failed: {opened}");
    let session = opened["session"].as_i64().expect("session id");
    for sql in log {
        let ran = client.request(json!({"cmd": "run_cell", "session": session, "sql": sql}));
        assert_eq!(ran["ok"].as_bool(), Some(true), "run_cell failed: {ran}");
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    let elapsed = start.elapsed();
    assert_eq!(generated["ok"].as_bool(), Some(true), "generate failed: {generated}");
    let outcome = generated["fleet"].as_str().unwrap_or("none").to_string();
    (outcome, elapsed)
}

fn histogram_row(outcome: &str, h: &LatencyHistogram) -> Value {
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    json!({
        "outcome": outcome,
        "count": h.count(),
        "p50_us": us(h.percentile(0.50)),
        "p95_us": us(h.percentile(0.95)),
        "p99_us": us(h.percentile(0.99)),
        "mean_us": us(h.mean()),
        "max_us": us(h.max()),
    })
}

/// Regenerate the exhibit; writes `target/BENCH_fleet.json`.
pub fn run() -> String {
    // Generous cold cap: this exhibit measures the cache and the
    // single-flight table, not admission-control shedding.
    let state = Arc::new(ServerState::with_fleet(FleetConfig::new().max_concurrent_cold(CLIENTS)));

    // Prime: one cold generation of the base fingerprint, and the one-off
    // toy catalog build, stay out of the storm measurement.
    let (outcome, _) = time_to_interface(&LocalClient::new(Arc::clone(&state)), &base_log(0));
    assert_eq!(outcome, "miss", "priming generation must be the first cold miss");

    let unique_variants = CLIENTS.div_ceil(REPEAT_EVERY) - 1;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let log = match i % REPEAT_EVERY {
                    r if r == REPEAT_EVERY - 1 => variant_log(i / REPEAT_EVERY),
                    r if r == REPEAT_EVERY - 2 => rebind_log(i),
                    _ => base_log(i),
                };
                time_to_interface(&LocalClient::new(state), &log)
            })
        })
        .collect();

    let mut by_outcome: Vec<(String, LatencyHistogram)> = Vec::new();
    for worker in workers {
        let (outcome, elapsed) = worker.join().expect("storm client");
        match by_outcome.iter_mut().find(|(o, _)| *o == outcome) {
            Some((_, h)) => h.record(elapsed),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(elapsed);
                by_outcome.push((outcome, h));
            }
        }
    }
    by_outcome.sort_by(|a, b| a.0.cmp(&b.0));

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let hit_p50_us = by_outcome
        .iter()
        .find(|(o, _)| o == "hit")
        .map(|(_, h)| us(h.percentile(0.50)))
        .unwrap_or(f64::INFINITY);
    let hit_p50_within_1ms = hit_p50_us < 1000.0;

    // The fleet counters are the single-flight witness: one miss per
    // unique fingerprint (base + variants, prime included), zero sheds.
    // Rebind clients replay the base entry's partition instead of
    // searching, so they add no misses.
    let stats = LocalClient::new(Arc::clone(&state)).request(json!({"cmd": "stats"}));
    let fleet = &stats["stats"]["fleet"];
    let misses = fleet["misses"].as_i64().unwrap_or(0);
    let sheds = fleet["sheds"].as_i64().unwrap_or(i64::MAX);
    let expected_fingerprints = (1 + unique_variants) as i64;
    let one_generation_per_fingerprint = misses == expected_fingerprints && sheds == 0;

    let rows: Vec<Value> = by_outcome.iter().map(|(o, h)| histogram_row(o, h)).collect();
    let doc = json!({
        "schema_version": 1,
        "scenario": "toy-fleet-storm",
        "rows": rows,
        "summary": {
            "clients": CLIENTS,
            "repeated_fraction": 1.0 - (unique_variants as f64 / CLIENTS as f64),
            "unique_fingerprints": expected_fingerprints,
            "cache_hit_p50_us": hit_p50_us,
            "cache_hit_p50_within_1ms": hit_p50_within_1ms,
            "one_generation_per_unique_fingerprint": one_generation_per_fingerprint,
            "rebinds": fleet["rebinds"].clone(),
        },
        "server_stats": stats["stats"].clone(),
    });

    let mut out =
        String::from("Fleet cache under a 64-client generation storm (90% repeated logs)\n");
    out.push_str(&crate::text_table(
        &["outcome", "clients", "p50 us", "p95 us", "p99 us", "mean us", "max us"],
        &by_outcome
            .iter()
            .map(|(o, h)| {
                vec![
                    o.clone(),
                    h.count().to_string(),
                    format!("{:.1}", us(h.percentile(0.50))),
                    format!("{:.1}", us(h.percentile(0.95))),
                    format!("{:.1}", us(h.percentile(0.99))),
                    format!("{:.1}", us(h.mean())),
                    format!("{:.1}", us(h.max())),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str(&format!(
        "\ncache-hit p50 time-to-interface = {hit_p50_us:.1} us (target: < 1000 us) — {}\n",
        if hit_p50_within_1ms { "met" } else { "MISSED" }
    ));
    out.push_str(&format!(
        "generations: {misses} cold for {expected_fingerprints} unique fingerprints, {sheds} shed — {}\n",
        if one_generation_per_fingerprint { "exactly one per fingerprint" } else { "DUPLICATED WORK" }
    ));

    let text = serde_json::to_string_pretty(&doc).unwrap_or_default();
    let path = std::path::Path::new("target").join("BENCH_fleet.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &text)) {
        Ok(()) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out
}
