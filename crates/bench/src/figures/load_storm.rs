//! Thousand-session load storm against the reactor server, over real TCP.
//!
//! This is the scale exhibit for the readiness-driven reactor: it ramps
//! up ≥ 1k concurrent sessions (default 1024; `PI2_LOAD_SESSIONS` scales
//! to 10k) multiplexed over a few dozen connections (`PI2_LOAD_CONNS`,
//! default 64), then drives a measured storm of mixed traffic — ~90%
//! gesture bursts, ~5% regenerates (served by the fleet cache), ~5%
//! session churn (close → reopen → rebuild → regenerate) — and compares
//! the storm's tail latency against a single-session baseline running
//! the *same* op mix on an idle server.
//!
//! The driver is itself a tiny reactor: one thread multiplexing all
//! connections nonblocking, with at most one outstanding request per
//! connection and a small global outstanding cap. The cap is the point —
//! it makes the measurement *closed-loop per lane*, so the reported tail
//! is queueing-at-the-server, not the driver's own convoy. The headline
//! gate (enforced by `bench_check`): storm p99 ≤ 20× single-session p99
//! with ≥ 1k sessions live. Writes `target/BENCH_load.json`.

use pi2_server::{Server, ServerConfig, ServerState, TcpClient};
use pi2_telemetry::LatencyHistogram;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent sessions held live through the storm (the gate needs ≥ 1k).
const DEFAULT_SESSIONS: usize = 1024;
/// TCP connections the sessions are multiplexed over.
const DEFAULT_CONNS: usize = 64;
/// Measured storm operations (requests issued by the scheduler).
const DEFAULT_OPS: usize = 20_000;
/// Baseline operations (same mix, one session, one connection).
const BASELINE_OPS: usize = 2_000;
/// Global outstanding-request cap across all connections.
const OUTSTANDING_CAP: usize = 8;
/// Storm p99 must stay within this factor of the single-session p99.
const P99_BUDGET: f64 = 20.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

/// Deterministic splitmix-style generator: the op schedule must not
/// change between runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// What the in-flight request on a connection is, and what follows it.
/// Churn is a five-request sequence (close → open → 2 cells → generate)
/// threaded through the same lane, one response at a time.
enum ReqKind {
    Gesture,
    Generate,
    ChurnClose { slot: usize },
    ChurnOpen { slot: usize },
    ChurnCell { slot: usize, second: bool },
    ChurnGenerate,
}

impl ReqKind {
    fn bucket(&self) -> usize {
        match self {
            ReqKind::Gesture => 0,
            ReqKind::Generate => 1,
            _ => 2,
        }
    }
}

struct Outstanding {
    kind: ReqKind,
    sent_at: Instant,
}

/// One multiplexed lane of the load driver: a nonblocking socket, its
/// partial-read buffer, and the sessions pinned to it.
struct Lane {
    stream: TcpStream,
    read_buf: Vec<u8>,
    sessions: Vec<i64>,
    outstanding: Option<Outstanding>,
}

struct Metrics {
    /// gesture / generate / churn request latencies.
    by_kind: [LatencyHistogram; 3],
    /// Every measured request.
    all: LatencyHistogram,
    /// `overloaded` responses observed (the server shedding load).
    sheds: u64,
    /// Completed close→reopen→regenerate cycles.
    churn_cycles: u64,
    /// Alternates the slider literal so gestures do real rebind work.
    flips: u64,
}

impl Metrics {
    fn new() -> Self {
        Metrics {
            by_kind: [LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new()],
            all: LatencyHistogram::new(),
            sheds: 0,
            churn_cycles: 0,
            flips: 0,
        }
    }
}

const RAMP_QUERIES: [&str; 2] = [
    "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
];

/// Blocking request/response during ramp and teardown (the storm itself
/// never blocks).
fn request_blocking(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    req: &Value,
) -> Value {
    let mut line = req.to_string();
    line.push('\n');
    writer.write_all(line.as_bytes()).expect("ramp write");
    let mut response = String::new();
    reader.read_line(&mut response).expect("ramp read");
    let v: Value = serde_json::from_str(response.trim()).expect("ramp response json");
    assert_eq!(v["ok"].as_bool(), Some(true), "ramp request failed: {req} -> {v}");
    v
}

/// Open and fully build one toy session over a blocking connection:
/// open → two notebook cells → generate (fleet-cache-served after the
/// first). Returns the session id.
fn ramp_one(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> i64 {
    let opened = request_blocking(writer, reader, &json!({"cmd": "open", "scenario": "toy"}));
    let session = opened["session"].as_i64().expect("session id");
    for sql in RAMP_QUERIES {
        request_blocking(
            writer,
            reader,
            &json!({"cmd": "run_cell", "session": session, "sql": sql}),
        );
    }
    request_blocking(writer, reader, &json!({"cmd": "generate", "session": session}));
    session
}

/// Connect one lane and ramp `share` sessions onto it.
fn ramp_lane(addr: std::net::SocketAddr, share: usize) -> Lane {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream.try_clone().expect("clone");
    let sessions = (0..share).map(|_| ramp_one(&mut writer, &mut reader)).collect();
    stream.set_nonblocking(true).expect("nonblocking");
    Lane { stream, read_buf: Vec::new(), sessions, outstanding: None }
}

fn send(lane: &mut Lane, kind: ReqKind, request: Value) {
    debug_assert!(lane.outstanding.is_none(), "one outstanding request per lane");
    let mut line = request.to_string();
    line.push('\n');
    let sent_at = Instant::now();
    // Requests are a few hundred bytes against an empty socket buffer:
    // one nonblocking write_all suffices in practice, but loop anyway.
    let mut written = 0;
    while written < line.len() {
        match lane.stream.write(&line.as_bytes()[written..]) {
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::yield_now(),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!("load driver write failed: {e}"),
        }
    }
    lane.outstanding = Some(Outstanding { kind, sent_at });
}

/// Issue the next scheduled op on a free lane: ~90% gestures, ~5%
/// regenerates, ~5% churn starts.
fn schedule_op(lane: &mut Lane, lcg: &mut Lcg, m: &mut Metrics) {
    let roll = lcg.next() % 100;
    let slot = (lcg.next() as usize) % lane.sessions.len();
    let session = lane.sessions[slot];
    if roll < 90 {
        m.flips += 1;
        let scalar = if m.flips.is_multiple_of(2) { 1.0 } else { 2.0 };
        send(
            lane,
            ReqKind::Gesture,
            json!({"cmd": "gesture", "session": session, "events": [
                {"type": "set_widget", "widget": 0, "value": {"scalar": scalar}},
            ]}),
        );
    } else if roll < 95 {
        send(lane, ReqKind::Generate, json!({"cmd": "generate", "session": session}));
    } else {
        send(lane, ReqKind::ChurnClose { slot }, json!({"cmd": "close", "session": session}));
    }
}

/// Handle one complete response line on a lane: record its latency and
/// advance a churn sequence if one is in flight.
fn complete(lane: &mut Lane, line: &str, m: &mut Metrics) {
    let response: Value = serde_json::from_str(line).expect("response json");
    let done = lane.outstanding.take().expect("response without a request");
    let elapsed = done.sent_at.elapsed();
    m.by_kind[done.kind.bucket()].record(elapsed);
    m.all.record(elapsed);
    if response["ok"].as_bool() != Some(true) {
        let kind = response["error"]["kind"].as_str().unwrap_or("?");
        assert_eq!(kind, "overloaded", "unexpected error under load: {response}");
        m.sheds += 1;
        // A shed churn step would desync the sequence; sheds only ever
        // apply to queue-full gestures, which need no follow-up.
        assert!(matches!(done.kind, ReqKind::Gesture | ReqKind::Generate));
        return;
    }
    match done.kind {
        ReqKind::ChurnClose { slot } => {
            send(lane, ReqKind::ChurnOpen { slot }, json!({"cmd": "open", "scenario": "toy"}));
        }
        ReqKind::ChurnOpen { slot } => {
            lane.sessions[slot] = response["session"].as_i64().expect("reopened session id");
            let session = lane.sessions[slot];
            send(
                lane,
                ReqKind::ChurnCell { slot, second: false },
                json!({"cmd": "run_cell", "session": session, "sql": RAMP_QUERIES[0]}),
            );
        }
        ReqKind::ChurnCell { slot, second: false } => {
            let session = lane.sessions[slot];
            send(
                lane,
                ReqKind::ChurnCell { slot, second: true },
                json!({"cmd": "run_cell", "session": session, "sql": RAMP_QUERIES[1]}),
            );
        }
        ReqKind::ChurnCell { slot, second: true } => {
            let session = lane.sessions[slot];
            send(lane, ReqKind::ChurnGenerate, json!({"cmd": "generate", "session": session}));
        }
        ReqKind::ChurnGenerate => m.churn_cycles += 1,
        ReqKind::Gesture | ReqKind::Generate => {}
    }
}

/// Pump one lane: read whatever is available, complete any full line.
/// Returns whether anything happened.
fn pump(lane: &mut Lane, m: &mut Metrics) -> bool {
    if lane.outstanding.is_none() {
        return false;
    }
    let mut scratch = [0u8; 4096];
    let mut progress = false;
    loop {
        match lane.stream.read(&mut scratch) {
            Ok(0) => panic!("server closed a load connection mid-storm"),
            Ok(n) => {
                lane.read_buf.extend_from_slice(&scratch[..n]);
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => panic!("load driver read failed: {e}"),
        }
        if lane.read_buf.contains(&b'\n') {
            break;
        }
    }
    while let Some(pos) = lane.read_buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = lane.read_buf.drain(..=pos).collect();
        let line = std::str::from_utf8(&line[..line.len() - 1]).expect("utf8 response");
        complete(lane, line, m);
    }
    progress
}

/// Drive `total_ops` scheduled ops over the lanes with at most `cap`
/// requests outstanding globally (and ≤ 1 per lane), rotating fairly.
fn run_storm(lanes: &mut [Lane], total_ops: usize, cap: usize, m: &mut Metrics) -> Duration {
    let started = Instant::now();
    let deadline = started + Duration::from_secs(600);
    let mut lcg = Lcg(0x9E37_79B9_7F4A_7C15);
    let mut scheduled = 0usize;
    let mut cursor = 0usize;
    let mut idle_passes = 0u32;
    loop {
        let mut progress = false;
        for lane in lanes.iter_mut() {
            if pump(lane, m) {
                progress = true;
            }
        }
        let mut outstanding = lanes.iter().filter(|l| l.outstanding.is_some()).count();
        while outstanding < cap && scheduled < total_ops {
            let Some(idx) = (0..lanes.len())
                .map(|k| (cursor + k) % lanes.len())
                .find(|&i| lanes[i].outstanding.is_none())
            else {
                break;
            };
            cursor = (idx + 1) % lanes.len();
            schedule_op(&mut lanes[idx], &mut lcg, m);
            scheduled += 1;
            outstanding += 1;
            progress = true;
        }
        if scheduled >= total_ops && outstanding == 0 {
            return started.elapsed();
        }
        if progress {
            idle_passes = 0;
        } else {
            assert!(Instant::now() < deadline, "load driver stalled waiting for responses");
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes < 64 {
                std::thread::yield_now();
            } else {
                let exp = (idle_passes - 64).min(5);
                std::thread::sleep(Duration::from_micros(8u64 << exp));
            }
        }
    }
}

/// Close every session on every lane (blocking, pipelined per lane).
fn teardown(lanes: &mut [Lane]) {
    for lane in lanes.iter_mut() {
        lane.stream.set_nonblocking(false).expect("blocking");
        let mut batch = String::new();
        for session in &lane.sessions {
            batch.push_str(&json!({"cmd": "close", "session": session}).to_string());
            batch.push('\n');
        }
        lane.stream.write_all(batch.as_bytes()).expect("teardown write");
        let mut reader = BufReader::new(lane.stream.try_clone().expect("clone"));
        for session in &lane.sessions {
            let mut response = String::new();
            reader.read_line(&mut response).expect("teardown read");
            let v: Value = serde_json::from_str(response.trim()).expect("teardown json");
            assert_eq!(v["ok"].as_bool(), Some(true), "close {session} failed: {v}");
        }
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn histogram_row(phase: &str, h: &LatencyHistogram) -> Value {
    json!({
        "phase": phase,
        "count": h.count(),
        "p50_us": us(h.percentile(0.50)),
        "p95_us": us(h.percentile(0.95)),
        "p99_us": us(h.percentile(0.99)),
        "p999_us": us(h.percentile(0.999)),
        "mean_us": us(h.mean()),
        "max_us": us(h.max()),
    })
}

/// Regenerate the exhibit; writes `target/BENCH_load.json`.
pub fn run() -> String {
    let sessions = env_usize("PI2_LOAD_SESSIONS", DEFAULT_SESSIONS);
    let conns = env_usize("PI2_LOAD_CONNS", DEFAULT_CONNS).min(sessions);
    let ops = env_usize("PI2_LOAD_OPS", DEFAULT_OPS);

    // Phase 1 — single-session baseline: the same op mix (gestures,
    // regenerates, churn) on an idle server, one lane, one in flight.
    let baseline_state = Arc::new(ServerState::new());
    let baseline_server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&baseline_state), ServerConfig::new())
            .expect("bind baseline");
    let mut baseline_lanes = vec![ramp_lane(baseline_server.local_addr(), 1)];
    let mut baseline = Metrics::new();
    run_storm(&mut baseline_lanes, BASELINE_OPS, 1, &mut baseline);
    teardown(&mut baseline_lanes);
    baseline_server.shutdown();
    baseline_server.join();

    // Phase 2 — ramp the fleet: `sessions` toy sessions over `conns`
    // connections, each opened, built (two cells) and generated. The
    // first generate is the only cache miss; the rest are fleet hits.
    let state = Arc::new(ServerState::new());
    let server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&state), ServerConfig::new()).expect("bind");
    let addr = server.local_addr();
    let ramp_started = Instant::now();
    let mut lanes: Vec<Lane> = (0..conns)
        .map(|i| ramp_lane(addr, sessions / conns + usize::from(i < sessions % conns)))
        .collect();
    let ramp_elapsed = ramp_started.elapsed();

    let mut stats_client = TcpClient::connect(addr).expect("stats connect");
    let peak = stats_client.request(json!({"cmd": "stats"})).expect("stats");
    let active_at_peak = peak["stats"]["active_sessions"].as_i64().unwrap_or(-1);
    assert_eq!(active_at_peak, sessions as i64, "ramp did not reach target: {peak}");

    // Phase 3 — the measured storm.
    let mut storm = Metrics::new();
    let storm_elapsed = run_storm(&mut lanes, ops, OUTSTANDING_CAP, &mut storm);

    // Phase 4 — teardown: close everything, then verify nothing leaked.
    teardown(&mut lanes);
    let end = stats_client.request(json!({"cmd": "stats"})).expect("stats");
    let active_at_end = end["stats"]["active_sessions"].as_i64().unwrap_or(-1);
    assert_eq!(active_at_end, 0, "sessions leaked: {end}");
    assert!(state.registry().is_empty(), "registry not empty after teardown");
    server.shutdown();
    server.join();

    let single_p99 = us(baseline.all.percentile(0.99));
    let storm_p99 = us(storm.all.percentile(0.99));
    let ratio = if single_p99 > 0.0 { storm_p99 / single_p99 } else { f64::INFINITY };
    let within = ratio <= P99_BUDGET;
    let requests = storm.all.count();
    let shed_rate = if requests > 0 { storm.sheds as f64 / requests as f64 } else { 0.0 };

    let kind_names = ["storm_gesture", "storm_generate", "storm_churn"];
    let mut rows = vec![histogram_row("single_session", &baseline.all)];
    rows.push(histogram_row("storm", &storm.all));
    for (name, h) in kind_names.iter().zip(&storm.by_kind) {
        rows.push(histogram_row(name, h));
    }
    let doc = json!({
        "schema_version": 1,
        "scenario": "toy-load-storm",
        "rows": rows,
        "summary": {
            "sessions": sessions,
            "connections": conns,
            "outstanding_cap": OUTSTANDING_CAP,
            "measured_requests": requests,
            "churn_cycles": storm.churn_cycles,
            "sheds": storm.sheds,
            "shed_rate": shed_rate,
            "server_overloaded": end["stats"]["overloaded"].as_i64().unwrap_or(-1),
            "ramp_seconds": ramp_elapsed.as_secs_f64(),
            "storm_seconds": storm_elapsed.as_secs_f64(),
            "throughput_rps": requests as f64 / storm_elapsed.as_secs_f64().max(1e-9),
            "single_session_p99_us": single_p99,
            "storm_p99_us": storm_p99,
            "storm_p999_us": us(storm.all.percentile(0.999)),
            "p99_ratio": ratio,
            "p99_within_20x_single_session": within,
            "active_sessions_at_peak": active_at_peak,
            "active_sessions_at_end": active_at_end,
        },
        "server_stats": end["stats"].clone(),
    });

    let mut out = format!(
        "Load storm: {sessions} sessions over {conns} connections, cap {OUTSTANDING_CAP} in flight\n",
    );
    let labeled: Vec<(&str, &LatencyHistogram)> =
        std::iter::once(("single_session", &baseline.all))
            .chain(std::iter::once(("storm", &storm.all)))
            .chain(kind_names.iter().copied().zip(storm.by_kind.iter()))
            .collect();
    out.push_str(&crate::text_table(
        &["phase", "requests", "p50 us", "p95 us", "p99 us", "p99.9 us", "mean us", "max us"],
        &labeled
            .iter()
            .map(|(phase, h)| {
                vec![
                    (*phase).to_string(),
                    h.count().to_string(),
                    format!("{:.1}", us(h.percentile(0.50))),
                    format!("{:.1}", us(h.percentile(0.95))),
                    format!("{:.1}", us(h.percentile(0.99))),
                    format!("{:.1}", us(h.percentile(0.999))),
                    format!("{:.1}", us(h.mean())),
                    format!("{:.1}", us(h.max())),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str(&format!(
        "\nchurn cycles: {} | sheds: {} ({:.3}% of {} requests) | throughput: {:.0} req/s\n",
        storm.churn_cycles,
        storm.sheds,
        shed_rate * 100.0,
        requests,
        requests as f64 / storm_elapsed.as_secs_f64().max(1e-9),
    ));
    out.push_str(&format!(
        "storm p99 / single p99 = {ratio:.2}x (target: <= {P99_BUDGET:.0}x) — {}\n",
        if within { "met" } else { "MISSED" }
    ));

    let text = serde_json::to_string_pretty(&doc).unwrap_or_default();
    let path = std::path::Path::new("target").join("BENCH_load.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &text)) {
        Ok(()) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out
}
