//! One module per paper exhibit. Each `run()` regenerates the exhibit and
//! returns it as printable text; the corresponding `regen_*` binary prints
//! it, and the integration tests assert on its qualitative content (who
//! wins, which interactions appear — the paper's claims).

pub mod ablations;
pub mod fig1_sdss;
pub mod fig2_static;
pub mod fig3_predicates;
pub mod fig4_merged;
pub mod fig5_multiview;
pub mod fig6_pipeline;
pub mod fig7_covid;
pub mod fleet_storm;
pub mod interaction_storm;
pub mod latency;
pub mod load_storm;
pub mod recovery_storm;
pub mod render_delta;
pub mod search_quality;
pub mod server_storm;
pub mod table1;

/// An exhibit generator: renders one paper table or figure as text.
pub type Exhibit = fn() -> String;

/// Every exhibit in paper order: (name, generator).
pub fn all() -> Vec<(&'static str, Exhibit)> {
    vec![
        ("Table 1 — tool comparison", table1::run as Exhibit),
        ("Figure 1 — SDSS: Lux vs Hex vs PI2", fig1_sdss::run),
        ("Figure 2 — example queries and static interfaces", fig2_static::run),
        ("Figure 3 — DiffTree variants for Q1/Q2", fig3_predicates::run),
        ("Figure 4 — merged DiffTree for Q1–Q3", fig4_merged::run),
        ("Figure 5 — multi-view click binding", fig5_multiview::run),
        ("Figure 6 — generation pipeline trace", fig6_pipeline::run),
        ("Figure 7 — COVID-19 walkthrough (V1→V3)", fig7_covid::run),
        ("TR — generation latency", latency::run),
        ("TR — interaction dispatch latency", interaction_storm::run),
        ("TR — server dispatch under client storm", server_storm::run),
        ("TR — fleet cache under generation storm", fleet_storm::run),
        ("TR — reactor under 1k-session load storm", load_storm::run),
        ("TR — crash recovery under session storm", recovery_storm::run),
        ("TR — render_delta frames vs full-spec re-render", render_delta::run),
        ("TR — search quality (MCTS vs greedy)", search_quality::run),
        ("Ablations — cost-model terms", ablations::run),
    ]
}
