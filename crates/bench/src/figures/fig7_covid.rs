//! Figure 7 / §3.2: the COVID-19 use-case walkthrough, replayed end to end
//! in the notebook substrate.
//!
//! * **Step 1** — Jane writes Q1 (overview), then Q2/Q2b (two half-month
//!   detail windows); PI2 produces **V1**: overview G1 + detail G2 linked
//!   by brushing.
//! * **Step 2** — Q3 drills into per-state trends; **V2** keeps the linked
//!   brushing and adds the per-state chart, brushed from the same G1.
//! * **Step 3** — Q4/Q4b filter to above-region-average states in the
//!   South/Northeast (joins + correlated subqueries); **V3** adds a toggle
//!   for the correlated `state IN (…)` structure and buttons for the
//!   region.

use pi2_core::{Event, Pi2, SearchStrategy};
use pi2_interface::{VizInteraction, WidgetKind};
use pi2_mcts::MctsConfig;
use pi2_notebook::Notebook;
use pi2_sql::Date;

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Figure 7: COVID-19 walkthrough in the notebook ==\n\n");

    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    let pi2 = Pi2::builder(catalog)
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: 80,
            rollout_depth: 3,
            seed: 7,
            ..Default::default()
        }))
        .build();
    let mut nb = Notebook::with_pi2(pi2);

    let demo = pi2_datasets::covid::demo_queries();
    let sql: Vec<String> = demo.iter().map(|q| q.to_string()).collect();

    // ---- Step 1: overview + detail windows → V1 -------------------------
    out.push_str("Step 1: overview and detailed look at the dataset\n");
    for s in &sql[..3] {
        let id = nb.add_cell(s.clone());
        let rows = nb.run_cell(id).map(|r| r.len()).unwrap_or(0);
        out.push_str(&format!("  In[{}]: {}…  → {} rows\n", id + 1, &s[..s.len().min(72)], rows));
    }
    let v1 = nb.generate_interface().expect("V1 generates");
    out.push_str(&describe_version(&nb, v1));

    // Brush over G1 to reconfigure the detail window.
    let mut session = nb.open_session(v1).expect("session");
    if let Some(brush_chart) = session
        .interface()
        .charts
        .iter()
        .find(|c| c.interactions.iter().any(|i| matches!(i, VizInteraction::BrushX { .. })))
        .map(|c| c.id)
    {
        let lo = Date::parse("2021-12-20").expect("date").0 as f64;
        let hi = Date::parse("2021-12-28").expect("date").0 as f64;
        let updates = session
            .dispatch(Event::Brush { chart: brush_chart, low: lo, high: hi })
            .expect("brush dispatch");
        out.push_str(&format!(
            "  brushing G1 over 2021-12-20..2021-12-28 updates {} chart(s):\n",
            updates.len()
        ));
        for u in &updates {
            out.push_str(&format!(
                "    G{} now shows: {} ({} rows)\n",
                u.chart + 1,
                u.query,
                u.result.len()
            ));
        }
    }

    // ---- Step 2: drill down to states → V2 --------------------------------
    out.push_str("\nStep 2: drill down into state level\n");
    let q3 = nb.add_cell(sql[3].clone());
    let rows = nb.run_cell(q3).map(|r| r.len()).unwrap_or(0);
    out.push_str(&format!(
        "  In[{}]: {}…  → {} rows\n",
        q3 + 1,
        &sql[3][..sql[3].len().min(72)],
        rows
    ));
    let v2 = nb.generate_interface().expect("V2 generates");
    out.push_str(&describe_version(&nb, v2));

    // The brush should now drive multiple detail charts at once.
    let mut session = nb.open_session(v2).expect("session");
    if let Some(brush_chart) =
        session.interface().charts.iter().find(|c| !c.interactions.is_empty()).map(|c| c.id)
    {
        let lo = Date::parse("2021-12-18").expect("date").0 as f64;
        let hi = Date::parse("2021-12-26").expect("date").0 as f64;
        if let Ok(updates) =
            session.dispatch(Event::Brush { chart: brush_chart, low: lo, high: hi })
        {
            out.push_str(&format!(
                "  one brush on G1 reconfigures {} downstream chart(s) simultaneously\n",
                updates.len()
            ));
        }
    }

    // ---- Step 3: focused region investigation → V3 ------------------------
    out.push_str("\nStep 3: focused region investigation (South / Northeast)\n");
    for s in &sql[4..6] {
        let id = nb.add_cell(s.clone());
        let rows = nb.run_cell(id).map(|r| r.len()).unwrap_or(0);
        out.push_str(&format!("  In[{}]: {}…  → {} rows\n", id + 1, &s[..s.len().min(72)], rows));
    }
    let v3 = nb.generate_interface().expect("V3 generates");
    out.push_str(&describe_version(&nb, v3));

    // Drive V3's widgets: the region buttons and any structural toggle.
    let mut session = nb.open_session(v3).expect("session");
    let widgets = session.interface().widgets.clone();
    for w in &widgets {
        match &w.kind {
            WidgetKind::ButtonGroup { options } | WidgetKind::Radio { options }
                if options.iter().any(|o| o.contains("Northeast")) =>
            {
                let idx = options.iter().position(|o| o.contains("Northeast")).expect("option");
                if let Ok(updates) = session.dispatch(Event::SetWidget {
                    widget: w.id,
                    value: pi2_core::WidgetValue::Pick(idx),
                }) {
                    out.push_str(&format!(
                        "  pressing [{}] switches the region: {} chart(s) update; first now: {}\n",
                        options[idx],
                        updates.len(),
                        updates
                            .first()
                            .map(|u| format!("{} rows", u.result.len()))
                            .unwrap_or_default()
                    ));
                }
            }
            WidgetKind::Toggle => {
                if let Ok(updates) = session.dispatch(Event::SetWidget {
                    widget: w.id,
                    value: pi2_core::WidgetValue::Bool(false),
                }) {
                    out.push_str(&format!(
                        "  toggling off [{}] simplifies the query: {} chart(s) update\n",
                        w.label.chars().take(48).collect::<String>(),
                        updates.len()
                    ));
                }
                let _ = session.dispatch(Event::SetWidget {
                    widget: w.id,
                    value: pi2_core::WidgetValue::Bool(true),
                });
            }
            _ => {}
        }
    }

    // Version history (the side panel's tabs).
    out.push_str("\nGenerated Interfaces panel:\n");
    for v in nb.versions() {
        out.push_str(&format!(
            "  {}: {} charts, {} widgets, {} viz interactions — query log of {} archived\n",
            v.label(),
            v.generated.interface.charts.len(),
            v.generated.interface.widgets.len(),
            v.generated.interface.interaction_count(),
            v.query_log.len(),
        ));
    }
    out
}

fn describe_version(nb: &Notebook, number: usize) -> String {
    let v = nb.version(number).expect("version exists");
    let g = &v.generated;
    let mut s = format!(
        "  => {} generated in {}: {} tree(s), {} chart(s), cost {:.3}\n",
        v.label(),
        crate::fmt_duration(g.stats.elapsed),
        g.forest.trees.len(),
        g.interface.charts.len(),
        g.cost.total,
    );
    for c in &g.interface.charts {
        s.push_str(&format!(
            "     {}: {} ({:?}){}\n",
            c.name,
            c.title,
            c.mark,
            if c.interactions.is_empty() {
                String::new()
            } else {
                format!(
                    " ⚡{}",
                    c.interactions.iter().map(|i| i.kind_name()).collect::<Vec<_>>().join(",")
                )
            }
        ));
    }
    for w in &g.interface.widgets {
        s.push_str(&format!(
            "     widget: {} ({})\n",
            w.label.chars().take(56).collect::<String>(),
            w.kind.kind_name()
        ));
    }
    s
}
