//! Generation latency vs. query-log size (the technical report's
//! quantitative evaluation shape): how long PI2 takes to produce an
//! interface as the log grows, per scenario and strategy — plus the
//! parallel-search speedup table and a `BENCH_latency.json` dump of every
//! measured row for trend tracking.

use crate::{fmt_duration, text_table};
use pi2_core::{GeneratedInterface, Pi2, SearchStrategy};
use pi2_mcts::MctsConfig;
use pi2_sql::Query;
use std::time::Instant;

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Generation latency vs. query-log size ==\n\n");

    let mut rows = Vec::new();
    for scenario in pi2_datasets::demo_scenarios() {
        for n in 1..=scenario.queries.len() {
            let log = &scenario.queries[..n];
            for (strategy_name, strategy) in [
                ("full-merge", SearchStrategy::FullMerge),
                (
                    "mcts-60",
                    SearchStrategy::Mcts(MctsConfig {
                        iterations: 60,
                        rollout_depth: 3,
                        seed: 1,
                        ..Default::default()
                    }),
                ),
            ] {
                let pi2 = Pi2::builder(scenario.catalog.clone()).strategy(strategy).build();
                let start = Instant::now();
                let result = pi2.generate(log);
                let elapsed = start.elapsed();
                match result {
                    Ok(g) => rows.push(vec![
                        scenario.name.to_string(),
                        n.to_string(),
                        strategy_name.to_string(),
                        fmt_duration(elapsed),
                        g.forest.trees.len().to_string(),
                        format!("{:.3}", g.cost.total),
                    ]),
                    Err(e) => rows.push(vec![
                        scenario.name.to_string(),
                        n.to_string(),
                        strategy_name.to_string(),
                        fmt_duration(elapsed),
                        "-".into(),
                        format!("error: {e}"),
                    ]),
                }
            }
        }
    }
    out.push_str(&text_table(
        &["scenario", "#queries", "strategy", "time", "trees", "cost"],
        &rows,
    ));
    out.push_str(
        "\nShape check: time grows with log size and search budget but stays interactive \
         (sub-second for full-merge, seconds for MCTS at demo scale).\n",
    );
    out.push('\n');
    out.push_str(&parallel_speedup());
    out
}

/// A 12-query COVID exploration log (the "8–16 query" regime of the
/// acceptance criteria): overview, six detail windows, three per-state
/// drill-downs, and two single-state timelines. Window and state literals
/// vary while the query *shapes* repeat, which is exactly the workload the
/// search's transposition/reward caches are built for.
fn speedup_log() -> Vec<Query> {
    let mut sqls =
        vec!["SELECT date, sum(cases) AS cases FROM covid GROUP BY date ORDER BY date".to_string()];
    for (lo, hi) in [
        ("2021-12-01", "2021-12-15"),
        ("2021-12-16", "2021-12-31"),
        ("2021-12-08", "2021-12-22"),
        ("2021-12-01", "2021-12-31"),
        ("2021-12-05", "2021-12-12"),
        ("2021-12-20", "2021-12-27"),
    ] {
        sqls.push(format!(
            "SELECT date, sum(cases) AS cases FROM covid \
             WHERE date BETWEEN DATE '{lo}' AND DATE '{hi}' GROUP BY date ORDER BY date"
        ));
    }
    for (lo, hi) in
        [("2021-12-01", "2021-12-15"), ("2021-12-16", "2021-12-31"), ("2021-12-08", "2021-12-22")]
    {
        sqls.push(format!(
            "SELECT date, state, sum(cases) AS cases FROM covid \
             WHERE date BETWEEN DATE '{lo}' AND DATE '{hi}' GROUP BY date, state ORDER BY date"
        ));
    }
    for state in ["New York", "Texas"] {
        sqls.push(format!(
            "SELECT date, sum(cases) AS cases FROM covid WHERE state = '{state}' \
             GROUP BY date ORDER BY date"
        ));
    }
    sqls.iter()
        .map(|s| pi2_sql::parse_query(s).unwrap_or_else(|e| panic!("bad speedup query {s:?}: {e}")))
        .collect()
}

fn generate_with_workers(
    catalog: &pi2_engine::Catalog,
    log: &[Query],
    workers: usize,
    per_worker_iterations: usize,
) -> (Pi2, GeneratedInterface, std::time::Duration) {
    let pi2 = Pi2::builder(catalog.clone())
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: per_worker_iterations,
            seed: 11,
            workers,
            ..Default::default()
        }))
        .build();
    let start = Instant::now();
    let g = pi2.generate(log).expect("speedup log generates");
    let elapsed = start.elapsed();
    (pi2, g, elapsed)
}

/// The parallel-search speedup exhibit: equal *total* iteration budget
/// split across root-parallel workers, cold (fresh memo) and warm
/// (regeneration over the same generator, the notebook's V1→V2→V3 flow).
fn parallel_speedup() -> String {
    const TOTAL_BUDGET: usize = 96;
    let mut out = String::new();
    out.push_str("== Parallel search speedup (12-query COVID log) ==\n\n");

    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    let log = speedup_log();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut baseline: Option<(std::time::Duration, GeneratedInterface)> = None;
    let mut speedup_cold = 0.0;
    let mut speedup_warm = 0.0;
    for workers in [1usize, 2, 4] {
        let per_worker = TOTAL_BUDGET / workers;
        let (pi2, g, cold) = generate_with_workers(&catalog, &log, workers, per_worker);
        // Regenerate over the same Pi2: the cross-run memo answers the
        // repeated forests, as it does when a notebook cell is re-run.
        let start = Instant::now();
        let g2 = pi2.generate(&log).expect("regeneration");
        let warm = start.elapsed();
        // Determinism: a fresh generator with the identical (seed, workers)
        // config must reproduce the interface byte for byte.
        let (_, g3, _) = generate_with_workers(&catalog, &log, workers, per_worker);
        let deterministic = g.interface == g3.interface && g2.interface == g.interface;
        let base_cold = baseline.as_ref().map(|(d, _)| *d).unwrap_or(cold);
        if workers == 4 {
            speedup_cold = base_cold.as_secs_f64() / cold.as_secs_f64().max(1e-9);
            speedup_warm = base_cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        }
        rows.push(vec![
            workers.to_string(),
            per_worker.to_string(),
            fmt_duration(cold),
            fmt_duration(warm),
            format!("{:.0}%", g2.stats.cache_hit_rate().unwrap_or(0.0) * 100.0),
            format!(
                "{:.0}%",
                g.stats.search.as_ref().and_then(|s| s.cache_hit_rate()).unwrap_or(0.0) * 100.0
            ),
            format!("{:.4}", g.cost.total),
            if deterministic { "yes" } else { "NO" }.to_string(),
        ]);
        json_rows.push(format!(
            "{{\"workers\":{workers},\"per_worker_iterations\":{per_worker},\
             \"cold_ms\":{:.3},\"warm_ms\":{:.3},\"deterministic\":{deterministic},\
             \"cost\":{:.4},\"stats\":{}}}",
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            g.cost.total,
            g2.stats.to_json()
        ));
        if baseline.is_none() {
            baseline = Some((cold, g));
        }
    }
    out.push_str(&text_table(
        &[
            "workers",
            "iters/worker",
            "cold",
            "warm (regen)",
            "memo hit",
            "reward-cache hit",
            "cost",
            "deterministic",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\n4-worker speedup vs the sequential baseline (equal seed): cold {speedup_cold:.2}x, \
         warm regeneration {speedup_warm:.2}x. Host has {} core(s) — cold scaling needs real \
         cores (workers share one reward cache, so each extra core attacks the same budget), \
         while the warm win comes from the cross-run cost memo and holds on any host. \
         Worker counts are free to find *better* interfaces than the baseline (strictly lower \
         cost wins the merge); identical (seed, workers) always reproduces the same one.\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));

    let json = format!("[{}]", json_rows.join(","));
    let path = std::path::Path::new("target").join("BENCH_latency.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &json)) {
        Ok(_) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out
}
