//! Generation latency vs. query-log size (the technical report's
//! quantitative evaluation shape): how long PI2 takes to produce an
//! interface as the log grows, per scenario and strategy.

use crate::{fmt_duration, text_table};
use pi2_core::{Pi2, SearchStrategy};
use pi2_mcts::MctsConfig;
use std::time::Instant;

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Generation latency vs. query-log size ==\n\n");

    let mut rows = Vec::new();
    for scenario in pi2_datasets::demo_scenarios() {
        for n in 1..=scenario.queries.len() {
            let log = &scenario.queries[..n];
            for (strategy_name, strategy) in [
                ("full-merge", SearchStrategy::FullMerge),
                (
                    "mcts-60",
                    SearchStrategy::Mcts(MctsConfig {
                        iterations: 60,
                        rollout_depth: 3,
                        seed: 1,
                        ..Default::default()
                    }),
                ),
            ] {
                let pi2 = Pi2::builder(scenario.catalog.clone()).strategy(strategy).build();
                let start = Instant::now();
                let result = pi2.generate(log);
                let elapsed = start.elapsed();
                match result {
                    Ok(g) => rows.push(vec![
                        scenario.name.to_string(),
                        n.to_string(),
                        strategy_name.to_string(),
                        fmt_duration(elapsed),
                        g.forest.trees.len().to_string(),
                        format!("{:.3}", g.cost.total),
                    ]),
                    Err(e) => rows.push(vec![
                        scenario.name.to_string(),
                        n.to_string(),
                        strategy_name.to_string(),
                        fmt_duration(elapsed),
                        "-".into(),
                        format!("error: {e}"),
                    ]),
                }
            }
        }
    }
    out.push_str(&text_table(&["scenario", "#queries", "strategy", "time", "trees", "cost"], &rows));
    out.push_str(
        "\nShape check: time grows with log size and search budget but stays interactive \
         (sub-second for full-merge, seconds for MCTS at demo scale).\n",
    );
    out
}
