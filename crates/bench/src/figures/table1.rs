//! Table 1: comparison among tools.
//!
//! The paper's table is a capability matrix over Lux, Count, Hex, and PI2.
//! We print the declared matrix *and* verify it empirically: each tool's
//! generation model runs on all three demo scenarios, and the feature
//! columns are measured from the emitted interfaces.

use crate::text_table;
use pi2_baselines::{all_tools, expresses_log, is_interactive};

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Table 1: Comparison among different tools ==\n\n");

    // Declared capability matrix.
    let tools = all_tools();
    let rows: Vec<Vec<String>> = tools
        .iter()
        .map(|t| {
            let c = t.capabilities();
            vec![
                c.tool.to_string(),
                c.visualizations.to_string(),
                c.widgets.to_string(),
                c.viz_interactions.to_string(),
                if c.structural_widgets { "yes" } else { "no" }.to_string(),
                if c.multi_query { "yes" } else { "no" }.to_string(),
                if c.layout_aware { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&text_table(
        &[
            "tool",
            "visualizations",
            "widgets",
            "viz interactions",
            "structural widgets",
            "multi-query",
            "layout-aware",
        ],
        &rows,
    ));

    // Empirical verification on the three demo scenarios.
    out.push_str("\nMeasured on the demo scenarios (charts / widgets / viz-interactions / manual steps / expresses log):\n\n");
    for scenario in pi2_datasets::demo_scenarios() {
        out.push_str(&format!(
            "-- scenario: {} ({} queries) --\n",
            scenario.name,
            scenario.queries.len()
        ));
        let mut rows = Vec::new();
        for tool in all_tools() {
            match tool.generate(&scenario.queries, &scenario.catalog) {
                Ok(o) => {
                    let s = o.interface.feature_summary();
                    rows.push(vec![
                        o.tool.to_string(),
                        format!("{} (+{} tables)", s.charts, s.tables),
                        s.widgets.to_string(),
                        s.viz_interactions.to_string(),
                        o.manual_steps.to_string(),
                        if expresses_log(&o, &scenario.queries) { "yes" } else { "NO" }.to_string(),
                        if is_interactive(&o) { "yes" } else { "no" }.to_string(),
                    ]);
                }
                Err(e) => rows.push(vec![
                    tool.name().to_string(),
                    format!("error: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]),
            }
        }
        out.push_str(&text_table(
            &["tool", "charts", "widgets", "viz-int", "manual", "expresses log", "interactive"],
            &rows,
        ));
        out.push('\n');
    }
    out
}
