//! Crash-recovery storm: 1k journaled sessions killed mid-storm, then
//! recovered, resumed, and byte-compared against their pre-crash renders.
//!
//! The exhibit ramps `PI2_RECOVERY_SESSIONS` (default 1000) toy sessions
//! on a journaled server (checkpoint cadence 2, so every ramped session
//! is checkpointed), captures each session's render as the control, then
//! drives a *same-value* gesture storm — the slider is set to the value
//! it already holds, so every journal-replay prefix of the storm renders
//! identically — and crashes the server partway through by dropping it
//! with no clean close. On-disk state at that instant is exactly what
//! `kill -9` leaves (the true SIGKILL path is exercised by
//! `pi2-server --recovery-smoke`); recovery is then timed end to end,
//! every session is resumed by token, and its render must match the
//! control byte for byte. A final close-everything + second crash +
//! third recovery proves tombstones hold under load: zero sessions and
//! zero checkpoint files may survive.
//!
//! Gates (enforced by `bench_check` on `target/BENCH_recovery.json`):
//! 100% of sessions recovered with byte-identical renders, per-session
//! resume+render p99 ≤ 2s, and zero recovered-session leakage after
//! close.

use pi2_core::prelude::FleetConfig;
use pi2_server::{JournalConfig, LocalClient, ServerState};
use pi2_telemetry::LatencyHistogram;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_SESSIONS: usize = 1000;
/// Per-session resume+render p99 gate, in milliseconds.
const RESUME_P99_BUDGET_MS: f64 = 2_000.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn ok(client: &LocalClient, request: Value) -> Value {
    let response = client.request(request);
    assert_eq!(response["ok"].as_bool(), Some(true), "{response}");
    response
}

fn render_text(client: &LocalClient, session: u64) -> String {
    ok(client, json!({"cmd": "render", "session": session}))["text"]
        .as_str()
        .expect("render text")
        .to_string()
}

fn journaled(dir: &std::path::Path) -> (LocalClient, pi2_server::RecoveryReport) {
    let config = JournalConfig::new(dir).checkpoint_every(2).compact_bytes(256 << 20);
    let (state, report) =
        ServerState::with_journal(FleetConfig::default(), config).expect("with_journal");
    (LocalClient::new(Arc::new(state)), report)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Regenerate the exhibit; writes `target/BENCH_recovery.json`.
pub fn run() -> String {
    let sessions = env_usize("PI2_RECOVERY_SESSIONS", DEFAULT_SESSIONS);
    let dir = std::env::temp_dir().join(format!("pi2-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Phase 1: ramp N journaled sessions and capture controls ----------
    let ramp_started = Instant::now();
    let (client, _) = journaled(&dir);
    let mut live: Vec<(u64, String)> = Vec::with_capacity(sessions);
    let mut controls: Vec<String> = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let opened = ok(&client, json!({"cmd": "open", "scenario": "toy"}));
        let session = opened["session"].as_u64().expect("session id");
        let token = opened["session_token"].as_str().expect("token").to_string();
        for sql in [
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
        ] {
            ok(&client, json!({"cmd": "run_cell", "session": session, "sql": sql}));
        }
        // The fleet cache makes all but the first generate a cheap serve.
        ok(&client, json!({"cmd": "generate", "session": session}));
        ok(
            &client,
            json!({
                "cmd": "gesture", "session": session,
                "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
            }),
        );
        live.push((session, token));
    }
    for (session, _) in &live {
        controls.push(render_text(&client, *session));
    }
    let ramp_secs = ramp_started.elapsed().as_secs_f64();

    // ---- Phase 2: same-value gesture storm, crash mid-storm ---------------
    // Every storm gesture re-asserts the slider's current value, so any
    // replayed prefix of the storm renders identically to the control —
    // which is what makes "byte-identical after an arbitrary-instant
    // crash" a checkable property rather than a race.
    let storm_ops = live.len() + live.len() / 2;
    for k in 0..storm_ops {
        let (session, _) = &live[k % live.len()];
        ok(
            &client,
            json!({
                "cmd": "gesture", "session": session,
                "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": 2.0}}],
            }),
        );
    }
    drop(client); // crash: no clean close, no final checkpoints

    // ---- Phase 3: timed recovery, resume storm, byte-compare --------------
    let recovery_started = Instant::now();
    let (client, report) = journaled(&dir);
    let recovery_ms = ms(recovery_started.elapsed());
    let mut resume_latency = LatencyHistogram::new();
    let mut identical = 0usize;
    for (i, (session, token)) in live.iter().enumerate() {
        let started = Instant::now();
        let resumed = ok(&client, json!({"cmd": "resume", "token": token.clone()}));
        let text = render_text(&client, *session);
        resume_latency.record(started.elapsed());
        assert_eq!(resumed["session"].as_u64(), Some(*session), "{resumed}");
        if text == controls[i] {
            identical += 1;
        }
    }
    let resume_p99_ms = ms(resume_latency.percentile(0.99));

    // ---- Phase 4: close everything, crash again, prove zero leakage -------
    for (session, _) in &live {
        ok(&client, json!({"cmd": "close", "session": session}));
    }
    drop(client); // crash before any clean close: tombstone frames must win
    let (client, after_close) = journaled(&dir);
    let leaked_sessions = after_close.sessions_recovered;
    let leaked_checkpoints = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| {
                    e.file_name().to_string_lossy().starts_with("ckpt-")
                        && e.file_name().to_string_lossy().ends_with(".json")
                })
                .count() as u64
        })
        .unwrap_or(0);
    let active_at_end = client.state().stats_json()["active_sessions"].as_u64().unwrap_or(u64::MAX);
    drop(client);
    let _ = std::fs::remove_dir_all(&dir);

    let all_recovered = report.sessions_recovered as usize == sessions;
    let all_identical = identical == sessions;
    let p99_ok = resume_p99_ms <= RESUME_P99_BUDGET_MS;
    let no_leak = leaked_sessions == 0 && leaked_checkpoints == 0 && active_at_end == 0;

    let doc = json!({
        "schema_version": 1,
        "scenario": "toy",
        "summary": {
            "sessions": sessions,
            "ramp_secs": ramp_secs,
            "sessions_recovered": report.sessions_recovered,
            "frames_replayed": report.frames_replayed,
            "frames_skipped": report.frames_skipped,
            "recovery_warnings": report.warnings.len(),
            "recovery_ms": recovery_ms,
            "identical_renders": identical,
            "resume_p50_ms": ms(resume_latency.percentile(0.50)),
            "resume_p99_ms": resume_p99_ms,
            "resume_max_ms": ms(resume_latency.max()),
            "leaked_sessions_after_close": leaked_sessions,
            "leaked_checkpoints_after_close": leaked_checkpoints,
            "active_sessions_at_end": active_at_end,
            "all_sessions_recovered": all_recovered,
            "all_renders_identical": all_identical,
            "resume_p99_within_budget": p99_ok,
            "zero_leakage_after_close": no_leak,
        },
    });
    let text = serde_json::to_string(&doc).unwrap_or_default();
    let path = std::path::Path::new("target").join("BENCH_recovery.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &text)) {
        Ok(()) => {}
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    let mut out = String::new();
    out.push_str("TR — crash recovery under a 1k-session storm\n");
    out.push_str(&format!(
        "sessions ramped          {sessions} (journaled, checkpoint cadence 2)\n"
    ));
    out.push_str(&format!(
        "recovered after kill     {} ({} frame(s) replayed, {} skipped, {} warning(s))\n",
        report.sessions_recovered,
        report.frames_replayed,
        report.frames_skipped,
        report.warnings.len()
    ));
    out.push_str(&format!("restart recovery time    {recovery_ms:.0} ms\n"));
    out.push_str(&format!("byte-identical renders   {identical}/{sessions}\n"));
    out.push_str(&format!(
        "resume+render latency    p50 {:.1} ms  p99 {:.1} ms  max {:.1} ms (budget p99 ≤ {:.0} ms)\n",
        ms(resume_latency.percentile(0.50)),
        resume_p99_ms,
        ms(resume_latency.max()),
        RESUME_P99_BUDGET_MS
    ));
    out.push_str(&format!(
        "leakage after close+kill {leaked_sessions} session(s), {leaked_checkpoints} checkpoint file(s)\n"
    ));
    out.push_str(&format!(
        "gates                    recovered {}  identical {}  p99 {}  leakage {}\n",
        pass(all_recovered),
        pass(all_identical),
        pass(p99_ok),
        pass(no_leak)
    ));
    out
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
