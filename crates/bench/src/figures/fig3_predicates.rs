//! Figure 3: DiffTree structures for Q1/Q2's differing predicate and the
//! interfaces they map to.
//!
//! (a) an `ANY` over the two whole predicates → a radio choosing between
//!     `a = 1` and `b = 2`;
//! (b) the `=` factored above the `ANY` → two independent radio lists over
//!     operands (and the generalization `b = 1` becomes expressible);
//! (c) the literal `ANY` collapsed to a hole and widened to the column
//!     domain → a button group plus a slider, horizontally laid out.

use pi2_difftree::rules::{all_rules, applications, canonicalize, FactorCommonHead, Rule};
use pi2_difftree::{expresses, lift_query, DiffForest, DiffNode, NodeKind};
use pi2_interface::{map_forest, MapperConfig};
use pi2_sql::parse_query;

pub fn run() -> String {
    let catalog = pi2_datasets::toy::default_catalog();
    let queries = pi2_datasets::toy::fig3_queries();
    let mut out = String::new();
    out.push_str("== Figure 3: DiffTree variants for Q1, Q2 ==\n\n");

    // (a) the pre-factoring DiffTree: an ANY whose children are the two
    // whole predicates (the form a merge would produce before any
    // factoring). Built explicitly: lift Q1, wrap its predicate in an ANY
    // with Q2's predicate as the alternative.
    let mut tree_a = lift_query(&queries[0], 0);
    let pred2 = lift_query(&queries[1], 1).root.children[2].children[0].clone();
    {
        let where_node = &mut tree_a.root.children[2];
        let pred1 = where_node.children.remove(0);
        where_node.children.push(DiffNode::new(NodeKind::Any, vec![pred1, pred2]));
        tree_a.renumber();
        tree_a.source_queries = vec![0, 1];
    }
    out.push_str("(a) ANY over whole predicates: ANY(a = 1, b = 2)\n");
    out.push_str(&indent(&tree_a.root.children[2].to_string(), "  "));

    // (b) apply the factor-common-head rule: the shared `=` moves above the
    // ANY, yielding independent operand ANYs. (This is also the form the
    // n-way merge produces directly.)
    let factor = FactorCommonHead;
    let loc = factor.applications(&tree_a)[0];
    let tree_b = &factor.apply(&tree_a, loc).expect("factor applies");
    out.push_str("\n(b) factored (factor-common-head): ANY(a,b) = ANY(1,2)\n");
    out.push_str(&indent(&tree_b.root.children[2].to_string(), "  "));
    let merged = DiffForest::fully_merged(&queries);
    out.push_str(&format!(
        "    (identical to the direct merge output: {})\n",
        tree_b.structural_hash() == merged.trees[0].structural_hash()
    ));

    // Check the generalization claim: (b) expresses `b = 1`, (a) does not.
    let gen = parse_query("SELECT p, count(*) FROM t WHERE b = 1 GROUP BY p").expect("parse");
    out.push_str(&format!(
        "\nexpressiveness of the generalization `WHERE b = 1`: (a) {}, (b) {}\n",
        yes_no(expresses(&tree_a, &gen).is_some()),
        yes_no(expresses(tree_b, &gen).is_some()),
    ));

    // (c): collapse + generalize the literal ANY into a domain hole.
    let tree_c = canonicalize(tree_b, Some(&catalog));
    out.push_str("\n(c) collapsed + generalized (holes over column domains):\n");
    out.push_str(&indent(&tree_c.root.children[2].to_string(), "  "));
    let mut hole_domains = Vec::new();
    tree_c.root.walk(&mut |n| {
        if let NodeKind::Hole { domain, .. } = &n.kind {
            hole_domains.push(format!("{domain:?}"));
        }
    });
    out.push_str(&format!("hole domains: {}\n", hole_domains.join(", ")));

    // Map each variant and report the widgets.
    for (label, tree) in [("a", &tree_a), ("b", tree_b), ("c", &tree_c)] {
        let forest = DiffForest { trees: vec![tree.clone()] };
        let ifaces =
            map_forest(&forest, &catalog, &queries, &MapperConfig::default()).expect("mapper");
        let iface = &ifaces[0];
        let widgets: Vec<String> =
            iface.widgets.iter().map(|w| format!("{} ({})", w.label, w.kind.kind_name())).collect();
        out.push_str(&format!(
            "\ninterface ({label}): {} chart(s) + widgets [{}], layout depth {}\n",
            iface.charts.len(),
            widgets.join(", "),
            iface.layout.depth(),
        ));
    }

    // Show how many rule applications exist from the factored state (the
    // search space the MCTS walks).
    let apps = applications(&all_rules(Some(catalog)), tree_b);
    out.push_str(&format!("\napplicable transformations at (b): {}\n", apps.len()));
    out
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn indent(s: &str, pad: &str) -> String {
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}
