//! Figure 6: the four-step interface generation pipeline, traced on the
//! running example.

use pi2_cost::{choose_best, CostWeights};
use pi2_difftree::DiffForest;
use pi2_interface::{map_forest, MapperConfig};
use pi2_mcts::{mcts, MctsConfig};

pub fn run() -> String {
    let catalog = pi2_datasets::toy::default_catalog();
    let queries = pi2_datasets::toy::fig2_queries();
    let weights = CostWeights::default();
    let mapper_cfg = MapperConfig::default();
    let mut out = String::new();
    out.push_str("== Figure 6: PI2 interface generation pipeline ==\n\n");

    // ① parse: the query log becomes DiffTrees.
    let initial = DiffForest::singletons(&queries);
    out.push_str(&format!(
        "① parse: {} queries → {} DiffTrees ({} total nodes, 0 choice nodes)\n",
        queries.len(),
        initial.trees.len(),
        initial.size(),
    ));

    // ② map: DiffTrees → candidate interfaces.
    let candidates = map_forest(&initial, &catalog, &queries, &mapper_cfg).expect("mapper");
    out.push_str(&format!(
        "② map: initial forest → {} candidate interfaces (layout / interaction variants)\n",
        candidates.len()
    ));

    // ③ cost.
    let (best_idx, cost) =
        choose_best(&candidates, &initial, &queries, &catalog, &weights).expect("cost");
    out.push_str(&format!(
        "③ cost: best initial candidate #{best_idx} costs {:.3} (viz {:.2}, interaction {:.2}, layout {:.2}, views {:.2})\n",
        cost.total, cost.viz, cost.interaction, cost.layout, cost.views
    ));

    // ④ search: transform DiffTrees, re-map, re-cost, via MCTS.
    let problem =
        pi2_core::InterfaceSearch::new(&queries, &catalog, mapper_cfg.clone(), weights.clone());
    let (best_forest, stats) = mcts(
        &problem,
        &MctsConfig { iterations: 60, rollout_depth: 3, seed: 17, ..Default::default() },
    );
    out.push_str(&format!(
        "④ search: {} MCTS iterations, {} tree nodes, {} states costed; best reward {:.3} found at iteration {}\n",
        stats.iterations, stats.tree_nodes, stats.states_evaluated, stats.best_reward, stats.best_at_iteration
    ));
    out.push_str(&format!(
        "   final state: {} tree(s), {} choice node(s); improvement over initial: {:.3} → {:.3}\n",
        best_forest.trees.len(),
        best_forest.choice_count(),
        -cost.total,
        stats.best_reward,
    ));

    let final_candidates =
        map_forest(&best_forest, &catalog, &queries, &mapper_cfg).expect("mapper");
    let (_, final_cost) =
        choose_best(&final_candidates, &best_forest, &queries, &catalog, &weights).expect("cost");
    out.push_str(&format!(
        "   returned interface expresses all {} queries: {}\n",
        queries.len(),
        final_cost.expressive
    ));
    out
}
