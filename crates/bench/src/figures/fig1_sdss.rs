//! Figure 1: the SDSS celestial-region analysis under three tools.
//!
//! (a) Lux recommends a separate static chart per query; (b) Hex needs the
//! user to build four sliders; (c) PI2 generates one scatter plot with 2-D
//! pan/zoom over the ra/dec ranges, automatically.

use pi2_baselines::{Hex, Lux, Pi2Tool, Tool};
use pi2_core::{Event, SessionBuilder};
use pi2_cost::{interaction_effort, widget_effort};

pub fn run() -> String {
    let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
    let queries = pi2_datasets::sdss::demo_queries();

    let mut out = String::new();
    out.push_str("== Figure 1: interfaces for the SDSS region analysis ==\n\n");
    out.push_str("input queries:\n");
    for (i, q) in queries.iter().enumerate() {
        out.push_str(&format!("  Q{}: {}\n", i + 1, q));
    }
    out.push('\n');

    for tool in [&Lux as &dyn Tool, &Hex, &Pi2Tool::default()] {
        let o = tool.generate(&queries, &catalog).expect("tool generates");
        let s = o.interface.feature_summary();
        let effort: f64 = o.interface.widgets.iter().map(|w| widget_effort(&w.kind)).sum::<f64>()
            + o.interface
                .charts
                .iter()
                .flat_map(|c| &c.interactions)
                .map(interaction_effort)
                .sum::<f64>();
        out.push_str(&format!(
            "({}) {}: {} chart(s), {} widget(s), {} viz interaction(s); manual steps: {}; pan effort: {:.2}\n",
            match o.tool {
                "Lux" => "a",
                "Hex" => "b",
                _ => "c",
            },
            o.tool,
            s.charts + s.tables,
            s.widgets,
            s.viz_interactions,
            o.manual_steps,
            effort,
        ));
        for n in &o.notes {
            out.push_str(&format!("      note: {n}\n"));
        }
        for w in &o.interface.widgets {
            out.push_str(&format!("      widget: {}\n", pi2_render::render_widget(w)));
        }
        for c in &o.interface.charts {
            for i in &c.interactions {
                out.push_str(&format!("      interaction on {}: {}\n", c.name, i.kind_name()));
            }
        }
        out.push('\n');
    }

    // Demonstrate PI2's pan/zoom live: one drag replaces editing four
    // numbers in SQL.
    let pi2_out = Pi2Tool::default().generate(&queries, &catalog).expect("pi2 generates");
    let forest = pi2_out.forest.clone().expect("pi2 forest");
    let mut session = SessionBuilder::new(catalog, forest, pi2_out.interface).build();
    let before = session.query_for_chart(0).expect("query").to_string();
    let updates = session.dispatch(Event::Pan { chart: 0, dx: 1.0, dy: 0.5 }).expect("pan");
    out.push_str("PI2 live pan (drag by +1.0°, +0.5°):\n");
    out.push_str(&format!("  before: {before}\n"));
    out.push_str(&format!("  after:  {}\n", updates[0].query));
    out.push_str(&format!("  rows now in view: {}\n", updates[0].result.len()));
    out
}
