//! Cost-model ablations: turn off each structural term and show how the
//! chosen interface design changes. This justifies the design choices the
//! cost model encodes (DESIGN.md §4):
//!
//! * **interaction effort** — without it, the four-slider design ties with
//!   pan/zoom and the paper's Figure 1 argument disappears;
//! * **redundancy penalty** — without it, similar queries stay as separate
//!   static charts instead of merging into one interactive view;
//! * **nested-choice penalty** — without it, the COVID log collapses into
//!   one tree whose range holes sit beneath an OPT (conditionally-dead
//!   pan/zoom) instead of the overview+detail split;
//! * **view-count weight** — without it, nothing discourages one chart per
//!   query.

use crate::text_table;
use pi2_core::{Pi2, SearchStrategy};
use pi2_cost::CostWeights;
use pi2_interface::VizInteraction;
use pi2_mcts::MctsConfig;
use pi2_sql::Query;

struct Ablation {
    name: &'static str,
    weights: CostWeights,
}

fn ablations() -> Vec<Ablation> {
    let base = CostWeights::default;
    vec![
        Ablation { name: "full model", weights: base() },
        Ablation {
            name: "no interaction effort",
            weights: CostWeights { interaction: 0.0, ..base() },
        },
        Ablation {
            name: "no redundancy penalty",
            weights: CostWeights { redundancy_penalty: 0.0, ..base() },
        },
        Ablation {
            name: "no nested-choice penalty",
            weights: CostWeights { nested_choice_penalty: 0.0, ..base() },
        },
        Ablation { name: "no view-count weight", weights: CostWeights { views: 0.0, ..base() } },
        Ablation { name: "no layout weight", weights: CostWeights { layout: 0.0, ..base() } },
    ]
}

fn describe(
    catalog: &pi2_engine::Catalog,
    queries: &[Query],
    weights: &CostWeights,
) -> Vec<String> {
    let pi2 = Pi2::builder(catalog.clone())
        .weights(weights.clone())
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: 60,
            rollout_depth: 4,
            seed: 5,
            ..Default::default()
        }))
        .build();
    match pi2.generate(queries) {
        Ok(g) => {
            let brushes = g
                .interface
                .charts
                .iter()
                .flat_map(|c| &c.interactions)
                .filter(|i| matches!(i, VizInteraction::BrushX { .. }))
                .count();
            let panzooms = g
                .interface
                .charts
                .iter()
                .flat_map(|c| &c.interactions)
                .filter(|i| matches!(i, VizInteraction::PanZoom { .. }))
                .count();
            vec![
                g.forest.trees.len().to_string(),
                g.interface.charts.len().to_string(),
                g.interface.widgets.len().to_string(),
                format!("{brushes}/{panzooms}"),
                format!("{:.3}", g.cost.total),
            ]
        }
        Err(e) => vec!["-".into(), "-".into(), "-".into(), "-".into(), format!("error: {e}")],
    }
}

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Ablations: cost-model terms vs. chosen design ==\n");

    let cases: Vec<(&str, pi2_engine::Catalog, Vec<Query>)> = vec![
        (
            "sdss (2 region queries)",
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 600, seed: 2 }),
            pi2_datasets::sdss::demo_queries(),
        ),
        (
            "covid V1 (overview + 2 windows)",
            pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
                state_limit: Some(12),
                ..Default::default()
            }),
            pi2_datasets::covid::demo_queries_step(3),
        ),
    ];

    for (case, catalog, queries) in cases {
        out.push_str(&format!("\n-- {case} --\n"));
        let rows: Vec<Vec<String>> = ablations()
            .iter()
            .map(|a| {
                let mut row = vec![a.name.to_string()];
                row.extend(describe(&catalog, &queries, &a.weights));
                row
            })
            .collect();
        out.push_str(&text_table(
            &["ablation", "trees", "charts", "widgets", "brush/panzoom", "cost"],
            &rows,
        ));
    }
    out.push_str(
        "\nReading: under the full model SDSS merges to one pan/zoom chart and COVID splits \
         into the overview+detail brush design; removing a term shifts the chosen design \
         toward the failure mode that term exists to prevent.\n",
    );
    out
}
