//! Figure 2: the three running-example queries, their (Diff)tree forms,
//! and the trivially valid static interface — one chart per query.

use pi2_core::{Pi2, SearchStrategy};
use pi2_difftree::DiffForest;
use pi2_interface::{map_forest, MapperConfig};
use pi2_render::Renderer as _;

pub fn run() -> String {
    let catalog = pi2_datasets::toy::default_catalog();
    let queries = pi2_datasets::toy::fig2_queries();

    let mut out = String::new();
    out.push_str("== Figure 2: example queries, their ASTs, and a static interface ==\n\n");
    for (i, q) in queries.iter().enumerate() {
        out.push_str(&format!("Q{}: {}\n", i + 1, q));
    }
    out.push('\n');

    // Each AST is itself a DiffTree (zero choice nodes).
    let forest = DiffForest::singletons(&queries);
    for (i, t) in forest.trees.iter().enumerate() {
        out.push_str(&format!(
            "AST / DiffTree of Q{} ({} nodes, {} choice nodes):\n",
            i + 1,
            t.root.size(),
            t.root.choice_count()
        ));
        out.push_str(&indent(&t.root.to_string(), "  "));
        out.push('\n');
    }

    // The static interface: three charts, no interactions.
    let candidates =
        map_forest(&forest, &catalog, &queries, &MapperConfig::default()).expect("mapper");
    let iface = &candidates[0];
    out.push_str(&format!(
        "static interface: {} charts, {} widgets, {} interactions\n\n",
        iface.charts.len(),
        iface.widgets.len(),
        iface.interaction_count()
    ));

    // Rendered with live data.
    let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
    let g = pi2.generate(&queries[..1]).expect("single-query generation");
    let session = pi2.session(&g);
    let updates = session.refresh_all().expect("refresh");
    out.push_str("Q1 rendered:\n");
    out.push_str(&pi2_render::AsciiRenderer.render(&g.interface, &updates));
    out
}

fn indent(s: &str, pad: &str) -> String {
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}
