//! Figure 4: a single DiffTree merging all three example queries — an ANY
//! in the SELECT clause choosing the projected attribute and an OPT around
//! the WHERE predicate — and its candidate interface.

use pi2_core::{Pi2, SearchStrategy};
use pi2_difftree::{ChoiceKind, Clause, NodeKind};
use pi2_render::Renderer as _;

pub fn run() -> String {
    let catalog = pi2_datasets::toy::default_catalog();
    let queries = pi2_datasets::toy::fig2_queries();
    let mut out = String::new();
    out.push_str("== Figure 4: one DiffTree for Q1–Q3 and its interface ==\n\n");

    let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
    let g = pi2.generate(&queries).expect("generation");
    let tree = &g.forest.trees[0];

    out.push_str(&format!(
        "merged DiffTree: {} nodes, {} choice nodes\n",
        tree.root.size(),
        tree.root.choice_count()
    ));
    out.push_str(&tree_to_string_capped(tree));

    // The paper's claims: an ANY in the projection, an OPT on the WHERE.
    let cs = pi2_difftree::choices(tree);
    for c in &cs {
        let kind = match &c.kind {
            ChoiceKind::Any { options } => format!("ANY over [{}]", options.join(" | ")),
            ChoiceKind::Opt { summary } => format!("OPT around [{summary}]"),
            ChoiceKind::Hole { domain, .. } => format!("HOLE {domain:?}"),
        };
        out.push_str(&format!("  choice in {:?}: {kind}\n", c.context.clause));
    }
    let has_projection_any = cs.iter().any(|c| {
        c.context.clause == Clause::Projection && matches!(c.kind, ChoiceKind::Any { .. })
    });
    let has_where_opt = cs
        .iter()
        .any(|c| c.context.clause == Clause::Where && matches!(c.kind, ChoiceKind::Opt { .. }));
    out.push_str(&format!(
        "\nprojection ANY present: {}; WHERE OPT present: {}\n",
        has_projection_any, has_where_opt
    ));

    out.push_str(&format!(
        "\ninterface: {} chart(s), widgets [{}], {} viz interaction(s), cost {:.3}\n",
        g.interface.charts.len(),
        g.interface
            .widgets
            .iter()
            .map(|w| format!("{} ({})", w.label, w.kind.kind_name()))
            .collect::<Vec<_>>()
            .join(", "),
        g.interface.interaction_count(),
        g.cost.total,
    ));
    let session = pi2.session(&g);
    let updates = session.refresh_all().expect("refresh");
    out.push_str(&pi2_render::AsciiRenderer.render(&g.interface, &updates));
    out
}

fn tree_to_string_capped(tree: &pi2_difftree::DiffTree) -> String {
    let full = tree.root.to_string();
    let lines: Vec<&str> = full.lines().collect();
    let mut s: String = lines.iter().take(40).map(|l| format!("{l}\n")).collect();
    if lines.len() > 40 {
        s.push_str(&format!("… {} more nodes\n", lines.len() - 40));
    }
    let _ = NodeKind::Any; // keep the import obviously intentional
    s
}
