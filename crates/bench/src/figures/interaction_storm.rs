//! Interaction-dispatch latency under scripted event storms: replay the
//! same widget/gesture storm against the three session execution modes
//! ([`ExecMode::ReferenceUncached`] — the pre-optimization baseline,
//! [`ExecMode::ColumnarUncached`] — cold columnar dispatch, and
//! [`ExecMode::Cached`] — warm bound-query result cache) and report
//! p50/p95/p99 per (scenario, event class, mode) plus a
//! `BENCH_interaction.json` dump for trend tracking.
//!
//! Every storm is a *closed cycle*: its gesture deltas are powers of two
//! over the demo scenarios' dyadic witness literals, so repeating the
//! cycle revisits bit-identical binding states and the cached mode's
//! second and later cycles are pure warm hits.

use crate::text_table;
use pi2_core::{
    Event, ExecMode, InterfaceSession, Pi2, SearchStrategy, SessionBuilder, WidgetValue,
};
use pi2_difftree::DiffForest;
use pi2_engine::Catalog;
use pi2_interface::Interface;
use pi2_sql::Query;
use pi2_telemetry::LatencyHistogram;
use std::collections::BTreeMap;
use std::time::Instant;

/// One scripted scenario: everything needed to open fresh sessions plus
/// the event cycle to replay.
struct Storm {
    name: &'static str,
    catalog: Catalog,
    forest: DiffForest,
    interface: Interface,
    queries: Vec<Query>,
    cycle: Vec<Event>,
    /// Total cycles replayed; the first primes the cache and is excluded
    /// from measurement.
    cycles: usize,
}

impl Storm {
    fn session(&self, mode: ExecMode) -> InterfaceSession {
        SessionBuilder::new(self.catalog.clone(), self.forest.clone(), self.interface.clone())
            .queries(&self.queries)
            .exec_mode(mode)
            .build()
    }
}

/// SDSS pan/zoom storm over the Figure 1 celestial-region interface. The
/// witness windows (`ra BETWEEN 178.5 AND 180.5`, …) are dyadic, and the
/// deltas (±0.25, ±0.125, ×2.0, ×0.5) are powers of two, so the cycle
/// returns to bit-identical window literals.
fn sdss_storm() -> Storm {
    let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::default());
    let pi2 = Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).build();
    let queries = pi2_datasets::sdss::demo_queries();
    let g = pi2.generate(&queries).expect("sdss interface generates");
    let chart = g.interface.charts.first().expect("sdss chart").id;
    let cycle = vec![
        Event::Pan { chart, dx: 0.25, dy: 0.125 },
        Event::Pan { chart, dx: 0.25, dy: 0.0 },
        Event::Zoom { chart, factor: 2.0 },
        Event::Zoom { chart, factor: 0.5 },
        Event::Pan { chart, dx: -0.25, dy: -0.125 },
        Event::Pan { chart, dx: -0.25, dy: 0.0 },
    ];
    Storm {
        name: "sdss-panzoom",
        catalog,
        forest: g.forest,
        interface: g.interface,
        queries: g.queries,
        cycle,
        cycles: 30,
    }
}

/// COVID linked brushing (the V1 overview→detail design, built directly):
/// a cycle of absolute date windows, so every cycle revisits the same
/// bound queries exactly.
fn covid_storm() -> Storm {
    let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config::default());
    let queries = pi2_datasets::covid::demo_queries_step(3);
    let overview = DiffForest::singletons(&queries[..1]);
    let detail = DiffForest::fully_merged(&queries[1..3]);
    let mut forest = DiffForest { trees: vec![overview.trees[0].clone(), detail.trees[0].clone()] };
    for t in &mut forest.trees {
        *t = pi2_difftree::rules::canonicalize(t, Some(&catalog));
    }
    let ifaces = pi2_interface::map_forest(
        &forest,
        &catalog,
        &queries,
        &pi2_interface::MapperConfig::default(),
    )
    .expect("covid mapper");
    let interface = ifaces
        .into_iter()
        .find(|i| {
            i.charts.iter().any(|c| {
                c.interactions
                    .iter()
                    .any(|x| matches!(x, pi2_interface::VizInteraction::BrushX { .. }))
            })
        })
        .expect("brush interface");
    let day = |d: &str| pi2_sql::Date::parse(d).expect("date").0 as f64;
    let cycle = vec![
        Event::Brush { chart: 0, low: day("2021-12-01"), high: day("2021-12-10") },
        Event::Brush { chart: 0, low: day("2021-12-05"), high: day("2021-12-15") },
        Event::Brush { chart: 0, low: day("2021-12-10"), high: day("2021-12-20") },
        Event::Brush { chart: 0, low: day("2021-12-15"), high: day("2021-12-25") },
        Event::Brush { chart: 0, low: day("2021-12-20"), high: day("2021-12-31") },
        Event::Brush { chart: 0, low: day("2021-12-01"), high: day("2021-12-31") },
    ];
    Storm { name: "covid-brush", catalog, forest, interface, queries, cycle, cycles: 20 }
}

/// Toy toggle flips (the Figure 4 interface): the smallest dispatch, so
/// per-event overhead dominates.
fn toy_storm() -> Option<Storm> {
    let catalog = pi2_datasets::toy::default_catalog();
    let pi2 = Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).build();
    let queries = pi2_datasets::toy::fig2_queries();
    let g = pi2.generate(&queries).expect("toy interface generates");
    let toggle = g
        .interface
        .widgets
        .iter()
        .find(|w| matches!(w.kind, pi2_interface::WidgetKind::Toggle))
        .map(|w| w.id)?;
    let cycle = vec![
        Event::SetWidget { widget: toggle, value: WidgetValue::Bool(false) },
        Event::SetWidget { widget: toggle, value: WidgetValue::Bool(true) },
    ];
    Some(Storm {
        name: "toy-toggle",
        catalog,
        forest: g.forest,
        interface: g.interface,
        queries: g.queries,
        cycle,
        cycles: 40,
    })
}

/// Measured latencies for one (scenario, mode) replay.
struct ModeRun {
    mode: &'static str,
    /// Per event class, measurement cycles only.
    by_class: BTreeMap<&'static str, LatencyHistogram>,
    /// All measured events combined.
    all: LatencyHistogram,
    /// Session counters after the full replay (including the priming
    /// cycle).
    stats_json: String,
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Cached => "cached-warm",
        ExecMode::ColumnarUncached => "columnar-cold",
        ExecMode::ReferenceUncached => "reference-uncached",
    }
}

/// Replay the storm in one mode: one priming cycle (unmeasured), then
/// `cycles - 1` measured cycles.
fn replay(storm: &Storm, mode: ExecMode) -> ModeRun {
    let mut session = storm.session(mode);
    for event in &storm.cycle {
        session.dispatch(event.clone()).expect("priming dispatch");
    }
    let mut by_class: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
    let mut all = LatencyHistogram::new();
    for _ in 1..storm.cycles {
        for event in &storm.cycle {
            let class = event.class();
            let started = Instant::now();
            session.dispatch(event.clone()).expect("storm dispatch");
            let elapsed = started.elapsed();
            by_class.entry(class).or_default().record(elapsed);
            all.record(elapsed);
        }
    }
    ModeRun { mode: mode_name(mode), by_class, all, stats_json: session.stats().to_json() }
}

const MODES: [ExecMode; 3] =
    [ExecMode::ReferenceUncached, ExecMode::ColumnarUncached, ExecMode::Cached];

pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Interaction dispatch latency (event storms) ==\n\n");

    let mut storms = vec![sdss_storm(), covid_storm()];
    storms.extend(toy_storm());

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut json_stats = Vec::new();
    // (reference mean, columnar mean, cached mean) per scenario, in µs.
    let mut means: BTreeMap<&'static str, [f64; 3]> = BTreeMap::new();
    for storm in &storms {
        for (mi, mode) in MODES.into_iter().enumerate() {
            let run = replay(storm, mode);
            means.entry(storm.name).or_default()[mi] = us(run.all.mean());
            for (class, hist) in
                run.by_class.iter().map(|(c, h)| (*c, h)).chain([("all", &run.all)])
            {
                rows.push(vec![
                    storm.name.to_string(),
                    run.mode.to_string(),
                    class.to_string(),
                    hist.count().to_string(),
                    format!("{:.1}", us(hist.percentile(0.50))),
                    format!("{:.1}", us(hist.percentile(0.95))),
                    format!("{:.1}", us(hist.percentile(0.99))),
                    format!("{:.1}", us(hist.mean())),
                ]);
                json_rows.push(format!(
                    "{{\"scenario\":\"{}\",\"mode\":\"{}\",\"event_class\":\"{class}\",{}}}",
                    storm.name,
                    run.mode,
                    // Reuse the histogram's own JSON fields (count, p50_us…).
                    run_fields(hist),
                ));
            }
            json_stats.push(format!("\"{}/{}\":{}", storm.name, run.mode, run.stats_json));
        }
    }
    out.push_str(&text_table(
        &["scenario", "mode", "class", "events", "p50 µs", "p95 µs", "p99 µs", "mean µs"],
        &rows,
    ));

    let sdss = means.get("sdss-panzoom").copied().unwrap_or([0.0; 3]);
    let warm_speedup = sdss[0] / sdss[2].max(1e-9);
    let cold_speedup = sdss[0] / sdss[1].max(1e-9);
    out.push_str(&format!(
        "\nSDSS warm-cache dispatch speedup vs the reference-executor (no cache) baseline: \
         {warm_speedup:.1}x (target: >= 10x). Cold columnar vs reference: {cold_speedup:.2}x.\n\
         Warm dispatches skip lowering (query memo), skip execution (result cache), and only \
         touch charts whose bindings changed; cold dispatches still win through the columnar \
         scan and compiled predicates.\n",
    ));

    let (sweep_text, sweep_json) = size_sweep();
    out.push_str(&sweep_text);

    let json = format!(
        "{{\"schema_version\":1,\"rows\":[{}],\"session_stats\":{{{}}},{},\
         \"summary\":{{\"sdss_warm_speedup_vs_reference\":{:.3},\
         \"sdss_cold_columnar_speedup_vs_reference\":{:.3},\
         \"warm_speedup_target_met\":{},\"cold_beats_reference\":{}}}}}",
        json_rows.join(","),
        json_stats.join(","),
        sweep_json,
        warm_speedup,
        cold_speedup,
        warm_speedup >= 10.0,
        cold_speedup > 1.0,
    );
    let path = std::path::Path::new("target").join("BENCH_interaction.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &json)) {
        Ok(_) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out
}

/// The inner fields of [`LatencyHistogram::to_json`] (strip the braces so
/// they can be merged into a row object).
fn run_fields(h: &LatencyHistogram) -> String {
    let json = h.to_json();
    json.trim_start_matches('{').trim_end_matches('}').to_string()
}

// ---- data-size sweep --------------------------------------------------------

/// Top size of the latency-vs-data-size sweep: `PI2_BENCH_SCALE` rows
/// (default 1M, the reduced CI scale; set `PI2_BENCH_SCALE=10000000` for
/// the full 10M-row run). The sweep measures at top/100, top/10, and top.
fn sweep_sizes() -> Vec<usize> {
    let top: usize = std::env::var("PI2_BENCH_SCALE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1_000_000)
        .max(100);
    vec![top / 100, top / 10, top]
}

/// Measurements for one data size.
struct SweepPoint {
    rows: usize,
    catalog_build_ms: f64,
    columnar_build_ms: f64,
    /// Repeated gesture, answered from the session result cache.
    warm_pan_p50_us: f64,
    /// Fresh forward pans, answered by incremental (delta) recomputation.
    delta_pan_p50_us: f64,
    /// Fresh forward pans with caching disabled: full pruned columnar scan.
    cold_pan_p50_us: f64,
    blocks_scanned: u64,
    blocks_pruned: u64,
    delta_hits: u64,
    delta_seeds: u64,
}

/// Measure warm / delta / cold pan dispatch at one SDSS size.
///
/// The interface is built directly from the fully merged demo forest
/// (generation latency is covered by the latency exhibit); the sweep
/// isolates the *dispatch* path the tentpole optimizes.
fn sweep_point(rows: usize) -> SweepPoint {
    let started = Instant::now();
    let catalog = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config::sized(rows));
    let catalog_build_ms = started.elapsed().as_secs_f64() * 1e3;
    let columnar_build_ms = catalog.columnar_build_nanos() as f64 / 1e6;

    let queries = pi2_datasets::sdss::demo_queries();
    let mut forest = DiffForest::fully_merged(&queries);
    for t in &mut forest.trees {
        *t = pi2_difftree::rules::canonicalize(t, Some(&catalog));
    }
    let ifaces = pi2_interface::map_forest(
        &forest,
        &catalog,
        &queries,
        &pi2_interface::MapperConfig::default(),
    )
    .expect("sdss sweep mapper");
    let interface = ifaces
        .into_iter()
        .find(|i| {
            i.charts.iter().any(|c| {
                c.interactions
                    .iter()
                    .any(|x| matches!(x, pi2_interface::VizInteraction::PanZoom { .. }))
            })
        })
        .expect("pannable sdss interface");
    let chart = interface
        .charts
        .iter()
        .find(|c| {
            c.interactions
                .iter()
                .any(|x| matches!(x, pi2_interface::VizInteraction::PanZoom { .. }))
        })
        .expect("pannable chart")
        .id;

    // Warm: a closed dyadic pan cycle; every post-priming dispatch is a
    // result-cache hit.
    let cycle = vec![
        Event::Pan { chart, dx: 0.25, dy: 0.0 },
        Event::Pan { chart, dx: 0.25, dy: 0.0 },
        Event::Pan { chart, dx: -0.25, dy: 0.0 },
        Event::Pan { chart, dx: -0.25, dy: 0.0 },
    ];
    let storm = Storm {
        name: "sdss-sweep",
        catalog: catalog.clone(),
        forest,
        interface,
        queries,
        cycle,
        cycles: 12,
    };
    let warm = replay(&storm, ExecMode::Cached);

    // Delta: forward-only pans visit a fresh window every dispatch, so
    // every one is a cache miss answered by incremental recomputation
    // (after the first seeds the mask).
    let mut session = storm.session(ExecMode::Cached);
    session.dispatch(Event::Pan { chart, dx: 0.25, dy: 0.0 }).expect("seed pan");
    let mut delta_hist = LatencyHistogram::new();
    for _ in 0..16 {
        let started = Instant::now();
        session.dispatch(Event::Pan { chart, dx: 0.25, dy: 0.0 }).expect("delta pan");
        delta_hist.record(started.elapsed());
    }
    let stats = session.stats();

    // Cold: same forward pans with caching off — every dispatch is a full
    // (zone-pruned) columnar execution.
    let mut cold = storm.session(ExecMode::ColumnarUncached);
    let mut cold_hist = LatencyHistogram::new();
    for _ in 0..6 {
        let started = Instant::now();
        cold.dispatch(Event::Pan { chart, dx: 0.25, dy: 0.0 }).expect("cold pan");
        cold_hist.record(started.elapsed());
    }

    let (blocks_scanned, blocks_pruned) = catalog.scan_counts();
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    SweepPoint {
        rows,
        catalog_build_ms,
        columnar_build_ms,
        warm_pan_p50_us: us(warm.all.percentile(0.50)),
        delta_pan_p50_us: us(delta_hist.percentile(0.50)),
        cold_pan_p50_us: us(cold_hist.percentile(0.50)),
        blocks_scanned,
        blocks_pruned,
        delta_hits: stats.delta_hits,
        delta_seeds: stats.delta_seeds,
    }
}

/// Run the sweep; returns the human-readable section and the
/// `"size_sweep"` / `"scaling"` JSON fragments.
fn size_sweep() -> (String, String) {
    let sizes = sweep_sizes();
    let points: Vec<SweepPoint> = sizes.iter().map(|&n| sweep_point(n)).collect();

    let mut out = String::new();
    out.push_str("\n== Dispatch latency vs data size (SDSS pan) ==\n\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rows.to_string(),
                format!("{:.1}", p.catalog_build_ms),
                format!("{:.1}", p.columnar_build_ms),
                format!("{:.1}", p.warm_pan_p50_us),
                format!("{:.1}", p.delta_pan_p50_us),
                format!("{:.1}", p.cold_pan_p50_us),
                p.blocks_scanned.to_string(),
                p.blocks_pruned.to_string(),
                format!("{}/{}", p.delta_hits, p.delta_seeds),
            ]
        })
        .collect();
    out.push_str(&text_table(
        &[
            "rows",
            "build ms",
            "columnar ms",
            "warm p50 µs",
            "delta p50 µs",
            "cold p50 µs",
            "blk scanned",
            "blk pruned",
            "delta hit/seed",
        ],
        &rows,
    ));

    // The sub-linearity gate: warm-gesture latency at the top size must
    // stay well under 10x the mid size (the tentpole's 10M-vs-1M claim;
    // warm dispatches are O(1) in data size, so the ratio should be ~1).
    let mid = points[points.len() - 2].warm_pan_p50_us;
    let top = points[points.len() - 1].warm_pan_p50_us;
    let ratio = top / mid.max(1e-9);
    let met = ratio <= 10.0;
    out.push_str(&format!(
        "\nWarm pan p50 at {} rows is {ratio:.2}x the {}-row p50 (gate: <= 10x: {}).\n\
         Delta pans re-evaluate only the blocks a bound shift touches; cold pans\n\
         still skip every block outside the window via zone maps.\n",
        points[points.len() - 1].rows,
        points[points.len() - 2].rows,
        if met { "met" } else { "MISSED" },
    ));

    let json_points: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"rows\":{},\"catalog_build_ms\":{:.3},\"columnar_build_ms\":{:.3},\
                 \"warm_pan_p50_us\":{:.3},\"delta_pan_p50_us\":{:.3},\
                 \"cold_pan_p50_us\":{:.3},\"blocks_scanned\":{},\"blocks_pruned\":{},\
                 \"delta_hits\":{},\"delta_seeds\":{}}}",
                p.rows,
                p.catalog_build_ms,
                p.columnar_build_ms,
                p.warm_pan_p50_us,
                p.delta_pan_p50_us,
                p.cold_pan_p50_us,
                p.blocks_scanned,
                p.blocks_pruned,
                p.delta_hits,
                p.delta_seeds,
            )
        })
        .collect();
    let json = format!(
        "\"size_sweep\":[{}],\"scaling\":{{\"sizes\":[{}],\
         \"warm_p50_ratio_top_vs_mid\":{:.4},\"warm_ratio_target_met\":{}}}",
        json_points.join(","),
        sizes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(","),
        ratio,
        met,
    );
    (out, json)
}
