//! Server dispatch latency under a concurrent client storm.
//!
//! Replays the SDSS pan/zoom cycle through `pi2-server`'s full request
//! path (line-protocol encode → sharded registry lookup → queue →
//! coalesce → dispatch → response encode) twice: one client on an idle
//! server (the single-session baseline, directly comparable to the
//! in-process `interaction_storm` numbers), then sixteen concurrent
//! clients each driving their own session on one shared server. The
//! headline check: storm p50 must stay within 2× of the single-session
//! p50 — sessions are independent, so the server must not serialize them.
//!
//! Both phases use [`LocalClient`] so the measurement excludes kernel
//! socket buffers and measures the server itself; the cycle's dyadic
//! deltas make it a closed loop, so after one warmup cycle the cached
//! exec mode serves warm hits, exactly like the single-session bench.
//!
//! Writes `target/BENCH_server.json` as a side effect.

use pi2_server::{LocalClient, ServerState};
use pi2_telemetry::LatencyHistogram;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// Concurrent clients in the storm phase.
const CLIENTS: usize = 16;
/// Unmeasured cache-priming cycles per client.
const WARMUP_CYCLES: usize = 1;
/// Measured cycles per client.
const MEASURE_CYCLES: usize = 12;

/// The SDSS pan/zoom cycle from the interaction storm, as protocol
/// events: dyadic deltas over dyadic witness windows, so the cycle
/// returns to bit-identical binding states.
fn cycle_events() -> Vec<Value> {
    vec![
        json!({"type": "pan", "chart": 0, "dx": 0.25, "dy": 0.125}),
        json!({"type": "pan", "chart": 0, "dx": 0.25, "dy": 0.0}),
        json!({"type": "zoom", "chart": 0, "factor": 2.0}),
        json!({"type": "zoom", "chart": 0, "factor": 0.5}),
        json!({"type": "pan", "chart": 0, "dx": -0.25, "dy": -0.125}),
        json!({"type": "pan", "chart": 0, "dx": -0.25, "dy": 0.0}),
    ]
}

/// Open an SDSS session and generate its interface; returns the id.
fn open_session(client: &LocalClient) -> i64 {
    let opened = client.request(json!({"cmd": "open", "scenario": "sdss"}));
    assert_eq!(opened["ok"].as_bool(), Some(true), "open failed: {opened}");
    let session = opened["session"].as_i64().expect("session id");
    for query in pi2_datasets::sdss::demo_queries() {
        let ran = client
            .request(json!({"cmd": "run_cell", "session": session, "sql": query.to_string()}));
        assert_eq!(ran["ok"].as_bool(), Some(true), "run_cell failed: {ran}");
    }
    let generated = client.request(json!({"cmd": "generate", "session": session}));
    assert_eq!(generated["ok"].as_bool(), Some(true), "generate failed: {generated}");
    session
}

/// Replay the cycle; returns a histogram of per-request latency over the
/// measured cycles.
fn replay(client: &LocalClient, session: i64) -> LatencyHistogram {
    let events = cycle_events();
    let mut latency = LatencyHistogram::new();
    for cycle in 0..WARMUP_CYCLES + MEASURE_CYCLES {
        for event in &events {
            let request = json!({
                "cmd": "gesture", "session": session, "events": [event.clone()],
            });
            let start = Instant::now();
            let response = client.request(request);
            let elapsed = start.elapsed();
            assert_eq!(response["ok"].as_bool(), Some(true), "gesture failed: {response}");
            if cycle >= WARMUP_CYCLES {
                latency.record(elapsed);
            }
        }
    }
    latency
}

fn histogram_row(phase: &str, clients: usize, h: &LatencyHistogram) -> Value {
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    json!({
        "phase": phase,
        "clients": clients,
        "count": h.count(),
        "p50_us": us(h.percentile(0.50)),
        "p95_us": us(h.percentile(0.95)),
        "p99_us": us(h.percentile(0.99)),
        "mean_us": us(h.mean()),
        "max_us": us(h.max()),
    })
}

/// Regenerate the exhibit; writes `target/BENCH_server.json`.
pub fn run() -> String {
    // Phase 1: one client, idle server.
    let single_state = Arc::new(ServerState::new());
    let single_client = LocalClient::new(single_state);
    let single_session = open_session(&single_client);
    let single = replay(&single_client, single_session);

    // Phase 2: sixteen clients, one shared server, one session each.
    let state = Arc::new(ServerState::new());
    // Prime the shared catalog cache so client threads measure serving,
    // not the one-off dataset build.
    open_session(&LocalClient::new(Arc::clone(&state)));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let client = LocalClient::new(state);
                let session = open_session(&client);
                replay(&client, session)
            })
        })
        .collect();
    let mut storm = LatencyHistogram::new();
    for worker in workers {
        storm.absorb(&worker.join().expect("storm worker"));
    }

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let single_p50 = us(single.percentile(0.50));
    let storm_p50 = us(storm.percentile(0.50));
    let ratio = if single_p50 > 0.0 { storm_p50 / single_p50 } else { f64::INFINITY };
    let within_2x = ratio <= 2.0;

    let server_stats = LocalClient::new(Arc::clone(&state)).request(json!({"cmd": "stats"}));
    let rows =
        vec![histogram_row("single_session", 1, &single), histogram_row("storm", CLIENTS, &storm)];
    let doc = json!({
        "schema_version": 1,
        "scenario": "sdss-panzoom",
        "rows": rows,
        "summary": {
            "clients": CLIENTS,
            "single_session_p50_us": single_p50,
            "storm_p50_us": storm_p50,
            "p50_ratio": ratio,
            "p50_within_2x_single_session": within_2x,
        },
        "server_stats": server_stats["stats"].clone(),
    });

    let mut out = String::from("Server dispatch latency: 16-client storm vs single session\n");
    out.push_str(&crate::text_table(
        &["phase", "clients", "requests", "p50 us", "p95 us", "p99 us", "mean us", "max us"],
        &[&single, &storm]
            .iter()
            .zip(["single_session", "storm"])
            .map(|(h, phase)| {
                vec![
                    phase.to_string(),
                    if phase == "storm" { CLIENTS.to_string() } else { "1".to_string() },
                    h.count().to_string(),
                    format!("{:.1}", us(h.percentile(0.50))),
                    format!("{:.1}", us(h.percentile(0.95))),
                    format!("{:.1}", us(h.percentile(0.99))),
                    format!("{:.1}", us(h.mean())),
                    format!("{:.1}", us(h.max())),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str(&format!(
        "\nstorm p50 / single p50 = {ratio:.2}x (target: <= 2x) — {}\n",
        if within_2x { "met" } else { "MISSED" }
    ));

    let text = serde_json::to_string_pretty(&doc).unwrap_or_default();
    let path = std::path::Path::new("target").join("BENCH_server.json");
    match std::fs::create_dir_all("target").and_then(|_| std::fs::write(&path, &text)) {
        Ok(()) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out
}
