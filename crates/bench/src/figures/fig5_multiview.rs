//! Figure 5: a multi-view interface where clicking a bar in Q3's chart
//! binds the literal in Q1/Q2's ANY node.

use pi2_core::{Event, SessionBuilder};
use pi2_difftree::rules::canonicalize;
use pi2_difftree::DiffForest;
use pi2_interface::{map_forest, MapperConfig, VizInteraction};
use pi2_sql::Literal;

pub fn run() -> String {
    let catalog = pi2_datasets::toy::default_catalog();
    let queries = pi2_datasets::toy::fig5_queries();
    let mut out = String::new();
    out.push_str("== Figure 5: multi-view interface with click binding ==\n\n");
    for (i, q) in queries.iter().enumerate() {
        out.push_str(&format!("Q{}: {}\n", i + 1, q));
    }

    // Two clusters: {Q1, Q2} merged (they differ only in the literal),
    // Q3 on its own.
    let merged = DiffForest::fully_merged(&queries[..2]);
    let single = DiffForest::singletons(&queries[2..]);
    let mut forest = DiffForest { trees: vec![merged.trees[0].clone(), single.trees[0].clone()] };
    for t in &mut forest.trees {
        *t = canonicalize(t, Some(&catalog));
    }

    let candidates =
        map_forest(&forest, &catalog, &queries, &MapperConfig::default()).expect("mapper");
    let iface = candidates
        .into_iter()
        .find(|i| {
            i.charts.iter().any(|c| {
                c.interactions.iter().any(|x| matches!(x, VizInteraction::ClickBind { .. }))
            })
        })
        .expect("click-bind candidate");

    out.push_str(&format!("\ninterface: {} charts side by side\n", iface.charts.len()));
    for c in &iface.charts {
        out.push_str(&format!(
            "  {}: {} ({:?}){}\n",
            c.name,
            c.title,
            c.mark,
            if c.interactions.is_empty() {
                String::new()
            } else {
                format!(
                    " — interactions: {}",
                    c.interactions.iter().map(|i| i.kind_name()).collect::<Vec<_>>().join(", ")
                )
            }
        ));
    }

    // Drive it: click the bar a=3 on the right chart; the left chart's
    // query rebinds its literal.
    let click_chart = iface
        .charts
        .iter()
        .find(|c| c.interactions.iter().any(|x| matches!(x, VizInteraction::ClickBind { .. })))
        .expect("click chart")
        .id;
    let mut session = SessionBuilder::new(catalog, forest, iface).build();
    let before = session.query_for_chart(0).expect("query").to_string();
    let updates = session
        .dispatch(Event::Click { chart: click_chart, value: Literal::Int(3) })
        .expect("click");
    out.push_str(&format!("\nclick on bar a=3 of G{}:\n", click_chart + 1));
    out.push_str(&format!("  left chart before: {before}\n"));
    for u in &updates {
        out.push_str(&format!(
            "  updated G{}: {} ({} rows)\n",
            u.chart + 1,
            u.query,
            u.result.len()
        ));
    }
    out
}
