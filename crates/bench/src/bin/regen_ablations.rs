//! Regenerate the cost-model ablation table; see `pi2_bench::figures::ablations`.
fn main() {
    print!("{}", pi2_bench::figures::ablations::run());
}
