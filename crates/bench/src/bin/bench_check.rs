//! Validate the benchmark JSON artifacts (`target/BENCH_latency.json`,
//! `target/BENCH_interaction.json`, `target/BENCH_server.json`,
//! `target/BENCH_fleet.json`, `target/BENCH_load.json`,
//! `target/BENCH_recovery.json`, `target/BENCH_render.json`): present,
//! parseable, matching the
//! expected schema, and — where an exhibit makes a headline claim (fleet
//! cache-hit p50, load-storm tail, crash-recovery fidelity) — meeting it.
//! Exits non-zero on the first problem so CI fails when a regen binary
//! silently stops producing its artifact.

use serde_json::Value;
use std::path::Path;
use std::process::ExitCode;

fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

fn expect_number(obj: &Value, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_f64().is_some() => Ok(()),
        Some(_) => Err(format!("{ctx}: `{key}` is not a number")),
        None => Err(format!("{ctx}: missing `{key}`")),
    }
}

fn expect_string(obj: &Value, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_str().is_some() => Ok(()),
        Some(_) => Err(format!("{ctx}: `{key}` is not a string")),
        None => Err(format!("{ctx}: missing `{key}`")),
    }
}

fn expect_bool(obj: &Value, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(v) if v.as_bool().is_some() => Ok(()),
        Some(_) => Err(format!("{ctx}: `{key}` is not a bool")),
        None => Err(format!("{ctx}: missing `{key}`")),
    }
}

/// `BENCH_latency.json`: a non-empty array of parallel-speedup rows.
fn check_latency(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let rows =
        v.as_array().ok_or_else(|| format!("{}: top level must be an array", path.display()))?;
    if rows.is_empty() {
        return Err(format!("{}: no rows", path.display()));
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{} row {i}", path.display());
        for key in ["workers", "per_worker_iterations", "cold_ms", "warm_ms", "cost"] {
            expect_number(row, key, &ctx)?;
        }
        expect_bool(row, "deterministic", &ctx)?;
        if row.get("stats").and_then(Value::as_object).is_none() {
            return Err(format!("{ctx}: missing `stats` object"));
        }
    }
    Ok(())
}

/// `BENCH_interaction.json`: versioned object with per-(scenario, mode,
/// event class) latency rows and a speedup summary.
fn check_interaction(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let ctx = path.display().to_string();
    if v.get("schema_version").and_then(Value::as_i64) != Some(1) {
        return Err(format!("{ctx}: `schema_version` must be 1"));
    }
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing `rows` array"))?;
    if rows.is_empty() {
        return Err(format!("{ctx}: no rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{ctx} rows[{i}]");
        for key in ["scenario", "mode", "event_class"] {
            expect_string(row, key, &ctx)?;
        }
        for key in ["count", "p50_us", "p95_us", "p99_us", "mean_us", "max_us"] {
            expect_number(row, key, &ctx)?;
        }
    }
    if v.get("session_stats").and_then(Value::as_object).is_none() {
        return Err(format!("{ctx}: missing `session_stats` object"));
    }
    let sweep = v
        .get("size_sweep")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing `size_sweep` array"))?;
    if sweep.len() < 3 {
        return Err(format!("{ctx}: `size_sweep` needs at least 3 sizes, has {}", sweep.len()));
    }
    for (i, point) in sweep.iter().enumerate() {
        let ctx = format!("{ctx} size_sweep[{i}]");
        for key in [
            "rows",
            "catalog_build_ms",
            "columnar_build_ms",
            "warm_pan_p50_us",
            "delta_pan_p50_us",
            "cold_pan_p50_us",
            "blocks_scanned",
            "blocks_pruned",
            "delta_hits",
            "delta_seeds",
        ] {
            expect_number(point, key, &ctx)?;
        }
        if point["delta_hits"].as_i64() == Some(0) {
            return Err(format!("{ctx}: no pans were answered by delta recomputation"));
        }
        // Tables under a few storage blocks have nothing to prune; only
        // multi-block sizes must show zone maps earning their keep.
        if point["rows"].as_i64().unwrap_or(0) >= 10_000
            && point["blocks_pruned"].as_i64() == Some(0)
        {
            return Err(format!("{ctx}: zone maps pruned nothing"));
        }
    }
    let scaling = v.get("scaling").ok_or_else(|| format!("{ctx}: missing `scaling` object"))?;
    let gctx = format!("{ctx} scaling");
    expect_number(scaling, "warm_p50_ratio_top_vs_mid", &gctx)?;
    expect_bool(scaling, "warm_ratio_target_met", &gctx)?;
    if scaling.get("sizes").and_then(Value::as_array).is_none() {
        return Err(format!("{gctx}: missing `sizes` array"));
    }
    // The sub-linearity gate: warm-gesture latency must not scale with
    // data size (10x more rows must cost well under 10x the p50).
    if scaling["warm_ratio_target_met"].as_bool() != Some(true) {
        return Err(format!(
            "{gctx}: `warm_ratio_target_met` is false — warm dispatch latency grew \
             with data size (ratio {})",
            scaling["warm_p50_ratio_top_vs_mid"]
        ));
    }
    let summary = v.get("summary").ok_or_else(|| format!("{ctx}: missing `summary` object"))?;
    let sctx = format!("{ctx} summary");
    expect_number(summary, "sdss_warm_speedup_vs_reference", &sctx)?;
    expect_number(summary, "sdss_cold_columnar_speedup_vs_reference", &sctx)?;
    expect_bool(summary, "warm_speedup_target_met", &sctx)?;
    expect_bool(summary, "cold_beats_reference", &sctx)?;
    Ok(())
}

/// `BENCH_server.json`: versioned object with per-phase latency rows and
/// the storm-vs-single-session summary.
fn check_server(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let ctx = path.display().to_string();
    if v.get("schema_version").and_then(Value::as_i64) != Some(1) {
        return Err(format!("{ctx}: `schema_version` must be 1"));
    }
    expect_string(&v, "scenario", &ctx)?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing `rows` array"))?;
    if rows.is_empty() {
        return Err(format!("{ctx}: no rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{ctx} rows[{i}]");
        expect_string(row, "phase", &ctx)?;
        for key in ["clients", "count", "p50_us", "p95_us", "p99_us", "mean_us", "max_us"] {
            expect_number(row, key, &ctx)?;
        }
    }
    let summary = v.get("summary").ok_or_else(|| format!("{ctx}: missing `summary` object"))?;
    let sctx = format!("{ctx} summary");
    for key in ["clients", "single_session_p50_us", "storm_p50_us", "p50_ratio"] {
        expect_number(summary, key, &sctx)?;
    }
    expect_bool(summary, "p50_within_2x_single_session", &sctx)?;
    if v.get("server_stats").and_then(Value::as_object).is_none() {
        return Err(format!("{ctx}: missing `server_stats` object"));
    }
    Ok(())
}

/// `BENCH_fleet.json`: versioned object with per-fleet-outcome latency
/// rows and the generation-storm summary. Beyond schema shape, the two
/// headline claims are *enforced*: a cache-hit p50 time-to-interface
/// under 1 ms, and exactly one cold generation per unique log
/// fingerprint (no duplicated search work, nothing shed).
fn check_fleet(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let ctx = path.display().to_string();
    if v.get("schema_version").and_then(Value::as_i64) != Some(1) {
        return Err(format!("{ctx}: `schema_version` must be 1"));
    }
    expect_string(&v, "scenario", &ctx)?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing `rows` array"))?;
    if rows.is_empty() {
        return Err(format!("{ctx}: no rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{ctx} rows[{i}]");
        expect_string(row, "outcome", &ctx)?;
        for key in ["count", "p50_us", "p95_us", "p99_us", "mean_us", "max_us"] {
            expect_number(row, key, &ctx)?;
        }
    }
    let summary = v.get("summary").ok_or_else(|| format!("{ctx}: missing `summary` object"))?;
    let sctx = format!("{ctx} summary");
    for key in ["clients", "repeated_fraction", "unique_fingerprints", "cache_hit_p50_us"] {
        expect_number(summary, key, &sctx)?;
    }
    for key in ["cache_hit_p50_within_1ms", "one_generation_per_unique_fingerprint"] {
        expect_bool(summary, key, &sctx)?;
        if summary[key].as_bool() != Some(true) {
            return Err(format!("{sctx}: `{key}` is false — headline claim not met"));
        }
    }
    if v.get("server_stats").and_then(Value::as_object).is_none() {
        return Err(format!("{ctx}: missing `server_stats` object"));
    }
    Ok(())
}

/// `BENCH_load.json`: versioned object with per-phase latency rows and
/// the load-storm summary. The reactor's headline claims are *enforced*:
/// at least 1k sessions sustained through the storm, storm p99 within
/// 20× of the single-session p99, and a clean teardown (zero sessions
/// left at the end).
fn check_load(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let ctx = path.display().to_string();
    if v.get("schema_version").and_then(Value::as_i64) != Some(1) {
        return Err(format!("{ctx}: `schema_version` must be 1"));
    }
    expect_string(&v, "scenario", &ctx)?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing `rows` array"))?;
    if rows.is_empty() {
        return Err(format!("{ctx}: no rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{ctx} rows[{i}]");
        expect_string(row, "phase", &ctx)?;
        for key in ["count", "p50_us", "p95_us", "p99_us", "p999_us", "mean_us", "max_us"] {
            expect_number(row, key, &ctx)?;
        }
    }
    let summary = v.get("summary").ok_or_else(|| format!("{ctx}: missing `summary` object"))?;
    let sctx = format!("{ctx} summary");
    for key in [
        "sessions",
        "connections",
        "outstanding_cap",
        "measured_requests",
        "churn_cycles",
        "sheds",
        "shed_rate",
        "single_session_p99_us",
        "storm_p99_us",
        "storm_p999_us",
        "p99_ratio",
        "active_sessions_at_peak",
        "active_sessions_at_end",
    ] {
        expect_number(summary, key, &sctx)?;
    }
    expect_bool(summary, "p99_within_20x_single_session", &sctx)?;
    if summary["p99_within_20x_single_session"].as_bool() != Some(true) {
        return Err(format!(
            "{sctx}: `p99_within_20x_single_session` is false — the storm tail is not dead"
        ));
    }
    if summary["sessions"].as_i64().unwrap_or(0) < 1000 {
        return Err(format!("{sctx}: fewer than 1000 sessions sustained"));
    }
    if summary["active_sessions_at_peak"].as_i64() != summary["sessions"].as_i64() {
        return Err(format!("{sctx}: not all sessions were live at peak"));
    }
    if summary["active_sessions_at_end"].as_i64() != Some(0) {
        return Err(format!("{sctx}: sessions leaked past teardown"));
    }
    if v.get("server_stats").and_then(Value::as_object).is_none() {
        return Err(format!("{ctx}: missing `server_stats` object"));
    }
    Ok(())
}

/// `BENCH_recovery.json`: the crash-recovery storm gates — every ramped
/// session recovered with a byte-identical render, the resume tail held
/// its budget, and nothing survived close + crash.
fn check_recovery(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let ctx = path.display().to_string();
    if v.get("schema_version").and_then(Value::as_i64) != Some(1) {
        return Err(format!("{ctx}: `schema_version` must be 1"));
    }
    expect_string(&v, "scenario", &ctx)?;
    let summary = v.get("summary").ok_or_else(|| format!("{ctx}: missing `summary` object"))?;
    let sctx = format!("{ctx} summary");
    for key in [
        "sessions",
        "sessions_recovered",
        "frames_replayed",
        "frames_skipped",
        "recovery_warnings",
        "recovery_ms",
        "identical_renders",
        "resume_p50_ms",
        "resume_p99_ms",
        "resume_max_ms",
        "leaked_sessions_after_close",
        "leaked_checkpoints_after_close",
        "active_sessions_at_end",
    ] {
        expect_number(summary, key, &sctx)?;
    }
    if summary["sessions"].as_i64().unwrap_or(0) < 1000 {
        return Err(format!("{sctx}: fewer than 1000 sessions ramped"));
    }
    if summary["all_sessions_recovered"].as_bool() != Some(true) {
        return Err(format!("{sctx}: not every checkpointed session recovered"));
    }
    if summary["all_renders_identical"].as_bool() != Some(true) {
        return Err(format!(
            "{sctx}: a recovered session rendered differently than before the kill"
        ));
    }
    if summary["resume_p99_within_budget"].as_bool() != Some(true) {
        return Err(format!("{sctx}: resume+render p99 blew the 2s budget"));
    }
    if summary["zero_leakage_after_close"].as_bool() != Some(true) {
        return Err(format!("{sctx}: closed sessions leaked through recovery"));
    }
    Ok(())
}

/// `BENCH_render.json`: the `render_delta` frame-economics gates —
/// per-event-class latency rows plus the headline byte claim, *enforced*:
/// patch frames at p50 must cost no more than 25% of the full-spec bytes
/// a re-rendering client would download per gesture.
fn check_render(path: &Path) -> Result<(), String> {
    let v = load(path)?;
    let ctx = path.display().to_string();
    if v.get("schema_version").and_then(Value::as_i64) != Some(1) {
        return Err(format!("{ctx}: `schema_version` must be 1"));
    }
    expect_string(&v, "scenario", &ctx)?;
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing `rows` array"))?;
    if rows.is_empty() {
        return Err(format!("{ctx}: no rows"));
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("{ctx} rows[{i}]");
        expect_string(row, "event_class", &ctx)?;
        for key in ["count", "p50_us", "p95_us", "p99_us", "mean_us", "max_us"] {
            expect_number(row, key, &ctx)?;
        }
    }
    let bytes = v.get("bytes").ok_or_else(|| format!("{ctx}: missing `bytes` object"))?;
    let bctx = format!("{ctx} bytes");
    for key in
        ["frames", "empty_deltas", "delta_p50", "delta_p99", "full_p50", "full_p99", "ratio_p50"]
    {
        expect_number(bytes, key, &bctx)?;
    }
    if bytes["frames"].as_i64().unwrap_or(0) == 0 {
        return Err(format!("{bctx}: the storm produced no patch frames"));
    }
    expect_bool(bytes, "ratio_target_met", &bctx)?;
    if bytes["ratio_target_met"].as_bool() != Some(true) {
        return Err(format!(
            "{bctx}: `ratio_target_met` is false — delta frames cost {} of a full spec \
             (gate: <= {})",
            bytes["ratio_p50"], bytes["ratio_target"]
        ));
    }
    Ok(())
}

type Check = fn(&Path) -> Result<(), String>;

fn main() -> ExitCode {
    let checks: [(&str, Check); 7] = [
        ("target/BENCH_latency.json", check_latency),
        ("target/BENCH_interaction.json", check_interaction),
        ("target/BENCH_server.json", check_server),
        ("target/BENCH_fleet.json", check_fleet),
        ("target/BENCH_load.json", check_load),
        ("target/BENCH_recovery.json", check_recovery),
        ("target/BENCH_render.json", check_render),
    ];
    let mut failed = false;
    for (path, check) in checks {
        match check(Path::new(path)) {
            Ok(()) => println!("ok: {path}"),
            Err(m) => {
                eprintln!("FAIL: {m}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
