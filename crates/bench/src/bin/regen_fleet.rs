//! Regenerate the fleet-cache generation-storm exhibit; see
//! `pi2_bench::figures::fleet_storm`. Writes
//! `target/BENCH_fleet.json` as a side effect.
fn main() {
    print!("{}", pi2_bench::figures::fleet_storm::run());
}
