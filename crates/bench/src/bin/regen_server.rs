//! Regenerate the server-storm dispatch-latency exhibit; see
//! `pi2_bench::figures::server_storm`. Writes
//! `target/BENCH_server.json` as a side effect.
fn main() {
    print!("{}", pi2_bench::figures::server_storm::run());
}
