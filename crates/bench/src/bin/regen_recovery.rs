//! Regenerate the crash-recovery storm exhibit; see
//! `pi2_bench::figures::recovery_storm`. Writes
//! `target/BENCH_recovery.json` as a side effect. Scale knob:
//! `PI2_RECOVERY_SESSIONS` (default 1000).
fn main() {
    print!("{}", pi2_bench::figures::recovery_storm::run());
}
