//! Regenerate one paper exhibit; see `pi2_bench::figures::render_delta`.
fn main() {
    print!("{}", pi2_bench::figures::render_delta::run());
}
