//! Regenerate every table and figure of the paper, in order.
fn main() {
    for (name, gen) in pi2_bench::figures::all() {
        println!("\n######################################################################");
        println!("# {name}");
        println!("######################################################################\n");
        print!("{}", gen());
    }
}
