//! Regenerate one paper exhibit; see `pi2_bench::figures::fig1_sdss`.
fn main() {
    print!("{}", pi2_bench::figures::fig1_sdss::run());
}
