//! Regenerate one paper exhibit; see `pi2_bench::figures::fig7_covid`.
fn main() {
    print!("{}", pi2_bench::figures::fig7_covid::run());
}
