//! Regenerate the interaction-dispatch latency exhibit; see
//! `pi2_bench::figures::interaction_storm`. Writes
//! `target/BENCH_interaction.json` as a side effect.
fn main() {
    print!("{}", pi2_bench::figures::interaction_storm::run());
}
