//! Regenerate one paper exhibit; see `pi2_bench::figures::latency`.
fn main() {
    print!("{}", pi2_bench::figures::latency::run());
}
