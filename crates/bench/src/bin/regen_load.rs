//! Regenerate the 1k-session reactor load-storm exhibit; see
//! `pi2_bench::figures::load_storm`. Writes `target/BENCH_load.json` as
//! a side effect. Scale knobs: `PI2_LOAD_SESSIONS` (default 1024, up to
//! 10k), `PI2_LOAD_CONNS` (default 64), `PI2_LOAD_OPS` (default 20000).
fn main() {
    print!("{}", pi2_bench::figures::load_storm::run());
}
