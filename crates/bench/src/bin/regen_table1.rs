//! Regenerate one paper exhibit; see `pi2_bench::figures::table1`.
fn main() {
    print!("{}", pi2_bench::figures::table1::run());
}
