//! Regenerate one paper exhibit; see `pi2_bench::figures::fig3_predicates`.
fn main() {
    print!("{}", pi2_bench::figures::fig3_predicates::run());
}
