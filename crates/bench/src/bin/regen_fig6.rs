//! Regenerate one paper exhibit; see `pi2_bench::figures::fig6_pipeline`.
fn main() {
    print!("{}", pi2_bench::figures::fig6_pipeline::run());
}
