//! Regenerate one paper exhibit; see `pi2_bench::figures::search_quality`.
fn main() {
    print!("{}", pi2_bench::figures::search_quality::run());
}
