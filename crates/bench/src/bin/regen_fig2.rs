//! Regenerate one paper exhibit; see `pi2_bench::figures::fig2_static`.
fn main() {
    print!("{}", pi2_bench::figures::fig2_static::run());
}
