//! Regenerate one paper exhibit; see `pi2_bench::figures::fig4_merged`.
fn main() {
    print!("{}", pi2_bench::figures::fig4_merged::run());
}
