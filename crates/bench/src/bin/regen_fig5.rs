//! Regenerate one paper exhibit; see `pi2_bench::figures::fig5_multiview`.
fn main() {
    print!("{}", pi2_bench::figures::fig5_multiview::run());
}
