//! Fault-injection integration tests: every fault class degrades
//! gracefully, and panic isolation is deterministic — losing a worker is
//! bit-equivalent to never having spawned it.
//!
//! All tests in this binary either inject a fault or hold the injector
//! lock via a benign injection, so parallel test threads cannot perturb
//! each other's fault state.

use pi2_conformance::faults::suppress_injected_panic_output;
use pi2_conformance::{check_fault, RunnerConfig, FAULT_CLASSES};
use pi2_core::{DegradationLevel, Pi2, SearchStrategy};
use pi2_faults::{inject, Fault};
use pi2_mcts::MctsConfig;

#[test]
fn every_fault_class_passes_its_oracles() {
    suppress_injected_panic_output();
    let catalog = pi2_datasets::toy::default_catalog();
    let log = pi2_datasets::toy::fig2_queries();
    for class in FAULT_CLASSES {
        check_fault(&catalog, &log, class, 7)
            .unwrap_or_else(|f| panic!("fault `{class}`: oracle `{}`: {}", f.oracle, f.message));
    }
}

#[test]
fn fault_campaign_is_green_and_saves_nothing() {
    suppress_injected_panic_output();
    let cfg = RunnerConfig {
        seed: 3,
        runs: 4,
        fault: Some("worker-panic".into()),
        corpus_dir: None,
        verbose: false,
        ..RunnerConfig::default()
    };
    let report = pi2_conformance::fuzz(&cfg);
    assert!(report.all_green(), "failures: {:?}", report.failures);
    assert_eq!(report.runs_completed, 4);
}

/// The acceptance bar for panic isolation: a 4-worker search that loses
/// worker 3 must produce exactly the result of a 3-worker search — worker
/// seeds depend only on the worker index, rewards are pure, and the merge
/// ranges over survivors — so the panic costs redundancy, not correctness.
#[test]
fn one_panicked_worker_costs_like_a_smaller_panic_free_fleet() {
    suppress_injected_panic_output();
    let catalog = pi2_datasets::toy::default_catalog();
    let queries = pi2_datasets::toy::fig2_queries();
    let mcts = |workers: usize| {
        Pi2::builder(catalog.clone())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 24,
                rollout_depth: 2,
                seed: 11,
                workers,
                ..Default::default()
            }))
            .build()
    };
    let degraded = {
        let _fault = inject(Fault::WorkerPanic { worker: 3 });
        mcts(4).generate(&queries).unwrap()
    };
    let baseline = {
        // Benign injection (worker 99 never exists): holds the injector
        // lock so this fault-free run cannot race another test's fault.
        let _lock = inject(Fault::WorkerPanic { worker: 99 });
        mcts(3).generate(&queries).unwrap()
    };
    assert_eq!(degraded.stats.degradation, DegradationLevel::Full);
    let stats = degraded.stats.search.as_ref().unwrap();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.workers.len(), 4);
    assert!(stats.workers[3].panicked);
    assert_eq!(baseline.stats.search.as_ref().unwrap().worker_panics, 0);
    assert_eq!(
        degraded.cost.total.to_bits(),
        baseline.cost.total.to_bits(),
        "degraded cost {} != baseline cost {}",
        degraded.cost.total,
        baseline.cost.total
    );
    assert_eq!(degraded.interface, baseline.interface);
}
