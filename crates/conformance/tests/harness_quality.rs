//! Mutation tests for the harness itself: a planted pipeline bug must be
//! caught by the fuzzer and shrunk to a minimal reproducer.

use pi2_conformance::{check, shrink, CheckConfig, Failure, Mutation, RunnerConfig};

/// The planted expressiveness bug is found within a small seeded
/// campaign, and the failing log shrinks to at most 3 queries (two
/// distinct queries are the minimal witness that "only default
/// instantiations count" is wrong).
#[test]
fn injected_expressiveness_bug_is_caught_and_shrunk() {
    let cfg = RunnerConfig {
        seed: 7,
        runs: 50,
        mutation: Some(Mutation::BreakExpressiveness),
        corpus_dir: None,
        verbose: false,
        ..RunnerConfig::default()
    };
    let report = pi2_conformance::fuzz(&cfg);
    assert!(!report.failures.is_empty(), "planted bug was never caught");
    for (repro, _) in &report.failures {
        assert_eq!(repro.oracle, "expressiveness");
        assert!(
            repro.queries.len() <= 3,
            "reproducer not minimal: {} queries\n{}",
            repro.queries.len(),
            repro.to_text()
        );
        // A minimal witness needs at least two queries: one query alone is
        // its own default instantiation.
        assert!(repro.queries.len() >= 2, "over-shrunk:\n{}", repro.to_text());
    }
}

/// Shrinking preserves the failing oracle: the minimized input fails the
/// same way the original did.
#[test]
fn shrunk_input_still_fails_same_oracle() {
    let scenario = pi2_conformance::scenarios::scenario_by_name("toy").unwrap();
    let log: Vec<pi2_sql::Query> = [
        "SELECT a, count(*) FROM t GROUP BY a",
        "SELECT b, count(*) FROM t GROUP BY b",
        "SELECT a, count(*) FROM t GROUP BY a",
    ]
    .iter()
    .map(|s| pi2_sql::parse_query(s).unwrap())
    .collect();
    let cfg =
        CheckConfig { mutation: Some(Mutation::BreakExpressiveness), ..CheckConfig::default() };
    let Err(Failure { oracle, .. }) = check(&scenario.catalog, &log, None, &cfg) else {
        panic!("planted bug not caught");
    };
    assert_eq!(oracle, "expressiveness");
    let (min_log, min_events) =
        shrink(&scenario.catalog, &log, &[], &cfg, oracle).expect("shrink reproduces");
    assert_eq!(min_log.len(), 2, "{min_log:?}");
    assert!(min_events.is_empty());
    let Err(again) = check(&scenario.catalog, &min_log, Some(&min_events), &cfg) else {
        panic!("shrunken input no longer fails");
    };
    assert_eq!(again.oracle, "expressiveness");
}

/// A clean pipeline passes a short seeded campaign end to end (the same
/// configuration CI runs with a larger budget).
#[test]
fn clean_pipeline_fuzzes_green() {
    let cfg = RunnerConfig { seed: 7, runs: 15, verbose: false, ..RunnerConfig::default() };
    let report = pi2_conformance::fuzz(&cfg);
    assert!(report.all_green(), "failures: {:?}", report.failures);
    assert_eq!(report.runs_completed, 15);
}
