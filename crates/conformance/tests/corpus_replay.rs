//! Replay every committed corpus entry (see `corpus/README.md`):
//! regression entries must pass the oracle battery, planted-bug entries
//! must still be caught.

use pi2_conformance::corpus;

#[test]
fn corpus_is_nonempty() {
    let entries = corpus::load_dir(&corpus::default_dir()).expect("corpus dir readable");
    assert!(
        !entries.is_empty(),
        "committed corpus is empty — regression reproducers have gone missing"
    );
}

#[test]
fn every_corpus_entry_replays() {
    let entries = corpus::load_dir(&corpus::default_dir()).expect("corpus dir readable");
    let mut failures = Vec::new();
    for (path, repro) in entries {
        if let Err(e) = repro.replay() {
            failures.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(failures.is_empty(), "corpus replay failures:\n{}", failures.join("\n"));
}

#[test]
fn corpus_files_round_trip() {
    for (path, repro) in corpus::load_dir(&corpus::default_dir()).unwrap() {
        let reparsed = corpus::Reproducer::from_text(&repro.to_text())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(reparsed.to_text(), repro.to_text(), "{}", path.display());
    }
}
