//! Fleet-cache conformance: over fuzzed logs, scenarios, and strategies,
//! a cache hit must be bit-identical to the cold generation it was
//! published from, and attaching a fleet must never change what the
//! pipeline generates (see [`pi2_conformance::check_fleet`]).

use pi2_conformance::{check_fleet, scenarios, StrategyChoice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn cache_hits_are_bit_identical_across_fuzzed_logs() {
    for scenario in scenarios() {
        let mut rng = SmallRng::seed_from_u64(0xF1EE7);
        for run in 0..6u64 {
            let log_len = rng.gen_range(1..5);
            let log = scenario.spec.random_log(&mut rng, log_len);
            // Alternate the fast deterministic path and a small seeded
            // search (exercises the fleet-shared cost memo too).
            let strategy = if run % 2 == 0 {
                StrategyChoice::FullMerge
            } else {
                StrategyChoice::Mcts { iterations: 12, seed: 17, workers: 2 }
            };
            if let Err(f) = check_fleet(&scenario.catalog, &log, strategy) {
                panic!(
                    "scenario {} run {run} ({strategy:?}): [{}] {}\nlog: {}",
                    scenario.name,
                    f.oracle,
                    f.message,
                    log.iter().map(|q| q.to_string()).collect::<Vec<_>>().join(" | "),
                );
            }
        }
    }
}
