//! `pi2-conformance` — seeded fuzz-and-oracle campaign over the PI2
//! pipeline.
//!
//! ```text
//! cargo run -p pi2-conformance -- --seed 7 --runs 50 --budget-secs 60
//! ```
//!
//! Exits non-zero when any oracle fails; the shrunken reproducer is
//! written to the committed corpus directory (override with
//! `--corpus-dir`, disable with `--no-save`).

use pi2_conformance::{corpus, Mutation, RunnerConfig};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    cfg: RunnerConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: pi2-conformance [--seed N] [--runs K] [--budget-secs S] \
         [--corpus-dir DIR] [--no-save] [--inject-bug] [--fault CLASS] [--verbose]"
    );
    eprintln!("fault classes: {}", pi2_conformance::FAULT_CLASSES.join(", "));
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut cfg = RunnerConfig {
        corpus_dir: Some(corpus::default_dir()),
        verbose: true,
        ..RunnerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => cfg.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--runs" => cfg.runs = value("--runs").parse().unwrap_or_else(|_| usage()),
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs").parse().unwrap_or_else(|_| usage());
                cfg.budget = Some(Duration::from_secs(secs));
            }
            "--corpus-dir" => cfg.corpus_dir = Some(PathBuf::from(value("--corpus-dir"))),
            "--no-save" => cfg.corpus_dir = None,
            "--inject-bug" => cfg.mutation = Some(Mutation::BreakExpressiveness),
            "--fault" => {
                let class = value("--fault");
                if !pi2_conformance::FAULT_CLASSES.contains(&class.as_str()) {
                    eprintln!("unknown fault class `{class}`");
                    usage();
                }
                cfg.fault = Some(class);
            }
            "--quiet" => cfg.verbose = false,
            "--verbose" => cfg.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    Args { cfg }
}

fn main() {
    let Args { cfg } = parse_args();
    if cfg.fault.is_some() {
        pi2_conformance::faults::suppress_injected_panic_output();
    }
    eprintln!(
        "pi2-conformance: seed={} runs={} budget={:?}{}{}",
        cfg.seed,
        cfg.runs,
        cfg.budget,
        if cfg.mutation.is_some() { " (bug injected)" } else { "" },
        cfg.fault.as_deref().map(|f| format!(" (fault: {f})")).unwrap_or_default()
    );
    let report = pi2_conformance::fuzz(&cfg);
    eprintln!(
        "{} of {} runs completed in {:.1}s, {} failure(s)",
        report.runs_completed,
        cfg.runs,
        report.elapsed.as_secs_f64(),
        report.failures.len()
    );
    if !report.all_green() {
        for (r, path) in &report.failures {
            eprintln!(
                "  [{}] oracle `{}`: {} ({} queries, {} events){}",
                r.scenario,
                r.oracle,
                r.message,
                r.queries.len(),
                r.events.len(),
                path.as_deref().map(|p| format!(" -> {}", p.display())).unwrap_or_default()
            );
        }
        std::process::exit(1);
    }
}
