//! The oracle battery: every invariant checked per fuzzed query log.

use crate::events::{current_hole_value, domain_bounds, event_applies, random_event};
use pi2_core::{
    Event, FleetConfig, FleetHandle, FleetOutcome, GeneratedInterface, InterfaceSession, Pi2,
    SearchStrategy, WidgetState,
};
use pi2_difftree::{default_bindings, expresses, lower_query, Bindings, Domain, NodeKind};
use pi2_engine::{Catalog, DeltaCache};
use pi2_interface::{Target, VizInteraction, WidgetKind};
use pi2_mcts::MctsConfig;
use pi2_sql::{normalize, Query};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which search strategy a conformance run drives the pipeline with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyChoice {
    /// The fast merge-everything path.
    FullMerge,
    /// A small seeded MCTS (exercises search + memo layers).
    Mcts {
        /// Iteration budget (keep small: tens, not hundreds).
        iterations: usize,
        /// Search seed.
        seed: u64,
        /// Root-parallel worker count.
        workers: usize,
    },
}

impl StrategyChoice {
    fn to_strategy(self) -> SearchStrategy {
        match self {
            StrategyChoice::FullMerge => SearchStrategy::FullMerge,
            StrategyChoice::Mcts { iterations, seed, workers } => {
                SearchStrategy::Mcts(MctsConfig {
                    iterations,
                    seed,
                    workers,
                    rollout_depth: 2,
                    ..Default::default()
                })
            }
        }
    }
}

/// A deliberately broken oracle variant, used for mutation-testing the
/// harness itself: a conformance harness that cannot catch a planted bug
/// is not testing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Replace the expressiveness check with one that only accepts each
    /// tree's *default* instantiation — any log whose queries actually
    /// vary then fails, and the shrinker must reduce it to the minimal
    /// (two-query) witness.
    BreakExpressiveness,
}

/// Configuration for one [`check`] invocation.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Search strategy for the pipeline under test.
    pub strategy: StrategyChoice,
    /// Number of random events in the walk (ignored when events are
    /// replayed from a recording).
    pub walk_len: usize,
    /// Seed for the event walk.
    pub walk_seed: u64,
    /// Also run the (expensive) memo/workers determinism oracle.
    pub workers_oracle: bool,
    /// Planted bug for mutation testing, if any.
    pub mutation: Option<Mutation>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            strategy: StrategyChoice::FullMerge,
            walk_len: 6,
            walk_seed: 0,
            workers_oracle: false,
            mutation: None,
        }
    }
}

/// An oracle violation: which oracle tripped, a human-readable message,
/// and the events dispatched up to (and including) the trigger.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Stable oracle name (`"expressiveness"`, `"chart-query"`, …).
    pub oracle: &'static str,
    /// What went wrong.
    pub message: String,
    /// Events dispatched before the failure (empty for log-only oracles).
    pub events: Vec<Event>,
}

impl Failure {
    pub(crate) fn new(oracle: &'static str, message: impl Into<String>) -> Self {
        Failure { oracle, message: message.into(), events: Vec::new() }
    }
}

fn roundtrips(q: &Query) -> Result<(), String> {
    let printed = q.to_string();
    let reparsed =
        pi2_sql::parse_query(&printed).map_err(|e| format!("`{printed}` does not reparse: {e}"))?;
    if normalize::normalized(&reparsed) != normalize::normalized(q) {
        return Err(format!("`{printed}` changes under print/parse round-trip"));
    }
    Ok(())
}

fn check_widget_states(session: &InterfaceSession) -> Result<(), String> {
    for (id, state) in session.widget_states() {
        let widget = session
            .interface()
            .widgets
            .iter()
            .find(|w| w.id == id)
            .ok_or_else(|| format!("widget_states reported unknown widget {id}"))?;
        match (&widget.kind, &state) {
            (_, WidgetState::Unknown) => {
                return Err(format!("widget {id} ({}) is Unknown", widget.kind.kind_name()))
            }
            (
                WidgetKind::Radio { options }
                | WidgetKind::ButtonGroup { options }
                | WidgetKind::Dropdown { options }
                | WidgetKind::Tabs { options },
                WidgetState::Picked(i),
            ) if *i >= options.len() => {
                return Err(format!("widget {id}: pick {i} out of {} options", options.len()))
            }
            (WidgetKind::MultiSelect { options }, WidgetState::Flags(flags))
                if flags.len() != options.len() =>
            {
                return Err(format!(
                    "widget {id}: {} flags for {} options",
                    flags.len(),
                    options.len()
                ))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Differential oracle: the engine's columnar fast path must be
/// indistinguishable from the row-at-a-time reference interpreter — same
/// schema, same rows in the same order, or the same error. Comparisons
/// where either side hits a [`ResourceExhausted`](pi2_engine::EngineError)
/// limit are skipped: wall-clock timeouts are nondeterministic across
/// executors.
fn columnar_parity(catalog: &Catalog, q: &Query) -> Result<(), String> {
    let fast = catalog.execute_uncached(q);
    let reference = catalog.execute_reference(q);
    compare_against_reference(q, "columnar", fast, reference)
}

/// Differential oracle for the incremental (delta) path: whenever
/// [`Catalog::execute_delta`] applies, its result must be byte-identical
/// to the reference interpreter. The mask cache persists across the whole
/// event walk — exactly how a live session holds it — so later gestures
/// exercise the incremental (dirty-block) path, not just seeding.
fn delta_parity(catalog: &Catalog, q: &Query, cache: &mut DeltaCache) -> Result<(), String> {
    let Some((delta, _outcome)) = catalog.execute_delta(q, cache) else {
        return Ok(()); // outside the delta fragment; full execution covers it
    };
    let reference = catalog.execute_reference(q);
    compare_against_reference(q, "delta", delta, reference)
}

/// Byte-identical comparison of an optimized executor's outcome against the
/// reference interpreter's, skipping nondeterministic resource-limit trips.
fn compare_against_reference(
    q: &Query,
    what: &str,
    fast: Result<pi2_engine::ResultSet, pi2_engine::EngineError>,
    reference: Result<pi2_engine::ResultSet, pi2_engine::EngineError>,
) -> Result<(), String> {
    use pi2_engine::EngineError;
    let exhausted = |e: &EngineError| matches!(e, EngineError::ResourceExhausted(_));
    if fast.as_ref().err().is_some_and(exhausted) || reference.as_ref().err().is_some_and(exhausted)
    {
        return Ok(());
    }
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            if f.schema != r.schema {
                return Err(format!(
                    "`{q}`: {what} schema {:?} != reference schema {:?}",
                    f.schema, r.schema
                ));
            }
            if f.rows != r.rows {
                return Err(format!(
                    "`{q}`: {what} rows differ from reference ({} vs {} rows)",
                    f.rows.len(),
                    r.rows.len()
                ));
            }
            Ok(())
        }
        (Err(f), Err(r)) => {
            if f.to_string() != r.to_string() {
                return Err(format!("`{q}`: {what} error `{f}` != reference error `{r}`"));
            }
            Ok(())
        }
        (f, r) => Err(format!(
            "`{q}`: {what} {} but reference {}",
            if f.is_ok() { "succeeds" } else { "fails" },
            if r.is_ok() { "succeeds" } else { "fails" },
        )),
    }
}

/// The real expressiveness oracle, or its planted mutation.
fn expresses_all(
    g: &GeneratedInterface,
    log: &[Query],
    mutation: Option<Mutation>,
) -> Result<(), String> {
    match mutation {
        None => {
            if g.forest.expresses_all(log) {
                Ok(())
            } else {
                let missing: Vec<String> = log
                    .iter()
                    .filter(|q| !g.forest.trees.iter().any(|t| expresses(t, q).is_some()))
                    .map(|q| q.to_string())
                    .collect();
                Err(format!("forest cannot express: {}", missing.join(" | ")))
            }
        }
        Some(Mutation::BreakExpressiveness) => {
            // Planted bug: only default instantiations count as expressed.
            let defaults: Vec<Query> = g
                .forest
                .trees
                .iter()
                .filter_map(|t| lower_query(t, &Bindings::new()).ok())
                .map(|q| normalize::normalized(&q))
                .collect();
            for q in log {
                if !defaults.contains(&normalize::normalized(q)) {
                    return Err(format!("(planted bug) not a default instantiation: {q}"));
                }
            }
            Ok(())
        }
    }
}

/// Run the full oracle battery over one query log.
///
/// When `recorded` is `Some`, those events are replayed (skipping any that
/// no longer apply to the regenerated interface — the shrinker relies on
/// this); otherwise `cfg.walk_len` random events are drawn from
/// `cfg.walk_seed`.
pub fn check(
    catalog: &Catalog,
    log: &[Query],
    recorded: Option<&[Event]>,
    cfg: &CheckConfig,
) -> Result<(), Failure> {
    let pi2 = Pi2::builder(catalog.clone()).strategy(cfg.strategy.to_strategy()).build();
    let g =
        pi2.generate(log).map_err(|e| Failure::new("generate", format!("pipeline error: {e}")))?;

    // 1. Expressiveness.
    expresses_all(&g, log, cfg.mutation).map_err(|m| Failure::new("expressiveness", m))?;

    // 2. Initial view: each tree's default instantiation is a real query
    // from the log (the default_bindings contract).
    for (t, tree) in g.forest.trees.iter().enumerate() {
        let Some(&qi) = tree
            .source_queries
            .iter()
            .find(|&&qi| log.get(qi).is_some_and(|q| expresses(tree, q).is_some()))
        else {
            return Err(Failure::new(
                "initial-view",
                format!("tree {t} expresses none of its own source queries"),
            ));
        };
        let b = default_bindings(tree, log);
        let lowered = lower_query(tree, &b)
            .map_err(|e| Failure::new("initial-view", format!("tree {t}: {e}")))?;
        if normalize::normalized(&lowered) != normalize::normalized(&log[qi]) {
            return Err(Failure::new(
                "initial-view",
                format!(
                    "tree {t}: default instantiation `{lowered}` is not source query `{}`",
                    log[qi]
                ),
            ));
        }
    }

    // 3. Chart queries parse/print round-trip and execute. The delta-mask
    // cache persists from here through the event walk, session-style.
    let mut delta_cache = DeltaCache::new();
    let session = g.session(catalog);
    for c in &g.interface.charts {
        let q = session
            .query_for_chart(c.id)
            .map_err(|e| Failure::new("chart-query", format!("chart {}: {e}", c.id)))?;
        roundtrips(&q).map_err(|m| Failure::new("chart-query", m))?;
        catalog
            .execute(&q)
            .map_err(|e| Failure::new("chart-query", format!("`{q}` fails to execute: {e}")))?;
        columnar_parity(catalog, &q).map_err(|m| Failure::new("columnar-parity", m))?;
        delta_parity(catalog, &q, &mut delta_cache)
            .map_err(|m| Failure::new("columnar-parity", m))?;
    }

    // 4. Widget states are consistent out of the box.
    check_widget_states(&session).map_err(|m| Failure::new("widget-state", m))?;

    // 5. Event walk. A client-side scene replica rides along: every
    // damage delta is round-tripped through the wire codec and applied,
    // and must reconstruct the full-render scene bit-for-bit.
    let mut session = g.session(catalog);
    let (mut scene_client, _) = session
        .scene_snapshot()
        .map_err(|e| Failure::new("scene-parity", format!("initial snapshot: {e}")))?;
    let mut dispatched: Vec<Event> = Vec::new();
    let mut walk_rng = SmallRng::seed_from_u64(cfg.walk_seed);
    let planned: Vec<Event> = match recorded {
        Some(events) => events.to_vec(),
        None => {
            let mut out = Vec::new();
            for _ in 0..cfg.walk_len {
                // Each event drawn against the *initial* interface: ids and
                // domains are stable across dispatches.
                if let Some(e) = random_event(&g, &mut walk_rng) {
                    out.push(e);
                }
            }
            out
        }
    };
    for event in planned {
        if !event_applies(&g.interface, &event) {
            // Replay against a shrunken log: the control no longer exists.
            continue;
        }
        dispatched.push(event.clone());
        let fail = |oracle, message| Failure { oracle, message, events: dispatched.clone() };
        let (updates, delta) = session
            .dispatch_with_delta(event.clone())
            .map_err(|e| fail("dispatch", format!("{event:?} failed: {e}")))?;
        if let Some(delta) = delta {
            let rt = pi2_core::scene::delta_from_json(&pi2_core::scene::delta_to_json(&delta))
                .map_err(|e| fail("scene-parity", format!("delta codec round-trip: {e}")))?;
            scene_client
                .apply(&rt)
                .map_err(|e| fail("scene-parity", format!("delta rejected by client: {e}")))?;
        }
        let full = pi2_core::scene::SceneGraph::build_from(&session)
            .map_err(|e| fail("scene-parity", format!("full render: {e}")))?;
        if scene_client != full {
            return Err(fail(
                "scene-parity",
                format!(
                    "replayed deltas diverge from the full render at scene version {}",
                    session.scene_version()
                ),
            ));
        }
        for u in &updates {
            roundtrips(&u.query).map_err(|m| fail("event-query", m))?;
            catalog
                .execute(&u.query)
                .map_err(|e| fail("event-query", format!("`{}` fails to execute: {e}", u.query)))?;
            columnar_parity(catalog, &u.query).map_err(|m| fail("columnar-parity", m))?;
            delta_parity(catalog, &u.query, &mut delta_cache)
                .map_err(|m| fail("columnar-parity", m))?;
        }
        check_widget_states(&session).map_err(|m| fail("widget-state", m))?;
    }

    // 6. Pan round-trip on a fresh session (integer/date axes only, where
    // the inverse pan is exact).
    pan_roundtrip(catalog, &g)?;

    // 7. Memo/workers determinism.
    if cfg.workers_oracle {
        memo_workers_oracle(catalog, log)?;
    }

    Ok(())
}

/// For every pan-zoomable chart: pan there and back by a slack-bounded
/// integral delta and require the exact original query.
fn pan_roundtrip(catalog: &Catalog, g: &GeneratedInterface) -> Result<(), Failure> {
    for c in &g.interface.charts {
        for i in &c.interactions {
            let VizInteraction::PanZoom { x, y, .. } = i else { continue };
            let mut session = g.session(catalog);
            let axis_delta = |session: &InterfaceSession, pair: &Option<(Target, Target)>| -> f64 {
                let Some((lo_t, hi_t)) = pair else { return 0.0 };
                // Per-endpoint up-slack: a forward pan by +dx must clamp
                // at NEITHER endpoint's own domain, or the back-pan will
                // not restore the query.
                let mut slack = f64::INFINITY;
                for t in [lo_t, hi_t] {
                    let Some(node) =
                        g.forest.trees.get(t.tree).and_then(|tree| tree.root.find(t.node))
                    else {
                        return 0.0;
                    };
                    let NodeKind::Hole { domain, .. } = &node.kind else { return 0.0 };
                    // Floats round-trip inexactly; restrict to integral axes.
                    if matches!(domain, Domain::FloatRange { .. } | Domain::Discrete(_)) {
                        return 0.0;
                    }
                    let Some((_, dmax)) = domain_bounds(domain) else { return 0.0 };
                    let Some(v) = current_hole_value(&g.forest, session, *t) else {
                        return 0.0;
                    };
                    slack = slack.min(dmax - v);
                }
                let (Some(lo), Some(hi)) = (
                    current_hole_value(&g.forest, session, *lo_t),
                    current_hole_value(&g.forest, session, *hi_t),
                ) else {
                    return 0.0;
                };
                // An inverted window (a contradictory source query) has no
                // meaningful pan semantics; skip it.
                if lo > hi {
                    return 0.0;
                }
                (slack / 2.0).floor().max(0.0)
            };
            let dx = axis_delta(&session, x);
            let dy = axis_delta(&session, y);
            if dx == 0.0 && dy == 0.0 {
                continue;
            }
            let before = session
                .query_for_chart(c.id)
                .map_err(|e| Failure::new("pan-roundtrip", format!("chart {}: {e}", c.id)))?;
            let there = Event::Pan { chart: c.id, dx, dy };
            let back = Event::Pan { chart: c.id, dx: -dx, dy: -dy };
            for e in [&there, &back] {
                session
                    .dispatch(e.clone())
                    .map_err(|err| Failure::new("pan-roundtrip", format!("{e:?} failed: {err}")))?;
            }
            let after = session
                .query_for_chart(c.id)
                .map_err(|e| Failure::new("pan-roundtrip", format!("chart {}: {e}", c.id)))?;
            if before != after {
                return Err(Failure::new(
                    "pan-roundtrip",
                    format!(
                        "chart {}: pan ({dx}, {dy}) there-and-back changed `{before}` to `{after}`",
                        c.id
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// A literal-variant of `log`: every literal nudged to a different value
/// of the same type (ints +1, floats +1.0, strings suffixed, dates +1
/// day, booleans flipped). Shares the original's literal-free fleet
/// fingerprint by construction.
fn literal_variant(log: &[Query]) -> Vec<Query> {
    use pi2_sql::{Expr, Literal};
    log.iter()
        .map(|q| {
            let mut q = q.clone();
            pi2_sql::visit::rewrite_query_exprs(&mut q, &mut |e| match e {
                Expr::Literal(l) => Expr::Literal(match l {
                    Literal::Null => Literal::Null,
                    Literal::Bool(b) => Literal::Bool(!b),
                    Literal::Int(n) => Literal::Int(n.wrapping_add(1)),
                    Literal::Float(f) => Literal::Float(pi2_sql::F64(f.0 + 1.0)),
                    Literal::Str(s) => Literal::Str(format!("{s}~")),
                    Literal::Date(d) => Literal::Date(pi2_sql::Date(d.0.wrapping_add(1))),
                }),
                other => other,
            });
            q
        })
        .collect()
}

/// Fleet-cache oracle: a shared [`FleetHandle`] must be *transparent*.
///
/// Three generations of the same log — the leader's cold search, a second
/// builder's cache hit, and a fleet-less private run — must agree:
///
/// * the hit is **bit-identical** to the cold generation (interface,
///   forest, canonical query snapshot, and cost bits) and reports
///   `degradation: Full`;
/// * the fleet counters record exactly one miss and one hit (the hit ran
///   no search);
/// * the private run produces the same interface, so caching can never
///   change what the deterministic pipeline would have generated.
///
/// A fourth phase serves a **literal-variant** of the log through the
/// warm cache: same fingerprint, different literal values. The serve must
/// be respecialized onto the variant's own queries (`Rebind`) — never the
/// leader's literal-bearing snapshot — must express the variant's own
/// queries, must be deterministic, and (under the deterministic
/// `FullMerge` strategy, or whenever the fleet legitimately fell through
/// to a cold `Miss`) must be bit-identical to a fleet-less run of the
/// variant. It must also leave the cache untouched: no new entry, and the
/// original log still served verbatim afterwards.
pub fn check_fleet(
    catalog: &Catalog,
    log: &[Query],
    strategy: StrategyChoice,
) -> Result<(), Failure> {
    let fail = |m: String| Failure::new("fleet-cache", m);
    let fleet = FleetHandle::new(FleetConfig::new());
    let leader =
        Pi2::builder(catalog.clone()).strategy(strategy.to_strategy()).fleet(&fleet).build();
    let cold = leader.generate(log).map_err(|e| fail(format!("cold generation: {e}")))?;
    if cold.stats.fleet != Some(FleetOutcome::Miss) {
        return Err(fail(format!("cold outcome {:?}, expected Miss", cold.stats.fleet)));
    }

    let follower =
        Pi2::builder(catalog.clone()).strategy(strategy.to_strategy()).fleet(&fleet).build();
    let warm = follower.generate(log).map_err(|e| fail(format!("warm generation: {e}")))?;
    if warm.stats.fleet != Some(FleetOutcome::Hit) {
        return Err(fail(format!("warm outcome {:?}, expected Hit", warm.stats.fleet)));
    }
    if warm.interface != cold.interface {
        return Err(fail("cache hit changed the interface".to_string()));
    }
    if warm.forest != cold.forest {
        return Err(fail("cache hit changed the DiffTree forest".to_string()));
    }
    if warm.queries != cold.queries {
        return Err(fail("cache hit changed the canonical query snapshot".to_string()));
    }
    if warm.cost.total.to_bits() != cold.cost.total.to_bits() {
        return Err(fail(format!(
            "cache hit changed the cost: {} != {}",
            warm.cost.total, cold.cost.total
        )));
    }
    let counters = fleet.counters();
    if counters.misses != 1 || counters.hits != 1 {
        return Err(fail(format!("expected exactly one miss and one hit, got {counters:?}")));
    }

    let private = Pi2::builder(catalog.clone()).strategy(strategy.to_strategy()).build();
    let alone = private.generate(log).map_err(|e| fail(format!("private generation: {e}")))?;
    if alone.interface != cold.interface {
        return Err(fail("fleet-attached generation diverged from a private run".to_string()));
    }

    // Literal-variant phase: the cache entry is shared across literal
    // spellings, but the served artifacts must never be.
    let variant = literal_variant(log);
    if variant.as_slice() != log {
        let entries_before = fleet.counters().entries;
        let warm_v =
            follower.generate(&variant).map_err(|e| fail(format!("variant generation: {e}")))?;
        if warm_v.queries != variant {
            return Err(fail(
                "variant serve leaked the leader's query snapshot instead of the caller's"
                    .to_string(),
            ));
        }
        if !warm_v.forest.expresses_all(&variant) {
            return Err(fail("variant serve cannot express the caller's own queries".to_string()));
        }
        match warm_v.stats.fleet {
            Some(FleetOutcome::Rebind) => {
                // Serving the same variant again must be deterministic.
                let again = follower
                    .generate(&variant)
                    .map_err(|e| fail(format!("variant re-serve: {e}")))?;
                if again.interface != warm_v.interface || again.forest != warm_v.forest {
                    return Err(fail("re-serving the variant changed the interface".to_string()));
                }
                // FullMerge replays the exact fold a cold run performs, so
                // the rebound serve must be bit-identical to a fleet-less
                // generation of the variant. (A searched strategy may
                // legitimately pick a different partition for different
                // literals, so exact equality is only provable here.)
                if strategy == StrategyChoice::FullMerge {
                    let alone_v = private
                        .generate(&variant)
                        .map_err(|e| fail(format!("private variant generation: {e}")))?;
                    if warm_v.interface != alone_v.interface
                        || warm_v.forest != alone_v.forest
                        || warm_v.queries != alone_v.queries
                        || warm_v.cost.total.to_bits() != alone_v.cost.total.to_bits()
                    {
                        return Err(fail(
                            "rebound variant serve diverged from a fleet-less run of the variant"
                                .to_string(),
                        ));
                    }
                }
            }
            // The fleet may legitimately fall through to a private cold
            // generation (respecialization could not express the log) —
            // then it must match a fleet-less run exactly.
            Some(FleetOutcome::Miss) => {
                let alone_v = private
                    .generate(&variant)
                    .map_err(|e| fail(format!("private variant generation: {e}")))?;
                if warm_v.interface != alone_v.interface {
                    return Err(fail(
                        "fall-through variant generation diverged from a fleet-less run"
                            .to_string(),
                    ));
                }
            }
            other => {
                return Err(fail(format!("variant outcome {other:?}, expected Rebind or Miss")));
            }
        }
        if fleet.counters().entries != entries_before {
            return Err(fail("variant serve repinned or grew the cache".to_string()));
        }
        // The original log is still served verbatim from the untouched
        // entry.
        let warm_again =
            follower.generate(log).map_err(|e| fail(format!("post-variant warm: {e}")))?;
        if warm_again.stats.fleet != Some(FleetOutcome::Hit)
            || warm_again.interface != cold.interface
        {
            return Err(fail("variant serve disturbed the original cache entry".to_string()));
        }
    }
    Ok(())
}

/// For `workers ∈ {1, 4}`: generating twice from the same [`Pi2`] (cold
/// memo, then warm) must produce the identical interface and bit-identical
/// cost, and the warm run must actually hit the memo.
fn memo_workers_oracle(catalog: &Catalog, log: &[Query]) -> Result<(), Failure> {
    for workers in [1usize, 4] {
        let pi2 = Pi2::builder(catalog.clone())
            .strategy(SearchStrategy::Mcts(MctsConfig {
                iterations: 12,
                rollout_depth: 2,
                seed: 17,
                workers,
                ..Default::default()
            }))
            .build();
        let fresh = pi2.generate(log).map_err(|e| {
            Failure::new("memo-workers", format!("workers={workers} fresh run: {e}"))
        })?;
        let warm = pi2.generate(log).map_err(|e| {
            Failure::new("memo-workers", format!("workers={workers} warm run: {e}"))
        })?;
        if fresh.interface != warm.interface {
            return Err(Failure::new(
                "memo-workers",
                format!("workers={workers}: warm memo changed the chosen interface"),
            ));
        }
        if fresh.cost.total.to_bits() != warm.cost.total.to_bits() {
            return Err(Failure::new(
                "memo-workers",
                format!(
                    "workers={workers}: memoized cost {} != fresh cost {}",
                    warm.cost.total, fresh.cost.total
                ),
            ));
        }
        if warm.stats.memo_hits == 0 {
            return Err(Failure::new(
                "memo-workers",
                format!("workers={workers}: warm run never hit the cost memo"),
            ));
        }
    }
    Ok(())
}
