#![warn(missing_docs)]

//! # pi2-conformance
//!
//! A seeded, deterministic fuzz-and-oracle harness for the whole PI2
//! pipeline. PI2's hard guarantee is that the returned interface *"can
//! express all queries in Q"* (paper §2); the hand-written demo scenarios
//! exercise a handful of logs, while this crate generates thousands of
//! random-but-valid ones and checks a battery of invariants on each:
//!
//! 1. **Expressiveness** — `forest.expresses_all(log)` after generation.
//! 2. **Chart queries** — every chart's current SQL parses/prints
//!    round-trip and executes on the engine.
//! 3. **Initial view** — each tree's default instantiation is a real
//!    query from the log (the `default_bindings` contract).
//! 4. **Widget states** — `widget_states` never reports `Unknown`, and
//!    every reported state is within the widget's option/domain bounds.
//! 5. **Event walk** — a random sequence of valid widget/chart events
//!    dispatches cleanly, and every resulting query still parses,
//!    prints round-trip, and executes.
//! 6. **Pan round-trip** — panning a chart there and back (when no domain
//!    clamping applies) restores the exact query.
//! 7. **Memo/workers determinism** — regenerating with a warm cost memo,
//!    at `workers ∈ {1, 4}`, yields the identical interface and cost.
//!
//! On failure the harness delta-debugs the query log and event sequence
//! down to a minimal reproducer ([`shrink`]) and writes it to the
//! committed `corpus/` directory ([`corpus`]), where `cargo test` replays
//! every entry as an ordinary regression test.
//!
//! The `pi2-conformance` binary is the shared entry point for CI and
//! local runs:
//!
//! ```text
//! cargo run -p pi2-conformance -- --seed 7 --runs 50 --budget-secs 60
//! ```

pub mod corpus;
pub mod events;
pub mod faults;
pub mod oracles;
pub mod recovery;
pub mod runner;
pub mod scenarios;
pub mod shrink;

pub use corpus::Reproducer;
pub use faults::{check_fault, FAULT_CLASSES};
pub use oracles::{check, check_fleet, CheckConfig, Failure, Mutation, StrategyChoice};
pub use runner::{fuzz, RunReport, RunnerConfig};
pub use scenarios::{scenarios, Scenario};
pub use shrink::shrink;
