//! Named fuzzing scenarios: a catalog plus the [`SchemaSpec`] the query
//! generator draws from.
//!
//! Specs are derived from the catalog's own [`ColumnStats`], so every
//! generated predicate literal is a value that actually occurs in the
//! data — generated logs are valid *and* selective by construction.

use pi2_engine::{Catalog, ColumnStats, DataType};
use pi2_sql::arbitrary::{ColumnSpec, JoinSpec, ScalarKind, SchemaSpec, TableSpec};
use pi2_sql::Literal;

/// A named fuzzing scenario.
pub struct Scenario {
    /// Stable name (used in corpus files).
    pub name: &'static str,
    /// The catalog queries execute against.
    pub catalog: Catalog,
    /// The generator's view of the schema.
    pub spec: SchemaSpec,
}

/// Columns with at most this many distinct values are marked groupable.
const GROUPABLE_CARDINALITY: usize = 16;

/// Cap on the literal pool per column.
const POOL_CAP: usize = 8;

fn scalar_kind(dt: DataType) -> Option<ScalarKind> {
    match dt {
        DataType::Bool => Some(ScalarKind::Bool),
        DataType::Int => Some(ScalarKind::Int),
        DataType::Float => Some(ScalarKind::Float),
        DataType::Str => Some(ScalarKind::Str),
        DataType::Date => Some(ScalarKind::Date),
        DataType::Null => None,
    }
}

/// An evenly spread sample of up to [`POOL_CAP`] literals from the
/// column's observed values (all distinct values when few, else min, max
/// and interior picks).
fn literal_pool(stats: &ColumnStats) -> Vec<Literal> {
    if let Some(values) = &stats.distinct_values {
        if values.len() <= POOL_CAP {
            return values.iter().map(|v| v.to_literal()).collect();
        }
        let step = values.len() / POOL_CAP;
        return values.iter().step_by(step.max(1)).take(POOL_CAP).map(|v| v.to_literal()).collect();
    }
    // High-cardinality column: fall back to the endpoints.
    [&stats.min, &stats.max].iter().filter_map(|v| v.as_ref().map(|v| v.to_literal())).collect()
}

/// Derive a [`SchemaSpec`] from a catalog, with the given permitted joins.
pub fn spec_for(catalog: &Catalog, joins: Vec<JoinSpec>) -> SchemaSpec {
    let tables = catalog
        .table_names()
        .iter()
        .filter_map(|name| {
            let table = catalog.get(name)?;
            let columns = table
                .schema
                .fields
                .iter()
                .filter_map(|f| {
                    let kind = scalar_kind(f.data_type)?;
                    let stats = table.column_stats(&f.name)?;
                    let mut spec = ColumnSpec::new(&f.name, kind, literal_pool(&stats));
                    if stats.distinct_count <= GROUPABLE_CARDINALITY
                        && stats.distinct_count >= 2
                        && kind != ScalarKind::Float
                    {
                        spec = spec.groupable();
                    }
                    Some(spec)
                })
                .collect();
            Some(TableSpec::new(name.clone(), columns))
        })
        .collect();
    SchemaSpec { tables, joins }
}

/// The fuzzing scenarios, smallest first: the §2 toy table, its two-table
/// join variant, and shrunken versions of the three demonstration
/// datasets (COVID-19, SDSS, S&P 500).
pub fn scenarios() -> Vec<Scenario> {
    let toy = pi2_datasets::toy::default_catalog();
    let toy_join = pi2_datasets::toy::join_catalog(200, 0x70E);
    let covid = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
        state_limit: Some(6),
        days: 60,
        ..Default::default()
    });
    let sdss = pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 3 });
    let sp500 = pi2_datasets::sp500::catalog(&pi2_datasets::sp500::Config {
        days: 90,
        ..Default::default()
    });
    vec![
        Scenario { name: "toy", spec: spec_for(&toy, Vec::new()), catalog: toy },
        Scenario {
            name: "toy-join",
            spec: spec_for(
                &toy_join,
                vec![JoinSpec {
                    left: "t".into(),
                    left_column: "a".into(),
                    right: "u".into(),
                    right_column: "a".into(),
                }],
            ),
            catalog: toy_join,
        },
        Scenario { name: "covid-small", spec: spec_for(&covid, Vec::new()), catalog: covid },
        Scenario { name: "sdss-small", spec: spec_for(&sdss, Vec::new()), catalog: sdss },
        Scenario { name: "sp500-small", spec: spec_for(&sp500, Vec::new()), catalog: sp500 },
    ]
}

/// Look up a scenario by name (for corpus replay).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_scenario_has_generatable_tables() {
        for s in scenarios() {
            assert!(!s.spec.tables.is_empty(), "{}: no tables", s.name);
            let has_pool =
                s.spec.tables.iter().any(|t| t.columns.iter().any(|c| !c.pool.is_empty()));
            assert!(has_pool, "{}: no literal pools at all", s.name);
        }
    }

    #[test]
    fn generated_queries_execute_on_their_catalog() {
        for s in scenarios() {
            let mut rng = SmallRng::seed_from_u64(11);
            for i in 0..25 {
                let q = s.spec.random_query(&mut rng);
                s.catalog
                    .execute(&q)
                    .unwrap_or_else(|e| panic!("{} query {i} `{q}` failed: {e}", s.name));
            }
        }
    }
}
