//! Recovery conformance: arm one journal fault class and check that a
//! crash + restart of a journaled [`pi2_server::ServerState`] resumes
//! the session to exactly the interface the durability contract
//! promises — the pre-fault state for a torn append, the post-fault
//! state when only a checkpoint died, and warnings (never an abort)
//! when recovery itself cannot fsync.
//!
//! These oracles run against the server's `toy` scenario (the seed
//! varies the cell log and the gesture); the fuzz catalog/log that
//! drive the generation oracles don't apply here because the protocol
//! opens sessions by scenario name.

use crate::oracles::Failure;
use pi2_core::prelude::FleetConfig;
use pi2_faults::{inject, Fault};
use pi2_server::{JournalConfig, LocalClient, RecoveryReport, ServerState};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(class: &str, seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pi2-conformance-{class}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled(
    dir: &PathBuf,
    checkpoint_every: u64,
    oracle: &'static str,
) -> Result<(LocalClient, RecoveryReport), Failure> {
    let config = JournalConfig::new(dir).checkpoint_every(checkpoint_every);
    let (state, report) = ServerState::with_journal(FleetConfig::default(), config)
        .map_err(|e| Failure::new(oracle, format!("recovery errored: {e}")))?;
    Ok((LocalClient::new(Arc::new(state)), report))
}

fn ok(client: &LocalClient, request: Value, oracle: &'static str) -> Result<Value, Failure> {
    let what = request["cmd"].as_str().unwrap_or("?").to_string();
    let response = client.request(request);
    if response["ok"].as_bool() != Some(true) {
        return Err(Failure::new(oracle, format!("{what} failed: {response}")));
    }
    Ok(response)
}

struct Driven {
    session: u64,
    token: String,
}

/// Open a toy session and run a seed-varied cell log + generation. The
/// seed picks how many cells run and which literal the slider starts on.
fn drive(client: &LocalClient, seed: u64, oracle: &'static str) -> Result<Driven, Failure> {
    let opened = ok(client, json!({"cmd": "open", "scenario": "toy"}), oracle)?;
    let session = opened["session"]
        .as_u64()
        .ok_or_else(|| Failure::new(oracle, "open returned no session id"))?;
    let token = opened["session_token"]
        .as_str()
        .ok_or_else(|| Failure::new(oracle, "open returned no session_token"))?
        .to_string();
    let cells = 2 + (seed % 2) as usize; // 2 or 3 cells
    for i in 0..cells {
        let literal = 1 + (i + seed as usize) % 2;
        ok(
            client,
            json!({
                "cmd": "run_cell", "session": session,
                "sql": format!("SELECT p, count(*) FROM t WHERE a = {literal} GROUP BY p"),
            }),
            oracle,
        )?;
    }
    ok(client, json!({"cmd": "generate", "session": session}), oracle)?;
    gesture(client, session, slider_value(seed), oracle)?;
    Ok(Driven { session, token })
}

fn slider_value(seed: u64) -> f64 {
    if seed.is_multiple_of(2) {
        1.0
    } else {
        2.0
    }
}

fn gesture(
    client: &LocalClient,
    session: u64,
    value: f64,
    oracle: &'static str,
) -> Result<Value, Failure> {
    ok(
        client,
        json!({
            "cmd": "gesture", "session": session,
            "events": [{"type": "set_widget", "widget": 0, "value": {"scalar": value}}],
        }),
        oracle,
    )
}

fn render(client: &LocalClient, session: u64, oracle: &'static str) -> Result<String, Failure> {
    let rendered = ok(client, json!({"cmd": "render", "session": session}), oracle)?;
    rendered["text"]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| Failure::new(oracle, "render returned no text"))
}

fn resume(client: &LocalClient, driven: &Driven, oracle: &'static str) -> Result<(), Failure> {
    let resumed = ok(client, json!({"cmd": "resume", "token": driven.token.clone()}), oracle)?;
    if resumed["session"].as_u64() != Some(driven.session) {
        return Err(Failure::new(oracle, format!("resume found the wrong session: {resumed}")));
    }
    if resumed["recovered"].as_bool() != Some(true) {
        return Err(Failure::new(oracle, format!("session was not marked recovered: {resumed}")));
    }
    Ok(())
}

/// `journal-torn-write`: an append torn mid-frame (crash between `write`
/// and the bytes reaching disk) loses exactly that request — recovery
/// must resume to the last intact state, warn about the torn tail, and
/// never double-apply or panic.
pub fn torn_write(seed: u64) -> Result<(), Failure> {
    const ORACLE: &str = "fault-journal-torn-write";
    let dir = temp_dir("torn", seed);
    // No cadence checkpoints: recovery leans fully on the frame tail.
    let (client, _) = journaled(&dir, 1000, ORACLE)?;
    let driven = drive(&client, seed, ORACLE)?;
    let mid = render(&client, driven.session, ORACLE)?;
    {
        // The *next* gesture's frame is torn; the in-memory effect still
        // happens (availability over durability), then the crash eats it.
        let _fault = inject(Fault::JournalTornWrite);
        gesture(&client, driven.session, 3.0 - slider_value(seed), ORACLE)?;
    }
    drop(client);

    let (client, report) = journaled(&dir, 1000, ORACLE)?;
    if report.sessions_recovered != 1 {
        return Err(Failure::new(ORACLE, format!("session did not recover: {report:?}")));
    }
    if report.warnings.is_empty() {
        return Err(Failure::new(ORACLE, "torn tail produced no warning"));
    }
    resume(&client, &driven, ORACLE)?;
    let recovered = render(&client, driven.session, ORACLE)?;
    if recovered != mid {
        return Err(Failure::new(
            ORACLE,
            "recovered render diverged from the last durably-journaled state",
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// `checkpoint-crash`: a checkpoint that dies after partially writing
/// its tmp file publishes nothing — recovery must ignore the leftover,
/// fall back to the previous checkpoint plus the (intact) journal tail,
/// and land on the *post*-mutation state.
pub fn checkpoint_crash(seed: u64) -> Result<(), Failure> {
    const ORACLE: &str = "fault-checkpoint-crash";
    let dir = temp_dir("ckptcrash", seed);
    // Checkpoint after every mutation so the faulted op is precisely
    // "frame durable, checkpoint dead".
    let (client, _) = journaled(&dir, 1, ORACLE)?;
    let driven = drive(&client, seed, ORACLE)?;
    let pre = render(&client, driven.session, ORACLE)?;
    let post = {
        let _fault = inject(Fault::CheckpointCrash);
        gesture(&client, driven.session, 3.0 - slider_value(seed), ORACLE)?;
        render(&client, driven.session, ORACLE)?
    };
    if post == pre {
        return Err(Failure::new(ORACLE, "faulted gesture had no visible effect to verify"));
    }
    drop(client);

    let (client, report) = journaled(&dir, 1, ORACLE)?;
    if report.sessions_recovered != 1 {
        return Err(Failure::new(ORACLE, format!("session did not recover: {report:?}")));
    }
    if report.frames_replayed < 1 {
        return Err(Failure::new(
            ORACLE,
            format!("the uncheckpointed frame was not replayed: {report:?}"),
        ));
    }
    resume(&client, &driven, ORACLE)?;
    let recovered = render(&client, driven.session, ORACLE)?;
    if recovered != post {
        return Err(Failure::new(
            ORACLE,
            "recovered render lost the journaled-but-not-checkpointed mutation",
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// `recovery-fsync`: every fsync during recovery errors. Recovery must
/// finish anyway (correct renders, warnings counted) and must leave the
/// journal un-truncated so a further crash still has the frames — which
/// a second, healthy recovery then proves.
pub fn recovery_fsync(seed: u64) -> Result<(), Failure> {
    const ORACLE: &str = "fault-recovery-fsync";
    let dir = temp_dir("fsync", seed);
    let (client, _) = journaled(&dir, 1000, ORACLE)?;
    let driven = drive(&client, seed, ORACLE)?;
    let post = render(&client, driven.session, ORACLE)?;
    drop(client);

    let (client, report) = {
        let _fault = inject(Fault::RecoveryFsync);
        journaled(&dir, 1000, ORACLE)?
    };
    if report.sessions_recovered != 1 {
        return Err(Failure::new(ORACLE, format!("session did not recover: {report:?}")));
    }
    if report.warnings.is_empty() {
        return Err(Failure::new(ORACLE, "fsync failures during recovery went unreported"));
    }
    resume(&client, &driven, ORACLE)?;
    if render(&client, driven.session, ORACLE)? != post {
        return Err(Failure::new(ORACLE, "recovered render diverged under fsync errors"));
    }
    // The post-recovery truncate must have been withheld: the frames are
    // still on disk, so a crash right now recovers again, faultlessly.
    drop(client);
    let (client, report) = journaled(&dir, 1000, ORACLE)?;
    if report.sessions_recovered != 1 {
        return Err(Failure::new(
            ORACLE,
            format!("second recovery after failed fsyncs lost the session: {report:?}"),
        ));
    }
    if render(&client, driven.session, ORACLE)? != post {
        return Err(Failure::new(ORACLE, "second recovery diverged"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
