//! The committed reproducer corpus: minimal failing inputs serialized to a
//! line-oriented text format under `crates/conformance/corpus/`, replayed
//! by `cargo test` as ordinary regression tests.
//!
//! Replay semantics depend on whether the entry records a planted
//! [`Mutation`]:
//!
//! * no mutation — the entry is a **regression test**: the bug it once
//!   reproduced must stay fixed, so [`Reproducer::replay`] requires the
//!   oracle battery to pass;
//! * with a mutation — the entry is a **harness self-test**: the planted
//!   bug must still be caught, so replay requires the recorded oracle to
//!   fail again.

use crate::oracles::{check, CheckConfig, Mutation, StrategyChoice};
use crate::scenarios::scenario_by_name;
use pi2_core::{Event, WidgetValue};
use pi2_sql::{Expr, Literal, Query};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A minimal failing (or once-failing) input: scenario, oracle, strategy,
/// query log, and event sequence.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// Scenario name (see [`crate::scenarios::scenarios`]).
    pub scenario: String,
    /// The oracle that tripped.
    pub oracle: String,
    /// Human-readable failure message (informational only).
    pub message: String,
    /// Strategy the failure was observed under.
    pub strategy: StrategyChoice,
    /// Planted bug, if this is a harness self-test entry.
    pub mutation: Option<Mutation>,
    /// The (shrunken) query log.
    pub queries: Vec<Query>,
    /// The (shrunken) event sequence.
    pub events: Vec<Event>,
}

/// Parse a bare SQL literal by round-tripping it through the parser.
fn parse_literal(s: &str) -> Result<Literal, String> {
    let q = pi2_sql::parse_query(&format!("SELECT * FROM t WHERE x = {s}"))
        .map_err(|e| format!("bad literal `{s}`: {e}"))?;
    if let Some(Expr::Binary { right, .. }) = q.where_clause {
        if let Expr::Literal(l) = *right {
            return Ok(l);
        }
    }
    Err(format!("`{s}` is not a literal"))
}

fn event_to_line(e: &Event) -> String {
    match e {
        Event::SetWidget { widget, value } => match value {
            WidgetValue::Pick(i) => format!("set-widget {widget} pick {i}"),
            WidgetValue::Bool(b) => format!("set-widget {widget} bool {b}"),
            WidgetValue::Scalar(v) => format!("set-widget {widget} scalar {v:?}"),
            WidgetValue::Range(a, b) => format!("set-widget {widget} range {a:?} {b:?}"),
            WidgetValue::Multi(flags) => {
                let bits: String = flags.iter().map(|&f| if f { '1' } else { '0' }).collect();
                format!("set-widget {widget} multi {bits}")
            }
            WidgetValue::Literal(l) => format!("set-widget {widget} literal {l}"),
        },
        Event::Brush { chart, low, high } => format!("brush {chart} {low:?} {high:?}"),
        Event::Pan { chart, dx, dy } => format!("pan {chart} {dx:?} {dy:?}"),
        Event::Zoom { chart, factor } => format!("zoom {chart} {factor:?}"),
        Event::Click { chart, value } => format!("click {chart} {value}"),
    }
}

fn event_from_line(line: &str) -> Result<Event, String> {
    let err = || format!("bad event line `{line}`");
    let mut parts = line.splitn(2, ' ');
    let kind = parts.next().ok_or_else(err)?;
    let rest = parts.next().unwrap_or("");
    let words: Vec<&str> = rest.split_whitespace().collect();
    let num = |s: &str| -> Result<f64, String> { s.parse::<f64>().map_err(|_| err()) };
    let idx = |s: &str| -> Result<usize, String> { s.parse::<usize>().map_err(|_| err()) };
    match kind {
        "set-widget" => {
            let widget = idx(words.first().ok_or_else(err)?)?;
            let shape = *words.get(1).ok_or_else(err)?;
            let value = match shape {
                "pick" => WidgetValue::Pick(idx(words.get(2).ok_or_else(err)?)?),
                "bool" => {
                    WidgetValue::Bool(words.get(2).ok_or_else(err)?.parse().map_err(|_| err())?)
                }
                "scalar" => WidgetValue::Scalar(num(words.get(2).ok_or_else(err)?)?),
                "range" => WidgetValue::Range(
                    num(words.get(2).ok_or_else(err)?)?,
                    num(words.get(3).ok_or_else(err)?)?,
                ),
                "multi" => WidgetValue::Multi(
                    words.get(2).ok_or_else(err)?.chars().map(|c| c == '1').collect(),
                ),
                "literal" => {
                    // The literal is everything after the third token (it
                    // may contain spaces, e.g. `DATE '2020-01-01'`).
                    let prefix_len = rest.find(" literal ").ok_or_else(err)? + " literal ".len();
                    WidgetValue::Literal(parse_literal(rest[prefix_len..].trim())?)
                }
                _ => return Err(err()),
            };
            Ok(Event::SetWidget { widget, value })
        }
        "brush" => Ok(Event::Brush {
            chart: idx(words.first().ok_or_else(err)?)?,
            low: num(words.get(1).ok_or_else(err)?)?,
            high: num(words.get(2).ok_or_else(err)?)?,
        }),
        "pan" => Ok(Event::Pan {
            chart: idx(words.first().ok_or_else(err)?)?,
            dx: num(words.get(1).ok_or_else(err)?)?,
            dy: num(words.get(2).ok_or_else(err)?)?,
        }),
        "zoom" => Ok(Event::Zoom {
            chart: idx(words.first().ok_or_else(err)?)?,
            factor: num(words.get(1).ok_or_else(err)?)?,
        }),
        "click" => {
            let chart = idx(words.first().ok_or_else(err)?)?;
            let sep = rest.find(' ').ok_or_else(err)?;
            Ok(Event::Click { chart, value: parse_literal(rest[sep..].trim())? })
        }
        _ => Err(err()),
    }
}

fn strategy_to_line(s: StrategyChoice) -> String {
    match s {
        StrategyChoice::FullMerge => "full-merge".into(),
        StrategyChoice::Mcts { iterations, seed, workers } => {
            format!("mcts {iterations} {seed} {workers}")
        }
    }
}

fn strategy_from_line(line: &str) -> Result<StrategyChoice, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    match words.as_slice() {
        ["full-merge"] => Ok(StrategyChoice::FullMerge),
        ["mcts", i, s, w] => Ok(StrategyChoice::Mcts {
            iterations: i.parse().map_err(|_| format!("bad strategy `{line}`"))?,
            seed: s.parse().map_err(|_| format!("bad strategy `{line}`"))?,
            workers: w.parse().map_err(|_| format!("bad strategy `{line}`"))?,
        }),
        _ => Err(format!("bad strategy `{line}`")),
    }
}

impl Reproducer {
    /// Serialize to the corpus text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# pi2-conformance reproducer\n");
        let _ = writeln!(out, "scenario: {}", self.scenario);
        let _ = writeln!(out, "oracle: {}", self.oracle);
        let _ = writeln!(out, "strategy: {}", strategy_to_line(self.strategy));
        if self.mutation == Some(Mutation::BreakExpressiveness) {
            let _ = writeln!(out, "mutation: break-expressiveness");
        }
        if !self.message.is_empty() {
            let _ = writeln!(out, "message: {}", self.message.replace('\n', " "));
        }
        for q in &self.queries {
            let _ = writeln!(out, "query: {q}");
        }
        for e in &self.events {
            let _ = writeln!(out, "event: {}", event_to_line(e));
        }
        out
    }

    /// Parse the corpus text format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut r = Reproducer {
            scenario: String::new(),
            oracle: String::new(),
            message: String::new(),
            strategy: StrategyChoice::FullMerge,
            mutation: None,
            queries: Vec::new(),
            events: Vec::new(),
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) =
                line.split_once(':').ok_or_else(|| format!("bad corpus line `{line}`"))?;
            let value = value.trim();
            match key.trim() {
                "scenario" => r.scenario = value.into(),
                "oracle" => r.oracle = value.into(),
                "message" => r.message = value.into(),
                "strategy" => r.strategy = strategy_from_line(value)?,
                "mutation" => match value {
                    "break-expressiveness" => r.mutation = Some(Mutation::BreakExpressiveness),
                    other => return Err(format!("unknown mutation `{other}`")),
                },
                "query" => r.queries.push(pi2_sql::parse_query(value).map_err(|e| format!("{e}"))?),
                "event" => r.events.push(event_from_line(value)?),
                other => return Err(format!("unknown corpus key `{other}`")),
            }
        }
        if r.scenario.is_empty() || r.oracle.is_empty() || r.queries.is_empty() {
            return Err("corpus entry missing scenario/oracle/queries".into());
        }
        Ok(r)
    }

    /// Replay this entry against the current pipeline.
    ///
    /// Entries without a mutation must *pass* the oracle battery (they
    /// record fixed bugs); entries with a mutation must *fail* with the
    /// recorded oracle (they prove the harness still catches the planted
    /// bug).
    pub fn replay(&self) -> Result<(), String> {
        let scenario = scenario_by_name(&self.scenario)
            .ok_or_else(|| format!("unknown scenario `{}`", self.scenario))?;
        let cfg = CheckConfig {
            strategy: self.strategy,
            mutation: self.mutation,
            ..CheckConfig::default()
        };
        let outcome = check(&scenario.catalog, &self.queries, Some(&self.events), &cfg);
        match (self.mutation, outcome) {
            (None, Ok(())) => Ok(()),
            (None, Err(f)) => Err(format!(
                "regression resurfaced: oracle `{}` failed again: {}",
                f.oracle, f.message
            )),
            (Some(_), Err(f)) if f.oracle == self.oracle => Ok(()),
            (Some(_), Err(f)) => Err(format!(
                "planted bug tripped oracle `{}` instead of `{}`",
                f.oracle, self.oracle
            )),
            (Some(_), Ok(())) => {
                Err(format!("planted bug no longer caught by oracle `{}`", self.oracle))
            }
        }
    }

    /// Stable file name for this entry.
    pub fn file_name(&self) -> String {
        // FNV-1a over the serialized text keeps names stable and unique
        // enough for a small committed corpus.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.to_text().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{}-{}-{:08x}.repro", self.scenario, self.oracle, h as u32)
    }

    /// Write this entry into `dir`, returning the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_text())?;
        Ok(path)
    }
}

/// Load every `*.repro` entry under `dir`, sorted by file name.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "repro"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            let r = Reproducer::from_text(&text).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, r))
        })
        .collect()
}

/// The committed corpus directory of this crate.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let r = Reproducer {
            scenario: "toy".into(),
            oracle: "expressiveness".into(),
            message: "forest cannot express: x".into(),
            strategy: StrategyChoice::Mcts { iterations: 40, seed: 9, workers: 2 },
            mutation: Some(Mutation::BreakExpressiveness),
            queries: vec![
                pi2_sql::parse_query("SELECT a, count(*) FROM t GROUP BY a").unwrap(),
                pi2_sql::parse_query("SELECT b FROM t WHERE c = 'x y'").unwrap(),
            ],
            events: vec![
                Event::SetWidget { widget: 3, value: WidgetValue::Pick(2) },
                Event::SetWidget { widget: 1, value: WidgetValue::Range(0.25, 2.5) },
                Event::SetWidget { widget: 4, value: WidgetValue::Multi(vec![true, false, true]) },
                Event::SetWidget {
                    widget: 5,
                    value: WidgetValue::Literal(pi2_sql::Literal::Str("a b".into())),
                },
                Event::Brush { chart: 0, low: -1.5, high: 3.0 },
                Event::Pan { chart: 0, dx: 2.0, dy: -1.0 },
                Event::Zoom { chart: 1, factor: 0.5 },
                Event::Click { chart: 0, value: pi2_sql::Literal::Int(7) },
            ],
        };
        let text = r.to_text();
        let back = Reproducer::from_text(&text).unwrap();
        assert_eq!(format!("{:?}", r.queries), format!("{:?}", back.queries));
        assert_eq!(format!("{:?}", r.events), format!("{:?}", back.events));
        assert_eq!(back.strategy, r.strategy);
        assert_eq!(back.mutation, r.mutation);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn date_literal_round_trips() {
        let e = event_from_line("click 2 DATE '2020-03-01'").unwrap();
        assert_eq!(event_from_line(&event_to_line(&e)).unwrap(), e);
    }
}
