//! Random-but-valid event generation for a generated interface, plus the
//! applicability check the shrinker uses during replay.
//!
//! Events are drawn from the interface's *actual* widgets and chart
//! interactions, with values taken from the bound choice nodes' domains —
//! so a dispatch failure on a generated event is an oracle violation, not
//! generator noise.

use pi2_core::{Event, GeneratedInterface, WidgetValue};
use pi2_difftree::{DiffForest, Domain, NodeKind};
use pi2_interface::{Interface, Target, VizInteraction, WidgetKind};
use pi2_sql::Literal;
use rand::Rng;

/// The domain of the choice node behind `target`, if it is a hole.
fn hole_domain(forest: &DiffForest, target: Target) -> Option<Domain> {
    let node = forest.trees.get(target.tree)?.root.find(target.node)?;
    match &node.kind {
        NodeKind::Hole { domain, .. } => Some(domain.clone()),
        _ => None,
    }
}

/// Continuous bounds of a domain as f64 (dates as day numbers).
pub(crate) fn domain_bounds(domain: &Domain) -> Option<(f64, f64)> {
    match domain {
        Domain::IntRange { min, max } => Some((*min as f64, *max as f64)),
        Domain::FloatRange { min, max } => Some((min.0, max.0)),
        Domain::DateRange { min, max } => Some((min.0 as f64, max.0 as f64)),
        Domain::Discrete(_) => None,
    }
}

fn literal_to_f64(l: &Literal) -> Option<f64> {
    match l {
        Literal::Int(v) => Some(*v as f64),
        Literal::Float(f) => Some(f.0),
        Literal::Date(d) => Some(d.0 as f64),
        _ => None,
    }
}

/// A value within the slider's `[min, max]`, snapped loosely to `step`.
fn slider_value<R: Rng>(rng: &mut R, min: f64, max: f64, step: f64) -> f64 {
    if max <= min {
        return min;
    }
    let v = rng.gen_range(min..max);
    if step > 0.0 {
        (min + ((v - min) / step).round() * step).clamp(min, max)
    } else {
        v
    }
}

/// Draw one random valid event for the interface, or `None` when the
/// interface has no operable control at all (static interfaces exist: a
/// log of identical queries produces zero widgets).
pub fn random_event<R: Rng>(g: &GeneratedInterface, rng: &mut R) -> Option<Event> {
    let mut candidates: Vec<Event> = Vec::new();
    for w in &g.interface.widgets {
        match &w.kind {
            WidgetKind::Radio { options }
            | WidgetKind::ButtonGroup { options }
            | WidgetKind::Dropdown { options }
            | WidgetKind::Tabs { options } => {
                if !options.is_empty() {
                    candidates.push(Event::SetWidget {
                        widget: w.id,
                        value: WidgetValue::Pick(rng.gen_range(0..options.len())),
                    });
                }
            }
            WidgetKind::Toggle => {
                candidates.push(Event::SetWidget {
                    widget: w.id,
                    value: WidgetValue::Bool(rng.gen_bool(0.5)),
                });
            }
            WidgetKind::Slider { min, max, step, .. } => {
                candidates.push(Event::SetWidget {
                    widget: w.id,
                    value: WidgetValue::Scalar(slider_value(rng, *min, *max, *step)),
                });
            }
            WidgetKind::RangeSlider { min, max, step, .. } => {
                let a = slider_value(rng, *min, *max, *step);
                let b = slider_value(rng, *min, *max, *step);
                candidates.push(Event::SetWidget {
                    widget: w.id,
                    value: WidgetValue::Range(a.min(b), a.max(b)),
                });
            }
            WidgetKind::MultiSelect { options } => {
                let flags: Vec<bool> = (0..options.len()).map(|_| rng.gen_bool(0.7)).collect();
                candidates
                    .push(Event::SetWidget { widget: w.id, value: WidgetValue::Multi(flags) });
            }
            WidgetKind::TextInput => {
                // Only meaningful when the hole's domain is discrete; an
                // unbounded text hole has no value pool to draw from.
                if let Some(Domain::Discrete(items)) =
                    w.targets.first().and_then(|t| hole_domain(&g.forest, *t))
                {
                    if !items.is_empty() {
                        candidates.push(Event::SetWidget {
                            widget: w.id,
                            value: WidgetValue::Literal(
                                items[rng.gen_range(0..items.len())].clone(),
                            ),
                        });
                    }
                }
            }
        }
    }
    for c in &g.interface.charts {
        for i in &c.interactions {
            match i {
                VizInteraction::BrushX { low, .. } => {
                    if let Some((min, max)) =
                        hole_domain(&g.forest, *low).as_ref().and_then(domain_bounds)
                    {
                        if max > min {
                            let a = rng.gen_range(min..max);
                            let b = rng.gen_range(min..max);
                            candidates.push(Event::Brush {
                                chart: c.id,
                                low: a.min(b),
                                high: a.max(b),
                            });
                        }
                    }
                }
                VizInteraction::PanZoom { x, y, .. } => {
                    let span = |pair: &Option<(Target, Target)>| {
                        pair.as_ref()
                            .and_then(|(lo, _)| hole_domain(&g.forest, *lo))
                            .as_ref()
                            .and_then(domain_bounds)
                            .map(|(min, max)| max - min)
                            .unwrap_or(0.0)
                    };
                    let (sx, sy) = (span(x), span(y));
                    let dx = if sx > 0.0 { rng.gen_range(-0.25..0.25) * sx } else { 0.0 };
                    let dy = if sy > 0.0 { rng.gen_range(-0.25..0.25) * sy } else { 0.0 };
                    candidates.push(Event::Pan { chart: c.id, dx, dy });
                    candidates.push(Event::Zoom {
                        chart: c.id,
                        factor: [0.5, 0.8, 1.25, 2.0][rng.gen_range(0..4)],
                    });
                }
                VizInteraction::ClickBind { target, .. } => match hole_domain(&g.forest, *target) {
                    Some(Domain::Discrete(items)) if !items.is_empty() => {
                        candidates.push(Event::Click {
                            chart: c.id,
                            value: items[rng.gen_range(0..items.len())].clone(),
                        });
                    }
                    Some(domain) => {
                        if let Some((min, max)) = domain_bounds(&domain) {
                            let v = rng.gen_range(min..max.max(min + 1.0));
                            let lit = match domain {
                                Domain::IntRange { .. } => Literal::Int(v.round() as i64),
                                Domain::FloatRange { .. } => Literal::Float(pi2_sql::F64(v)),
                                Domain::DateRange { .. } => {
                                    Literal::Date(pi2_sql::Date(v.round() as i32))
                                }
                                Domain::Discrete(_) => unreachable!(),
                            };
                            candidates.push(Event::Click { chart: c.id, value: lit });
                        }
                    }
                    None => {}
                },
            }
        }
    }
    if candidates.is_empty() {
        None
    } else {
        let i = rng.gen_range(0..candidates.len());
        Some(candidates.swap_remove(i))
    }
}

/// Does `event` still address an existing control of `interface`, with a
/// value of the right shape? The shrinker replays recorded events against
/// *smaller* logs whose interfaces may have fewer widgets; events that no
/// longer apply are skipped rather than counted as failures.
pub fn event_applies(interface: &Interface, event: &Event) -> bool {
    match event {
        Event::SetWidget { widget, value } => {
            let Some(w) = interface.widgets.iter().find(|w| w.id == *widget) else {
                return false;
            };
            match (&w.kind, value) {
                (
                    WidgetKind::Radio { options }
                    | WidgetKind::ButtonGroup { options }
                    | WidgetKind::Dropdown { options }
                    | WidgetKind::Tabs { options },
                    WidgetValue::Pick(i),
                ) => *i < options.len(),
                (WidgetKind::Toggle, WidgetValue::Bool(_)) => true,
                (WidgetKind::Slider { .. }, WidgetValue::Scalar(_)) => true,
                (WidgetKind::RangeSlider { .. }, WidgetValue::Range(..)) => true,
                (WidgetKind::MultiSelect { options }, WidgetValue::Multi(flags)) => {
                    flags.len() == options.len()
                }
                (WidgetKind::TextInput, WidgetValue::Literal(_)) => true,
                _ => false,
            }
        }
        Event::Brush { chart, .. } => interface.charts.iter().any(|c| {
            c.id == *chart
                && c.interactions.iter().any(|i| matches!(i, VizInteraction::BrushX { .. }))
        }),
        Event::Pan { chart, .. } | Event::Zoom { chart, .. } => interface.charts.iter().any(|c| {
            c.id == *chart
                && c.interactions.iter().any(|i| matches!(i, VizInteraction::PanZoom { .. }))
        }),
        Event::Click { chart, .. } => interface.charts.iter().any(|c| {
            c.id == *chart
                && c.interactions.iter().any(|i| matches!(i, VizInteraction::ClickBind { .. }))
        }),
    }
}

/// The f64 view of the current value of hole `target` in `session`'s
/// bindings (or the node default), used by the pan round-trip oracle.
pub(crate) fn current_hole_value(
    forest: &DiffForest,
    session: &pi2_core::InterfaceSession,
    target: Target,
) -> Option<f64> {
    if let Some(pi2_difftree::Binding::Value(l)) =
        session.bindings(target.tree).and_then(|b| b.get(target.node))
    {
        return literal_to_f64(l);
    }
    let node = forest.trees.get(target.tree)?.root.find(target.node)?;
    match &node.kind {
        NodeKind::Hole { default, .. } => literal_to_f64(default),
        _ => None,
    }
}
