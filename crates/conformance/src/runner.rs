//! The fuzz loop: seeded run generation, oracle checking, shrinking, and
//! corpus persistence.

use crate::corpus::Reproducer;
use crate::oracles::{check, CheckConfig, Mutation, StrategyChoice};
use crate::scenarios::{scenarios, Scenario};
use crate::shrink::shrink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration for one [`fuzz`] invocation.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Master seed; every run derives its own sub-seed from it, so the
    /// whole campaign is reproducible from `(seed, runs)`.
    pub seed: u64,
    /// Number of fuzz runs to attempt.
    pub runs: usize,
    /// Optional wall-clock budget; the loop stops early when exceeded.
    pub budget: Option<Duration>,
    /// Planted bug for mutation-testing the harness.
    pub mutation: Option<Mutation>,
    /// Inject this fault class on every run (see [`crate::faults`]) and
    /// check the degradation oracles instead of the standard battery.
    /// Fault runs skip shrinking and corpus persistence: reproducing them
    /// needs the armed fault, which a bare replay would not restore.
    pub fault: Option<String>,
    /// Where to write shrunken reproducers (`None` disables persistence).
    pub corpus_dir: Option<PathBuf>,
    /// Stop after this many distinct failures (shrinking is expensive).
    pub max_failures: usize,
    /// Print a line per run to stderr.
    pub verbose: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            runs: 50,
            budget: None,
            mutation: None,
            fault: None,
            corpus_dir: None,
            max_failures: 3,
            verbose: false,
        }
    }
}

/// Outcome of a fuzz campaign.
#[derive(Debug)]
pub struct RunReport {
    /// Runs actually completed (≤ `cfg.runs` when the budget ran out).
    pub runs_completed: usize,
    /// Shrunken failures, with the corpus path when persistence was on.
    pub failures: Vec<(Reproducer, Option<PathBuf>)>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl RunReport {
    /// True when every completed run passed all oracles.
    pub fn all_green(&self) -> bool {
        self.failures.is_empty()
    }
}

/// SplitMix64: decorrelate per-run seeds from the master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The per-run plan derived deterministically from `(master_seed, run)`.
fn plan(cfg: &RunnerConfig, run: usize) -> (u64, StrategyChoice, bool) {
    let run_seed = splitmix64(cfg.seed ^ (run as u64).wrapping_mul(0x9e3779b97f4a7c15));
    // Mostly the fast FullMerge path; every 5th run drives the MCTS
    // search, alternating worker counts.
    let strategy = if run % 5 == 4 {
        StrategyChoice::Mcts {
            iterations: 24,
            seed: run_seed,
            workers: if run % 10 == 9 { 2 } else { 1 },
        }
    } else {
        StrategyChoice::FullMerge
    };
    // The memo/workers oracle regenerates four times; gate it.
    let workers_oracle = run % 7 == 3;
    (run_seed, strategy, workers_oracle)
}

/// Run a seeded fuzz campaign over all scenarios.
pub fn fuzz(cfg: &RunnerConfig) -> RunReport {
    let started = Instant::now();
    let scenarios: Vec<Scenario> = scenarios();
    let mut failures: Vec<(Reproducer, Option<PathBuf>)> = Vec::new();
    let mut runs_completed = 0usize;

    for run in 0..cfg.runs {
        if let Some(budget) = cfg.budget {
            if started.elapsed() >= budget {
                if cfg.verbose {
                    eprintln!("budget exhausted after {run} runs");
                }
                break;
            }
        }
        let (run_seed, strategy, workers_oracle) = plan(cfg, run);
        let scenario = &scenarios[run % scenarios.len()];
        let mut rng = SmallRng::seed_from_u64(run_seed);
        let log_len = rng.gen_range(1..5);
        let log = scenario.spec.random_log(&mut rng, log_len);
        let check_cfg = CheckConfig {
            strategy,
            walk_len: 6,
            walk_seed: splitmix64(run_seed),
            workers_oracle,
            mutation: cfg.mutation,
        };
        let outcome = match cfg.fault.as_deref() {
            Some(class) => crate::faults::check_fault(&scenario.catalog, &log, class, run_seed),
            None => check(&scenario.catalog, &log, None, &check_cfg),
        };
        match outcome {
            Ok(()) => {
                if cfg.verbose {
                    eprintln!(
                        "run {run:>4} {:<12} log={log_len} {:<10} ok",
                        scenario.name,
                        match cfg.fault.as_deref() {
                            Some(class) => format!("fault/{class}"),
                            None => match strategy {
                                StrategyChoice::FullMerge => "full-merge".to_string(),
                                StrategyChoice::Mcts { workers, .. } => format!("mcts/w{workers}"),
                            },
                        }
                    );
                }
            }
            Err(f) => {
                eprintln!(
                    "run {run} ({}): oracle `{}` FAILED: {}",
                    scenario.name, f.oracle, f.message
                );
                // Fault runs are not shrunk or persisted: replaying a saved
                // reproducer would not re-arm the injected fault.
                let (min_log, min_events) = if cfg.fault.is_some() {
                    (log.clone(), f.events.clone())
                } else {
                    shrink(&scenario.catalog, &log, &f.events, &check_cfg, f.oracle)
                        .unwrap_or((log.clone(), f.events.clone()))
                };
                if cfg.fault.is_none() {
                    eprintln!("  shrunk to {} queries, {} events", min_log.len(), min_events.len());
                }
                let repro = Reproducer {
                    scenario: scenario.name.to_string(),
                    oracle: f.oracle.to_string(),
                    message: f.message.clone(),
                    strategy,
                    mutation: cfg.mutation,
                    queries: min_log,
                    events: min_events,
                };
                let saved = if cfg.fault.is_some() {
                    None
                } else {
                    cfg.corpus_dir.as_deref().and_then(|dir| match repro.save(dir) {
                        Ok(path) => {
                            eprintln!("  reproducer saved to {}", path.display());
                            Some(path)
                        }
                        Err(e) => {
                            eprintln!("  could not save reproducer: {e}");
                            None
                        }
                    })
                };
                failures.push((repro, saved));
                if failures.len() >= cfg.max_failures {
                    eprintln!("stopping after {} failures", failures.len());
                    runs_completed = run + 1;
                    break;
                }
            }
        }
        runs_completed = run + 1;
    }

    RunReport { runs_completed, failures, elapsed: started.elapsed() }
}
