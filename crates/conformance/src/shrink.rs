//! Delta-debugging of failing inputs: reduce the query log and the event
//! sequence to a minimal reproducer that still trips the *same* oracle.

use crate::oracles::{check, CheckConfig, Failure};
use pi2_core::Event;
use pi2_engine::Catalog;
use pi2_sql::Query;

/// Does this (log, events) pair still fail the same oracle? Returns the
/// failure so the caller can reuse its dispatched-events prefix.
fn reproduces(
    catalog: &Catalog,
    log: &[Query],
    events: &[Event],
    cfg: &CheckConfig,
    oracle: &str,
) -> Option<Failure> {
    match check(catalog, log, Some(events), cfg) {
        Err(f) if f.oracle == oracle => Some(f),
        _ => None,
    }
}

/// Shrink a failing input with a one-at-a-time ddmin pass, first over the
/// query log, then over the event sequence.
///
/// `oracle` is the name of the oracle that originally tripped; a candidate
/// only counts as reproducing when the *same* oracle fails again (a
/// smaller log that fails differently is a different bug). Events that no
/// longer apply to a shrunken log's interface are skipped during replay,
/// so query removal and event removal don't have to be interleaved.
///
/// Returns the minimal `(log, events)`, or `None` if the original input
/// unexpectedly fails to reproduce (flaky oracle — should not happen with
/// a deterministic pipeline, but the corpus must never record
/// non-reproducers).
pub fn shrink(
    catalog: &Catalog,
    log: &[Query],
    events: &[Event],
    cfg: &CheckConfig,
    oracle: &'static str,
) -> Option<(Vec<Query>, Vec<Event>)> {
    let mut log = log.to_vec();
    // The failure's `events` field is the dispatched prefix up to the
    // trigger: everything after it is dead weight, drop it immediately.
    let first = reproduces(catalog, &log, events, cfg, oracle)?;
    let mut events = if first.events.is_empty() { Vec::new() } else { first.events };

    // Phase A: drop queries one at a time until a fixpoint.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < log.len() {
            if log.len() == 1 {
                break;
            }
            let mut candidate = log.clone();
            candidate.remove(i);
            if let Some(f) = reproduces(catalog, &candidate, &events, cfg, oracle) {
                log = candidate;
                if !f.events.is_empty() {
                    events = f.events;
                }
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    // Phase B: drop events one at a time until a fixpoint.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < events.len() {
            let mut candidate = events.clone();
            candidate.remove(i);
            if reproduces(catalog, &log, &candidate, cfg, oracle).is_some() {
                events = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    Some((log, events))
}
