//! Fault-injection conformance: arm one fault class ([`pi2_faults`]) and
//! check that generation completes without panic or hang, returns an
//! interface that still expresses every input query, and reports a
//! truthful [`DegradationLevel`].

use crate::oracles::Failure;
use pi2_core::{DegradationLevel, GeneratedInterface, Pi2, SearchStrategy};
use pi2_engine::Catalog;
use pi2_faults::{inject, Fault};
use pi2_mcts::MctsConfig;
use pi2_sql::Query;

/// Stable CLI names of every injectable fault class.
pub const FAULT_CLASSES: [&str; 7] = [
    "worker-panic",
    "deadline-search",
    "deadline-map",
    "exec-overrun",
    "journal-torn-write",
    "checkpoint-crash",
    "recovery-fsync",
];

/// Install a panic hook that silences the backtraces of *injected* worker
/// panics (recognized by [`pi2_faults::PANIC_MARKER`]) while passing every
/// real panic through to the previous hook. Call once, before a fault
/// campaign, so deliberate faults don't spam CI logs.
pub fn suppress_injected_panic_output() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.starts_with(pi2_faults::PANIC_MARKER) {
            previous(info);
        }
    }));
}

/// A small MCTS pipeline for fault runs.
fn mcts_pi2(catalog: &Catalog, seed: u64, workers: usize) -> Pi2 {
    Pi2::builder(catalog.clone())
        .strategy(SearchStrategy::Mcts(MctsConfig {
            iterations: 16,
            rollout_depth: 2,
            seed,
            workers,
            ..Default::default()
        }))
        .build()
}

/// The invariants every fault run must uphold, regardless of class:
/// the interface expresses the whole log, has a chart per tree, and the
/// reported degradation level is consistent with its reason.
fn valid_and_truthful(
    g: &GeneratedInterface,
    log: &[Query],
    oracle: &'static str,
) -> Result<(), Failure> {
    if !g.forest.expresses_all(log) {
        return Err(Failure::new(oracle, "degraded forest does not express the whole log"));
    }
    if g.interface.charts.is_empty() {
        return Err(Failure::new(oracle, "degraded interface has no charts"));
    }
    match (g.stats.degradation, &g.stats.degradation_reason) {
        (DegradationLevel::Full, Some(r)) => {
            Err(Failure::new(oracle, format!("full run carries a degradation reason: {r}")))
        }
        (DegradationLevel::Anytime | DegradationLevel::Fallback, None) => {
            Err(Failure::new(oracle, "degraded run carries no degradation reason"))
        }
        _ => Ok(()),
    }
}

/// Run the oracle battery for one fault class over one query log.
///
/// Each sub-check arms the fault for exactly the generation (and, for
/// `exec-overrun`, the session) it exercises; the guard serializes
/// concurrent injectors and disarms on scope exit.
pub fn check_fault(
    catalog: &Catalog,
    log: &[Query],
    class: &str,
    seed: u64,
) -> Result<(), Failure> {
    match class {
        "worker-panic" => {
            sole_worker_panic(catalog, log, seed)?;
            surviving_worker_panic(catalog, log, seed)
        }
        "deadline-search" => deadline_search(catalog, log, seed),
        "deadline-map" => deadline_map(catalog, log),
        "exec-overrun" => exec_overrun(catalog, log),
        // The journal classes exercise the server's durability layer;
        // they drive the `toy` scenario (seed-varied) rather than the
        // fuzzed catalog, since the protocol opens sessions by name.
        "journal-torn-write" => crate::recovery::torn_write(seed),
        "checkpoint-crash" => crate::recovery::checkpoint_crash(seed),
        "recovery-fsync" => crate::recovery::recovery_fsync(seed),
        other => Err(Failure::new("fault", format!("unknown fault class `{other}`"))),
    }
}

/// Every worker panics (workers = 1, worker 0 dies): the pipeline must
/// fall back to the no-search baseline, not error or crash.
fn sole_worker_panic(catalog: &Catalog, log: &[Query], seed: u64) -> Result<(), Failure> {
    const ORACLE: &str = "fault-worker-panic";
    let g = {
        let _fault = inject(Fault::WorkerPanic { worker: 0 });
        mcts_pi2(catalog, seed, 1).generate(log)
    }
    .map_err(|e| Failure::new(ORACLE, format!("all-workers-dead run errored: {e}")))?;
    if g.stats.degradation != DegradationLevel::Fallback {
        return Err(Failure::new(
            ORACLE,
            format!("expected fallback when every worker dies, got {}", g.stats.degradation),
        ));
    }
    valid_and_truthful(&g, log, ORACLE)
}

/// One of two workers panics: the survivor's result must be used, the
/// panic recorded in the stats, and the run reported as Full.
fn surviving_worker_panic(catalog: &Catalog, log: &[Query], seed: u64) -> Result<(), Failure> {
    const ORACLE: &str = "fault-worker-panic";
    let g = {
        let _fault = inject(Fault::WorkerPanic { worker: 1 });
        mcts_pi2(catalog, seed, 2).generate(log)
    }
    .map_err(|e| Failure::new(ORACLE, format!("survivor run errored: {e}")))?;
    if g.stats.degradation != DegradationLevel::Full {
        return Err(Failure::new(
            ORACLE,
            format!("expected full result from the surviving worker, got {}", g.stats.degradation),
        ));
    }
    let Some(s) = &g.stats.search else {
        return Err(Failure::new(ORACLE, "survivor run has no search stats"));
    };
    if s.worker_panics != 1 || !s.workers.iter().any(|w| w.panicked) {
        return Err(Failure::new(
            ORACLE,
            format!("stats do not record the panicked worker: {} panics", s.worker_panics),
        ));
    }
    valid_and_truthful(&g, log, ORACLE)
}

/// The deadline expires the moment search starts: the run must still
/// return an interface (the initial search state), marked Anytime.
fn deadline_search(catalog: &Catalog, log: &[Query], seed: u64) -> Result<(), Failure> {
    const ORACLE: &str = "fault-deadline-search";
    let g = {
        let _fault = inject(Fault::DeadlineAtPhase { phase: "search" });
        mcts_pi2(catalog, seed, 1).generate(log)
    }
    .map_err(|e| Failure::new(ORACLE, format!("expired-deadline run errored: {e}")))?;
    if g.stats.degradation != DegradationLevel::Anytime {
        return Err(Failure::new(
            ORACLE,
            format!(
                "expected anytime result under an expired deadline, got {}",
                g.stats.degradation
            ),
        ));
    }
    if !g.stats.search.as_ref().is_some_and(|s| s.budget_exhausted) {
        return Err(Failure::new(ORACLE, "search stats do not report budget exhaustion"));
    }
    valid_and_truthful(&g, log, ORACLE)
}

/// The deadline expires as interface mapping begins: no time to map or
/// cost candidates, so the pipeline must fall back.
fn deadline_map(catalog: &Catalog, log: &[Query]) -> Result<(), Failure> {
    const ORACLE: &str = "fault-deadline-map";
    let g = {
        let _fault = inject(Fault::DeadlineAtPhase { phase: "map" });
        Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).build().generate(log)
    }
    .map_err(|e| Failure::new(ORACLE, format!("deadline-at-map run errored: {e}")))?;
    if g.stats.degradation != DegradationLevel::Fallback {
        return Err(Failure::new(
            ORACLE,
            format!("expected fallback when mapping is cut off, got {}", g.stats.degradation),
        ));
    }
    valid_and_truthful(&g, log, ORACLE)
}

/// Every query execution reports a resource overrun: generation must
/// still return a valid interface (structural work doesn't execute), and
/// driving the session must error cleanly instead of panicking.
fn exec_overrun(catalog: &Catalog, log: &[Query]) -> Result<(), Failure> {
    const ORACLE: &str = "fault-exec-overrun";
    let _fault = inject(Fault::ExecOverrun);
    let g = Pi2::builder(catalog.clone())
        .strategy(SearchStrategy::FullMerge)
        .build()
        .generate(log)
        .map_err(|e| Failure::new(ORACLE, format!("exec-overrun run errored: {e}")))?;
    valid_and_truthful(&g, log, ORACLE)?;
    let session = g.session(catalog);
    if session.refresh_all().is_ok() {
        return Err(Failure::new(
            ORACLE,
            "refresh_all succeeded although every execution overruns",
        ));
    }
    Ok(())
}
