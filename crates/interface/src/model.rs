//! The interface model: charts, widgets, visualization interactions, and
//! layout — the three component kinds the paper's introduction defines
//! ("visualizations, widgets, and interactions within a visualization").

use pi2_difftree::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a chart within an interface (`G1`, `G2`, … in the paper).
pub type ChartId = usize;
/// Identifier of a widget within an interface.
pub type WidgetId = usize;

/// A binding target: a choice node in one of the forest's trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Target {
    /// Index of the DiffTree in the forest.
    pub tree: usize,
    /// The choice node within that tree.
    pub node: NodeId,
}

/// Chart mark types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mark {
    /// Bar chart.
    Bar,
    /// Line chart.
    Line,
    /// Area chart.
    Area,
    /// Scatter plot.
    Scatter,
    /// Fallback: render the result as a table.
    Table,
    /// Two categorical axes + a quantitative color.
    Heatmap,
}

/// Visual encoding channels, ranked by effectiveness for quantitative data
/// (position ≫ size ≫ color), following Cleveland–McGill/Bertin as the
/// paper's cost model does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// Horizontal position.
    X,
    /// Vertical position.
    Y,
    /// Color/hue.
    Color,
    /// Mark size.
    Size,
    /// Non-visual grouping (tooltips/detail rows).
    Detail,
}

/// Field types in the visualization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldType {
    /// Continuous numeric.
    Quantitative,
    /// Unordered categories.
    Nominal,
    /// Ordered categories.
    Ordinal,
    /// Time/date.
    Temporal,
}

/// One encoding: a result field bound to a channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    /// Channel.
    pub channel: Channel,
    /// The bound result field.
    pub field: String,
    /// Visualization field type (quantitative/nominal/ordinal/temporal).
    pub field_type: FieldType,
}

/// An in-visualization interaction (paper §1: "brushing to select points,
/// panning, clicking").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VizInteraction {
    /// Drag a range along the x axis; the selected `[low, high]` binds the
    /// two target holes (possibly in *another* chart's query — the linked
    /// brushing of Figure 7).
    BrushX {
        /// The bound result field.
        field: String,
        /// Lower bound (inclusive).
        low: Target,
        /// Upper bound (inclusive).
        high: Target,
    },
    /// Drag/scroll to pan and zoom; each axis manipulates a (low, high)
    /// hole pair (Figure 1c's ra/dec ranges).
    PanZoom {
        /// The (low, high) targets for the x axis.
        x: Option<(Target, Target)>,
        /// The (low, high) targets for the y axis.
        y: Option<(Target, Target)>,
        /// Field on the x axis, if panning x.
        x_field: Option<String>,
        /// Field on the y axis, if panning y.
        y_field: Option<String>,
    },
    /// Click a mark; the clicked x-value binds the target hole (Figure 5).
    ClickBind {
        /// The bound result field.
        field: String,
        /// The bound choice node.
        target: Target,
    },
}

impl VizInteraction {
    /// All binding targets this interaction drives.
    pub fn targets(&self) -> Vec<Target> {
        match self {
            VizInteraction::BrushX { low, high, .. } => vec![*low, *high],
            VizInteraction::PanZoom { x, y, .. } => {
                let mut t = Vec::new();
                if let Some((a, b)) = x {
                    t.push(*a);
                    t.push(*b);
                }
                if let Some((a, b)) = y {
                    t.push(*a);
                    t.push(*b);
                }
                t
            }
            VizInteraction::ClickBind { target, .. } => vec![*target],
        }
    }

    /// Short name used in specs and cost tables.
    pub fn kind_name(&self) -> &'static str {
        match self {
            VizInteraction::BrushX { .. } => "brush",
            VizInteraction::PanZoom { .. } => "pan-zoom",
            VizInteraction::ClickBind { .. } => "click",
        }
    }
}

/// A chart: one DiffTree's result rendered with a mark and encodings, plus
/// the interactions attached to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    /// Stable identifier.
    pub id: ChartId,
    /// `G1`, `G2`, … display name.
    pub name: String,
    /// Display title.
    pub title: String,
    /// The chart's mark type.
    pub mark: Mark,
    /// Channel encodings.
    pub encodings: Vec<Encoding>,
    /// Which DiffTree in the forest this chart visualizes.
    pub tree: usize,
    /// In-visualization interactions attached to the chart.
    pub interactions: Vec<VizInteraction>,
}

impl Chart {
    /// The encoding on a given channel.
    pub fn encoding(&self, channel: Channel) -> Option<&Encoding> {
        self.encodings.iter().find(|e| e.channel == channel)
    }
}

/// Widget flavors (paper §1: dropdowns, sliders; §3: toggles, button pairs,
/// radio lists, tabs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WidgetKind {
    /// Radio list over labeled options (one target `Any`).
    Radio {
        /// Display labels of the selectable options.
        options: Vec<String>,
    },
    /// A compact button group (two or three options).
    ButtonGroup {
        /// Display labels of the selectable options.
        options: Vec<String>,
    },
    /// Dropdown over many options.
    Dropdown {
        /// Display labels of the selectable options.
        options: Vec<String>,
    },
    /// On/off toggle for an `Opt`.
    Toggle,
    /// Continuous slider over a numeric or date hole.
    Slider {
        /// Minimum value.
        min: f64,
        /// Maximum value.
        max: f64,
        /// Slider step size.
        step: f64,
        /// True when values are dates (day numbers).
        temporal: bool,
    },
    /// Two-thumb slider binding a (low, high) hole pair.
    RangeSlider {
        /// Minimum value.
        min: f64,
        /// Maximum value.
        max: f64,
        /// Slider step size.
        step: f64,
        /// True when values are dates (day numbers).
        temporal: bool,
    },
    /// Tab strip choosing between whole queries (root-level `Any`).
    Tabs {
        /// Display labels of the selectable options.
        options: Vec<String>,
    },
    /// Checkbox group toggling membership of each option independently
    /// (the SUBSET choice of the full paper: optional `IN`-list members).
    /// `targets[i]` is the OPT node behind `options[i]`.
    MultiSelect {
        /// Display labels of the toggleable options.
        options: Vec<String>,
    },
    /// Free-text input (string hole with unbounded domain).
    TextInput,
}

impl WidgetKind {
    /// Short name used in specs and cost tables.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WidgetKind::Radio { .. } => "radio",
            WidgetKind::ButtonGroup { .. } => "button-group",
            WidgetKind::Dropdown { .. } => "dropdown",
            WidgetKind::Toggle => "toggle",
            WidgetKind::Slider { .. } => "slider",
            WidgetKind::RangeSlider { .. } => "range-slider",
            WidgetKind::Tabs { .. } => "tabs",
            WidgetKind::MultiSelect { .. } => "multi-select",
            WidgetKind::TextInput => "text-input",
        }
    }
}

/// A widget bound to one choice node (two for range sliders).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Widget {
    /// Stable identifier.
    pub id: WidgetId,
    /// Display label.
    pub label: String,
    /// The kind.
    pub kind: WidgetKind,
    /// One target for most widgets; `[low, high]` for range sliders.
    pub targets: Vec<Target>,
}

/// A rectangle of available screen, in abstract pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScreenSpec {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl ScreenSpec {
    /// A full-width notebook side panel on a laptop display.
    pub const WIDE: ScreenSpec = ScreenSpec { width: 1280, height: 800 };
    /// A narrow side panel (the paper's "small screen" case).
    pub const NARROW: ScreenSpec = ScreenSpec { width: 480, height: 800 };
}

impl Default for ScreenSpec {
    fn default() -> Self {
        ScreenSpec::WIDE
    }
}

/// An element placed by the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Element {
    /// Chart.
    Chart(ChartId),
    /// Widget.
    Widget(WidgetId),
}

/// The layout tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layout {
    /// Leaf.
    Leaf(Element),
    /// Horizontal.
    Horizontal(Vec<Layout>),
    /// Vertical.
    Vertical(Vec<Layout>),
}

impl Layout {
    /// All elements in layout order.
    pub fn elements(&self) -> Vec<Element> {
        let mut out = Vec::new();
        fn go(l: &Layout, out: &mut Vec<Element>) {
            match l {
                Layout::Leaf(e) => out.push(*e),
                Layout::Horizontal(xs) | Layout::Vertical(xs) => {
                    for x in xs {
                        go(x, out);
                    }
                }
            }
        }
        go(self, &mut out);
        out
    }

    /// Nesting depth of the layout tree.
    pub fn depth(&self) -> usize {
        match self {
            Layout::Leaf(_) => 1,
            Layout::Horizontal(xs) | Layout::Vertical(xs) => {
                1 + xs.iter().map(Layout::depth).max().unwrap_or(0)
            }
        }
    }
}

/// A complete interface: charts + widgets + layout for a given screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    /// The interface's charts.
    pub charts: Vec<Chart>,
    /// How widgets are produced.
    pub widgets: Vec<Widget>,
    /// Layout-fit weight.
    pub layout: Layout,
    /// The screen the layout was computed for.
    pub screen: ScreenSpec,
}

impl Interface {
    /// Count of in-visualization interactions across charts.
    pub fn interaction_count(&self) -> usize {
        self.charts.iter().map(|c| c.interactions.len()).sum()
    }

    /// All binding targets driven by any widget or interaction.
    pub fn all_targets(&self) -> Vec<Target> {
        let mut out: Vec<Target> = self.widgets.iter().flat_map(|w| w.targets.clone()).collect();
        for c in &self.charts {
            for i in &c.interactions {
                out.extend(i.targets());
            }
        }
        out
    }

    /// Feature summary used by the Table 1 comparison: does the interface
    /// contain visualizations / widgets / visualization interactions?
    pub fn feature_summary(&self) -> FeatureSummary {
        FeatureSummary {
            charts: self.charts.iter().filter(|c| c.mark != Mark::Table).count(),
            tables: self.charts.iter().filter(|c| c.mark == Mark::Table).count(),
            widgets: self.widgets.len(),
            viz_interactions: self.interaction_count(),
            linked_views: self
                .charts
                .iter()
                .flat_map(|c| &c.interactions)
                .flat_map(|i| i.targets())
                .any(|t| {
                    // An interaction that drives a different tree's query
                    // links two views.
                    self.charts.iter().any(|c2| {
                        c2.tree == t.tree
                            && !c2.interactions.iter().any(|i2| i2.targets().contains(&t))
                    })
                }),
        }
    }
}

/// Counts used by the tool-comparison table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSummary {
    /// The interface's charts.
    pub charts: usize,
    /// Tables.
    pub tables: usize,
    /// How widgets are produced.
    pub widgets: usize,
    /// How in-visualization interactions are produced.
    pub viz_interactions: usize,
    /// Linked views.
    pub linked_views: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(tree: usize, node: NodeId) -> Target {
        Target { tree, node }
    }

    #[test]
    fn interaction_targets() {
        let brush =
            VizInteraction::BrushX { field: "date".into(), low: target(1, 2), high: target(1, 3) };
        assert_eq!(brush.targets().len(), 2);
        let pz = VizInteraction::PanZoom {
            x: Some((target(0, 1), target(0, 2))),
            y: Some((target(0, 3), target(0, 4))),
            x_field: Some("ra".into()),
            y_field: Some("dec".into()),
        };
        assert_eq!(pz.targets().len(), 4);
        let click = VizInteraction::ClickBind { field: "a".into(), target: target(0, 9) };
        assert_eq!(click.targets(), vec![target(0, 9)]);
    }

    #[test]
    fn layout_elements_and_depth() {
        let l = Layout::Vertical(vec![
            Layout::Leaf(Element::Widget(0)),
            Layout::Horizontal(vec![
                Layout::Leaf(Element::Chart(0)),
                Layout::Leaf(Element::Chart(1)),
            ]),
        ]);
        assert_eq!(l.elements().len(), 3);
        assert_eq!(l.depth(), 3);
    }

    #[test]
    fn feature_summary_counts() {
        let iface = Interface {
            charts: vec![
                Chart {
                    id: 0,
                    name: "G1".into(),
                    title: "overview".into(),
                    mark: Mark::Line,
                    encodings: vec![],
                    tree: 0,
                    interactions: vec![VizInteraction::BrushX {
                        field: "date".into(),
                        low: target(1, 5),
                        high: target(1, 6),
                    }],
                },
                Chart {
                    id: 1,
                    name: "G2".into(),
                    title: "detail".into(),
                    mark: Mark::Line,
                    encodings: vec![],
                    tree: 1,
                    interactions: vec![],
                },
            ],
            widgets: vec![Widget {
                id: 0,
                label: "t".into(),
                kind: WidgetKind::Toggle,
                targets: vec![target(1, 9)],
            }],
            layout: Layout::Horizontal(vec![]),
            screen: ScreenSpec::default(),
        };
        let s = iface.feature_summary();
        assert_eq!(s.charts, 2);
        assert_eq!(s.widgets, 1);
        assert_eq!(s.viz_interactions, 1);
        assert!(s.linked_views);
    }
}
