//! The DiffTree-forest → interface mapper (paper Figure 6, step ②).
//!
//! Implements the three mappings as schema matching:
//!
//! * **𝕍 Visualization Mapping** — each tree's default instantiation is
//!   executed; its output field schema (types + cardinalities) selects a
//!   mark and encodings.
//! * **𝕄 Interaction Mapping** — each choice node's schema (Any arity /
//!   Opt / Hole domain, constrained column, range pairing) is matched
//!   against interaction capabilities, preferring in-visualization
//!   interactions when a chart axis carries the constrained column:
//!   a range pair on the chart's *own* axis → pan/zoom (Figure 1c); a
//!   range pair on *another* chart's axis → linked brushing (Figure 7);
//!   a single value on another chart's discrete axis → click binding
//!   (Figure 5); otherwise a widget chosen by domain shape.
//! * **𝕃 Layout Mapping** — widgets group into a panel; charts arrange
//!   horizontally, vertically, or in a grid depending on the screen.
//!
//! The mapper emits a small set of candidates (layout × interaction-mode
//! variants); the cost model ranks them.

use crate::model::*;
use crate::schema::{analyze, FieldInfo};
use pi2_difftree::{
    choices::choices, default_bindings, lower_query, Bindings, Choice, ChoiceKind, Clause,
    DiffForest, Domain,
};
use pi2_engine::{Catalog, ResultSet};
use std::collections::HashSet;
use std::fmt;

/// Mapper configuration.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// The screen the layout was computed for.
    pub screen: ScreenSpec,
    /// Also emit the widgets-only variant (no visualization interactions),
    /// used by ablations and by the cost model to demonstrate the value of
    /// in-visualization interactions.
    pub enumerate_variants: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self { screen: ScreenSpec::default(), enumerate_variants: true }
    }
}

/// Mapping errors.
#[derive(Debug, Clone)]
pub enum MapError {
    /// A tree could not be lowered to a default query.
    Lower(String),
    /// The default query failed to execute.
    Engine(String),
    /// The forest has no trees.
    EmptyForest,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Lower(m) => write!(f, "cannot lower tree: {m}"),
            MapError::Engine(m) => write!(f, "cannot execute default query: {m}"),
            MapError::EmptyForest => write!(f, "empty forest"),
        }
    }
}
impl std::error::Error for MapError {}

/// Per-tree analysis shared by the variants.
struct TreeAnalysis {
    result: ResultSet,
    fields: Vec<FieldInfo>,
    choices: Vec<Choice>,
}

/// Map a forest to candidate interfaces (at least one).
///
/// `log` is the original query log: each tree's *default* instantiation is
/// the witness of its first source query (see
/// [`pi2_difftree::default_bindings`]), which guarantees the default view
/// is a real query from the log even when a merge interleaves structurally
/// different queries. Pass `&[]` to fall back to structural defaults.
pub fn map_forest(
    forest: &DiffForest,
    catalog: &Catalog,
    log: &[pi2_sql::Query],
    cfg: &MapperConfig,
) -> Result<Vec<Interface>, MapError> {
    if forest.trees.is_empty() {
        return Err(MapError::EmptyForest);
    }
    let mut analyses = Vec::with_capacity(forest.trees.len());
    for tree in &forest.trees {
        let defaults = if log.is_empty() { Bindings::new() } else { default_bindings(tree, log) };
        let q = lower_query(tree, &defaults).map_err(|e| MapError::Lower(e.to_string()))?;
        let result = catalog.execute(&q).map_err(|e| MapError::Engine(e.to_string()))?;
        let fields = analyze(&result);
        analyses.push(TreeAnalysis { result, fields, choices: choices(tree) });
    }

    let charts_base: Vec<Chart> = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let (mark, encodings) = choose_chart(&a.fields);
            Chart {
                id: i,
                name: format!("G{}", i + 1),
                title: chart_title(&encodings, &a.fields),
                mark,
                encodings,
                tree: i,
                interactions: Vec::new(),
            }
        })
        .collect();

    let mut out = Vec::new();
    let modes: &[bool] = if cfg.enumerate_variants { &[true, false] } else { &[true] };
    for &viz_interactions in modes {
        let (charts, widgets) =
            map_interactions(forest, &analyses, charts_base.clone(), viz_interactions);
        for layout in layout_variants(&charts, &widgets, cfg.screen) {
            let iface = Interface {
                charts: charts.clone(),
                widgets: widgets.clone(),
                layout,
                screen: cfg.screen,
            };
            if !out.contains(&iface) {
                out.push(iface);
            }
        }
    }
    Ok(out)
}

/// 𝕍: choose a mark and encodings from the output field schema. Public
/// because the Lux-style baseline uses the same recommendation heuristic
/// on single results.
pub fn choose_chart(fields: &[FieldInfo]) -> (Mark, Vec<Encoding>) {
    let enc = |f: &FieldInfo, channel| Encoding {
        channel,
        field: f.name.clone(),
        field_type: f.field_type,
    };

    // Pick an x axis: temporal > low-cardinality nominal > ordinal > quantitative.
    let x_idx = fields
        .iter()
        .position(|f| f.field_type == FieldType::Temporal)
        .or_else(|| {
            fields.iter().position(|f| f.field_type == FieldType::Nominal && f.distinct <= 30)
        })
        .or_else(|| fields.iter().position(|f| f.field_type == FieldType::Ordinal))
        .or_else(|| fields.iter().position(|f| f.field_type == FieldType::Quantitative));
    let Some(x_idx) = x_idx else {
        return (Mark::Table, fields.iter().map(|f| enc(f, Channel::Detail)).collect());
    };
    let x = &fields[x_idx];

    // Pick a y axis: a quantitative field other than x; aggregates over
    // small domains classify as ordinal, so fall back to any numeric field.
    let y_idx = fields
        .iter()
        .enumerate()
        .position(|(i, f)| i != x_idx && f.field_type == FieldType::Quantitative)
        .or_else(|| {
            fields.iter().enumerate().position(|(i, f)| {
                i != x_idx
                    && matches!(
                        f.data_type,
                        pi2_engine::DataType::Int | pi2_engine::DataType::Float
                    )
            })
        });
    let Some(y_idx) = y_idx else {
        return (Mark::Table, fields.iter().map(|f| enc(f, Channel::Detail)).collect());
    };
    let y = &fields[y_idx];

    // Color: a remaining small nominal/ordinal field.
    let color_idx = fields.iter().enumerate().position(|(i, f)| {
        i != x_idx
            && i != y_idx
            && matches!(f.field_type, FieldType::Nominal | FieldType::Ordinal)
            && f.distinct <= 12
    });

    // A second nominal axis with a quantitative value → heatmap.
    if x.field_type == FieldType::Nominal {
        if let Some(n2) = fields.iter().enumerate().position(|(i, f)| {
            i != x_idx && i != y_idx && f.field_type == FieldType::Nominal && f.distinct <= 30
        }) {
            return (
                Mark::Heatmap,
                vec![enc(x, Channel::X), enc(&fields[n2], Channel::Y), enc(y, Channel::Color)],
            );
        }
    }

    let mark = match x.field_type {
        FieldType::Temporal => Mark::Line,
        FieldType::Nominal | FieldType::Ordinal => Mark::Bar,
        FieldType::Quantitative => Mark::Scatter,
    };
    let mut encodings = vec![enc(x, Channel::X), enc(y, Channel::Y)];
    if let Some(ci) = color_idx {
        encodings.push(enc(&fields[ci], Channel::Color));
    }
    (mark, encodings)
}

fn chart_title(encodings: &[Encoding], fields: &[FieldInfo]) -> String {
    let x = encodings.iter().find(|e| e.channel == Channel::X);
    let y = encodings.iter().find(|e| e.channel == Channel::Y);
    match (x, y) {
        (Some(x), Some(y)) => {
            let color = encodings.iter().find(|e| e.channel == Channel::Color);
            match color {
                Some(c) => format!("{} by {} per {}", y.field, x.field, c.field),
                None => format!("{} by {}", y.field, x.field),
            }
        }
        _ => {
            let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            names.join(", ")
        }
    }
}

/// 𝕄: assign each choice node to an interaction.
fn map_interactions(
    forest: &DiffForest,
    analyses: &[TreeAnalysis],
    mut charts: Vec<Chart>,
    prefer_viz: bool,
) -> (Vec<Chart>, Vec<Widget>) {
    let mut widgets: Vec<Widget> = Vec::new();
    let mut consumed: HashSet<Target> = HashSet::new();
    let mut widget_id = 0;
    let mut push_widget =
        |widgets: &mut Vec<Widget>, label: String, kind: WidgetKind, targets: Vec<Target>| {
            widgets.push(Widget { id: widget_id, label, kind, targets });
            widget_id += 1;
        };

    for (ti, analysis) in analyses.iter().enumerate() {
        for c in &analysis.choices {
            let target = Target { tree: ti, node: c.id };
            if consumed.contains(&target) {
                continue;
            }
            match &c.kind {
                ChoiceKind::Hole { domain, source_column } => {
                    // Range pair? Handle once, from the low endpoint.
                    if let Some(role) = &c.context.range_role {
                        if !role.is_low {
                            continue; // handled from the low end
                        }
                        let partner = Target { tree: ti, node: role.partner };
                        let col = &role.column.column;
                        consumed.insert(target);
                        consumed.insert(partner);

                        // Visualization interactions emit values from a
                        // continuous gesture, so they require a continuous
                        // hole domain (the generalize-hole-domain rule
                        // produces one); otherwise fall through to widgets.
                        if prefer_viz && domain.is_continuous() {
                            // Another chart's x axis → linked brush (the
                            // paper's V1: brushing the overview configures
                            // the detail view). The host is the chart whose
                            // x axis spans the widest extent — the overview
                            // — with row count as the tie breaker.
                            let mut best: Option<(usize, (f64, usize))> = None;
                            for (ci, chart) in charts.iter().enumerate() {
                                if ci == ti {
                                    continue;
                                }
                                if axis_field(chart, Channel::X)
                                    .is_some_and(|f| f.eq_ignore_ascii_case(col))
                                {
                                    let extent = x_extent(chart, &analyses[chart.tree]);
                                    let rows = analyses[chart.tree].result.len();
                                    if best.is_none_or(|(_, (e, r))| {
                                        extent > e || (extent == e && rows > r)
                                    }) {
                                        best = Some((ci, (extent, rows)));
                                    }
                                }
                            }
                            if let Some((ci, _)) = best {
                                charts[ci].interactions.push(VizInteraction::BrushX {
                                    field: col.clone(),
                                    low: target,
                                    high: partner,
                                });
                                continue;
                            }
                            // Own chart's axis → pan/zoom (Figure 1c). A
                            // second pair on an occupied axis falls through
                            // to the range-slider fallback.
                            let own = charts[ti].clone();
                            if axis_field(&own, Channel::X)
                                .is_some_and(|f| f.eq_ignore_ascii_case(col))
                                && attach_panzoom(&mut charts[ti], true, (target, partner), col)
                            {
                                continue;
                            }
                            if axis_field(&own, Channel::Y)
                                .is_some_and(|f| f.eq_ignore_ascii_case(col))
                                && attach_panzoom(&mut charts[ti], false, (target, partner), col)
                            {
                                continue;
                            }
                        }
                        // Fall back to a range slider.
                        if let Some((min, max, step, temporal)) = slider_params(domain) {
                            push_widget(
                                &mut widgets,
                                col.clone(),
                                WidgetKind::RangeSlider { min, max, step, temporal },
                                vec![target, partner],
                            );
                        } else {
                            // Discrete range endpoints: two dropdowns.
                            let options = domain_options(domain);
                            push_widget(
                                &mut widgets,
                                format!("{col} (from)"),
                                WidgetKind::Dropdown { options: options.clone() },
                                vec![target],
                            );
                            push_widget(
                                &mut widgets,
                                format!("{col} (to)"),
                                WidgetKind::Dropdown { options },
                                vec![partner],
                            );
                        }
                        continue;
                    }

                    // Single hole.
                    consumed.insert(target);
                    let label = source_column
                        .as_ref()
                        .map(|c| c.column.clone())
                        .unwrap_or_else(|| "value".to_string());
                    // Click binding: another chart's discrete x axis shows
                    // this column (Figure 5).
                    if prefer_viz {
                        if let Some(col) = source_column {
                            let click_chart = charts.iter().position(|chart| {
                                chart.tree != ti
                                    && chart.mark == Mark::Bar
                                    && axis_field(chart, Channel::X)
                                        .is_some_and(|f| f.eq_ignore_ascii_case(&col.column))
                                    && x_values_in_domain(chart, &analyses[chart.tree], domain)
                            });
                            if let Some(ci) = click_chart {
                                charts[ci].interactions.push(VizInteraction::ClickBind {
                                    field: col.column.clone(),
                                    target,
                                });
                                continue;
                            }
                        }
                    }
                    match domain {
                        Domain::Discrete(items) => {
                            let options: Vec<String> = items.iter().map(option_label).collect();
                            let kind = match options.len() {
                                0..=3 => WidgetKind::ButtonGroup { options },
                                4..=7 => WidgetKind::Radio { options },
                                _ => WidgetKind::Dropdown { options },
                            };
                            push_widget(&mut widgets, label, kind, vec![target]);
                        }
                        d => {
                            if let Some((min, max, step, temporal)) = slider_params(d) {
                                push_widget(
                                    &mut widgets,
                                    label,
                                    WidgetKind::Slider { min, max, step, temporal },
                                    vec![target],
                                );
                            } else {
                                push_widget(
                                    &mut widgets,
                                    label,
                                    WidgetKind::TextInput,
                                    vec![target],
                                );
                            }
                        }
                    }
                }
                ChoiceKind::Any { options } => {
                    consumed.insert(target);
                    let label = c
                        .context
                        .compared_column
                        .as_ref()
                        .map(|col| col.column.clone())
                        .unwrap_or_else(|| clause_label(c.context.clause).to_string());
                    let kind = if c.context.clause == Clause::Root {
                        WidgetKind::Tabs { options: options.clone() }
                    } else {
                        match options.len() {
                            0..=3 => WidgetKind::ButtonGroup { options: options.clone() },
                            4..=7 => WidgetKind::Radio { options: options.clone() },
                            _ => WidgetKind::Dropdown { options: options.clone() },
                        }
                    };
                    push_widget(&mut widgets, label, kind, vec![target]);
                }
                ChoiceKind::Opt { summary } => {
                    consumed.insert(target);
                    // Optional IN-list members group into one multi-select
                    // (the SUBSET choice): collect every sibling OPT of the
                    // same list.
                    if let Some(group) = c.context.in_list_group {
                        let mut options = vec![summary.clone()];
                        let mut targets = vec![target];
                        for sibling in &analysis.choices {
                            if sibling.id == c.id || sibling.context.in_list_group != Some(group) {
                                continue;
                            }
                            if let ChoiceKind::Opt { summary: s2 } = &sibling.kind {
                                let t2 = Target { tree: ti, node: sibling.id };
                                if consumed.insert(t2) {
                                    options.push(s2.clone());
                                    targets.push(t2);
                                }
                            }
                        }
                        if options.len() > 1 {
                            push_widget(
                                &mut widgets,
                                c.context
                                    .compared_column
                                    .as_ref()
                                    .map(|col| col.column.clone())
                                    .unwrap_or_else(|| "include".to_string()),
                                WidgetKind::MultiSelect { options },
                                targets,
                            );
                            continue;
                        }
                    }
                    push_widget(&mut widgets, summary.clone(), WidgetKind::Toggle, vec![target]);
                }
            }
        }
    }
    let _ = forest;
    (charts, widgets)
}

fn axis_field(chart: &Chart, channel: Channel) -> Option<&str> {
    chart.encoding(channel).map(|e| e.field.as_str())
}

/// Numeric width of the chart's x-axis extent (0 for non-numeric axes).
fn x_extent(chart: &Chart, analysis: &TreeAnalysis) -> f64 {
    let Some(field) = axis_field(chart, Channel::X) else { return 0.0 };
    let Some(idx) = analysis.result.schema.index_of(field) else { return 0.0 };
    let stats = analysis.result.column_stats(idx);
    match (stats.min.as_ref().and_then(|v| v.as_f64()), stats.max.as_ref().and_then(|v| v.as_f64()))
    {
        (Some(a), Some(b)) => b - a,
        _ => 0.0,
    }
}

/// Every x value the chart displays must be inside the hole's domain, or a
/// click could produce a query the DiffTree does not express.
fn x_values_in_domain(chart: &Chart, analysis: &TreeAnalysis, domain: &Domain) -> bool {
    let Some(field) = axis_field(chart, Channel::X) else { return false };
    let Some(idx) = analysis.result.schema.index_of(field) else { return false };
    analysis.result.column(idx).filter(|v| !v.is_null()).all(|v| domain.contains(&v.to_literal()))
}

/// Attach a pan/zoom axis to the chart; `false` when the axis is already
/// taken (a second range pair on the same column must fall back to a
/// widget — stacking another PanZoom would leave a dead interaction that
/// events never reach).
fn attach_panzoom(chart: &mut Chart, is_x: bool, pair: (Target, Target), field: &str) -> bool {
    // Merge into an existing PanZoom on the same chart (ra + dec → one 2-D
    // pan/zoom, Figure 1c).
    for i in &mut chart.interactions {
        if let VizInteraction::PanZoom { x, y, x_field, y_field } = i {
            if is_x {
                if x.is_none() {
                    *x = Some(pair);
                    *x_field = Some(field.to_string());
                    return true;
                }
            } else if y.is_none() {
                *y = Some(pair);
                *y_field = Some(field.to_string());
                return true;
            }
            return false;
        }
    }
    let (x, y, x_field, y_field) = if is_x {
        (Some(pair), None, Some(field.to_string()), None)
    } else {
        (None, Some(pair), None, Some(field.to_string()))
    };
    chart.interactions.push(VizInteraction::PanZoom { x, y, x_field, y_field });
    true
}

fn clause_label(clause: Clause) -> &'static str {
    match clause {
        Clause::Projection => "measure",
        Clause::From => "source",
        Clause::Where => "filter",
        Clause::GroupBy => "group by",
        Clause::Having => "having",
        Clause::OrderBy => "order",
        Clause::Limit => "limit",
        Clause::On => "join",
        Clause::Root => "query",
    }
}

/// Convert a continuous domain into slider parameters
/// `(min, max, step, temporal)` in f64 space (dates use day numbers).
fn slider_params(domain: &Domain) -> Option<(f64, f64, f64, bool)> {
    match domain {
        Domain::IntRange { min, max } => {
            let (a, b) = (*min as f64, *max as f64);
            Some((a, b, ((b - a) / 100.0).max(1.0).floor(), false))
        }
        Domain::FloatRange { min, max } => {
            let (a, b) = (min.0, max.0);
            Some((a, b, ((b - a) / 100.0).max(f64::EPSILON), false))
        }
        Domain::DateRange { min, max } => Some((min.0 as f64, max.0 as f64, 1.0, true)),
        Domain::Discrete(_) => None,
    }
}

fn domain_options(domain: &Domain) -> Vec<String> {
    match domain {
        Domain::Discrete(items) => items.iter().map(option_label).collect(),
        _ => Vec::new(),
    }
}

/// Display label for a discrete option: strings drop their SQL quotes.
pub fn option_label(l: &pi2_sql::Literal) -> String {
    match l {
        pi2_sql::Literal::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// 𝕃: enumerate layout candidates for the screen.
fn layout_variants(charts: &[Chart], widgets: &[Widget], screen: ScreenSpec) -> Vec<Layout> {
    let widget_panel = (!widgets.is_empty()).then(|| {
        Layout::Vertical(widgets.iter().map(|w| Layout::Leaf(Element::Widget(w.id))).collect())
    });
    let chart_leaves: Vec<Layout> =
        charts.iter().map(|c| Layout::Leaf(Element::Chart(c.id))).collect();

    let mut chart_arrangements: Vec<Layout> = Vec::new();
    if charts.len() == 1 {
        chart_arrangements.push(chart_leaves[0].clone());
    } else {
        chart_arrangements.push(Layout::Horizontal(chart_leaves.clone()));
        chart_arrangements.push(Layout::Vertical(chart_leaves.clone()));
        // Grid: rows of `per_row` charts.
        let per_row = ((screen.width / 420).max(1) as usize).min(charts.len());
        if per_row > 1 && per_row < charts.len() {
            let rows: Vec<Layout> =
                chart_leaves.chunks(per_row).map(|row| Layout::Horizontal(row.to_vec())).collect();
            chart_arrangements.push(Layout::Vertical(rows));
        }
    }

    let mut out = Vec::new();
    for arr in chart_arrangements {
        let layout = match &widget_panel {
            Some(panel) => Layout::Vertical(vec![panel.clone(), arr]),
            None => arr,
        };
        if !out.contains(&layout) {
            out.push(layout);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_difftree::rules::all_rules;

    fn forest_of(sqls: &[&str]) -> DiffForest {
        let queries: Vec<pi2_sql::Query> =
            sqls.iter().map(|s| pi2_sql::parse_query(s).unwrap()).collect();
        DiffForest::fully_merged(&queries)
    }

    /// Apply collapse-literal + generalize-domain rules until fixpoint, so
    /// literal ANYs become holes with continuous domains (the pipeline
    /// state the interaction mapper exploits).
    fn prepare(forest: &mut DiffForest, catalog: &pi2_engine::Catalog) {
        let rules = all_rules(Some(catalog.clone()));
        for tree in &mut forest.trees {
            loop {
                let mut progressed = false;
                for rule in &rules {
                    if ["collapse-literal-any", "generalize-hole-domain"].contains(&rule.name()) {
                        while let Some(&loc) = rule.applications(tree).first() {
                            if let Some(next) = rule.apply(tree, loc) {
                                *tree = next;
                                progressed = true;
                            } else {
                                break;
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
    }

    #[test]
    fn sdss_region_queries_map_to_panzoom() {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 500, seed: 1 });
        let queries = pi2_datasets::sdss::demo_queries();
        let mut forest = DiffForest::fully_merged(&queries);
        prepare(&mut forest, &catalog);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let best = &ifaces[0];
        assert_eq!(best.charts.len(), 1);
        assert_eq!(best.charts[0].mark, Mark::Scatter);
        // ra and dec ranges should fold into one 2-D pan/zoom (Figure 1c).
        let pz: Vec<_> = best.charts[0]
            .interactions
            .iter()
            .filter(|i| matches!(i, VizInteraction::PanZoom { .. }))
            .collect();
        assert_eq!(pz.len(), 1, "{:?}", best.charts[0].interactions);
        let VizInteraction::PanZoom { x, y, .. } = pz[0] else { unreachable!() };
        assert!(x.is_some() && y.is_some());
        assert!(best.widgets.is_empty(), "{:?}", best.widgets);
    }

    #[test]
    fn covid_overview_detail_maps_to_linked_brush() {
        let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
            state_limit: Some(8),
            ..Default::default()
        });
        // Q1 overview + Q2/Q2b detail windows → two trees: overview chart
        // brushes the detail chart's date range (paper V1).
        let queries = pi2_datasets::covid::demo_queries_step(3);
        let overview = DiffForest::singletons(&queries[..1]);
        let detail = DiffForest::fully_merged(&queries[1..3]);
        let mut forest =
            DiffForest { trees: vec![overview.trees[0].clone(), detail.trees[0].clone()] };
        prepare(&mut forest, &catalog);

        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let best = &ifaces[0];
        assert_eq!(best.charts.len(), 2);
        // The overview chart (tree 0) carries a brush driving tree 1's holes.
        let brushes: Vec<_> = best.charts[0]
            .interactions
            .iter()
            .filter(|i| matches!(i, VizInteraction::BrushX { .. }))
            .collect();
        assert_eq!(brushes.len(), 1, "{:#?}", best.charts);
        let VizInteraction::BrushX { low, high, field } = brushes[0] else { unreachable!() };
        assert_eq!(field, "date");
        assert_eq!(low.tree, 1);
        assert_eq!(high.tree, 1);
    }

    #[test]
    fn widgets_only_variant_uses_range_slider() {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 300, seed: 1 });
        let queries = pi2_datasets::sdss::demo_queries();
        let mut forest = DiffForest::fully_merged(&queries);
        prepare(&mut forest, &catalog);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        // Some variant should use range sliders instead of pan/zoom.
        let slider_variant = ifaces
            .iter()
            .find(|i| i.widgets.iter().any(|w| matches!(w.kind, WidgetKind::RangeSlider { .. })));
        assert!(slider_variant.is_some(), "{} variants", ifaces.len());
    }

    #[test]
    fn opt_maps_to_toggle_and_any_to_buttons() {
        let catalog = pi2_datasets::toy::default_catalog();
        let forest = forest_of(&[
            "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
            "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
            "SELECT a, count(*) FROM t GROUP BY a",
        ]);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let best = &ifaces[0];
        let kinds: Vec<&str> = best.widgets.iter().map(|w| w.kind.kind_name()).collect();
        assert!(kinds.contains(&"toggle"), "{kinds:?}");
        assert!(kinds.contains(&"button-group"), "{kinds:?}");
    }

    #[test]
    fn fig5_click_binding_on_bar_chart() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig5_queries();
        // Two trees: Q1+Q2 merged (literal-only diff), Q3 separate.
        let merged = DiffForest::fully_merged(&queries[..2]);
        let q3 = DiffForest::singletons(&queries[2..]);
        let mut forest = DiffForest { trees: vec![merged.trees[0].clone(), q3.trees[0].clone()] };
        prepare(&mut forest, &catalog);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let best = &ifaces[0];
        // Q3's bar chart (x = a) should carry a click binding driving the
        // literal hole in tree 0.
        let clicks: Vec<_> = best
            .charts
            .iter()
            .flat_map(|c| &c.interactions)
            .filter(|i| matches!(i, VizInteraction::ClickBind { .. }))
            .collect();
        assert_eq!(clicks.len(), 1, "{:#?}", best.charts);
        let VizInteraction::ClickBind { field, target } = clicks[0] else { unreachable!() };
        assert_eq!(field, "a");
        assert_eq!(target.tree, 0);
    }

    #[test]
    fn single_static_query_maps_to_chart_without_interactions() {
        let catalog = pi2_datasets::toy::default_catalog();
        let forest = forest_of(&["SELECT a, count(*) FROM t GROUP BY a"]);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let best = &ifaces[0];
        assert_eq!(best.charts.len(), 1);
        assert_eq!(best.charts[0].mark, Mark::Bar);
        assert!(best.widgets.is_empty());
        assert_eq!(best.interaction_count(), 0);
    }

    #[test]
    fn layout_variants_for_multi_chart() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let forest = DiffForest::singletons(&queries);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        // Horizontal + vertical variants at least.
        assert!(ifaces.len() >= 2);
        let layouts: HashSet<String> = ifaces.iter().map(|i| format!("{:?}", i.layout)).collect();
        assert!(layouts.len() >= 2);
    }

    #[test]
    fn two_nominal_axes_map_to_heatmap() {
        let catalog = pi2_datasets::covid::catalog(&pi2_datasets::covid::Config {
            state_limit: Some(6),
            ..Default::default()
        });
        let forest = forest_of(&[
            "SELECT r.region, c.state, sum(c.cases) AS cases FROM covid c              JOIN regions r ON c.state = r.state GROUP BY r.region, c.state",
        ]);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let chart = &ifaces[0].charts[0];
        assert_eq!(chart.mark, Mark::Heatmap, "{chart:?}");
        assert!(chart.encoding(Channel::Color).is_some());
    }

    #[test]
    fn root_any_maps_to_tabs() {
        // Two queries whose Query nodes differ (DISTINCT flag) merge to an
        // ANY over whole queries — the tab-strip case.
        let catalog = pi2_datasets::toy::default_catalog();
        let forest =
            forest_of(&["SELECT a, count(*) FROM t GROUP BY a", "SELECT DISTINCT p FROM t"]);
        assert!(matches!(forest.trees[0].root.kind, pi2_difftree::NodeKind::Any));
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        let tabs = ifaces[0].widgets.iter().find(|w| matches!(w.kind, WidgetKind::Tabs { .. }));
        assert!(tabs.is_some(), "{:?}", ifaces[0].widgets);
    }

    #[test]
    fn empty_forest_is_error() {
        let catalog = pi2_datasets::toy::default_catalog();
        let forest = DiffForest { trees: vec![] };
        assert!(map_forest(&forest, &catalog, &[], &MapperConfig::default()).is_err());
    }

    #[test]
    fn non_aggregate_wide_result_falls_back_to_table() {
        let catalog = pi2_datasets::sp500::catalog(&pi2_datasets::sp500::Config::default());
        let forest = forest_of(&["SELECT ticker, name, sector FROM companies"]);
        let ifaces = map_forest(&forest, &catalog, &[], &MapperConfig::default()).unwrap();
        assert_eq!(ifaces[0].charts[0].mark, Mark::Table);
    }
}
