#![warn(missing_docs)]

//! # pi2-interface
//!
//! The interface model and the DiffTree→interface mapper.
//!
//! An interface mapping 𝕀 = (𝕍, 𝕄, 𝕃) (paper §2) consists of a
//! *Visualization Mapping* 𝕍 from DiffTree results to charts, an
//! *Interaction Mapping* 𝕄 from choice nodes to interactions (widgets and
//! in-visualization interactions), and a *Layout Mapping* 𝕃 from interface
//! structure to a screen layout. This crate defines the target model
//! ([`model`]) and implements all three mappings as schema matching
//! ([`mapper`]): each choice node exposes a choice schema (value type,
//! domain shape, constrained column, range pairing) that is matched against
//! widget and interaction capability schemas; each query result exposes a
//! field schema matched against chart encoding requirements.
//!
//! ```
//! use pi2_difftree::DiffForest;
//! use pi2_interface::{map_forest, MapperConfig, Mark};
//!
//! let catalog = pi2_datasets::toy::default_catalog();
//! let q = pi2_sql::parse_query("SELECT a, count(*) FROM t GROUP BY a").unwrap();
//! let forest = DiffForest::singletons(std::slice::from_ref(&q));
//! let candidates = map_forest(&forest, &catalog, &[q], &MapperConfig::default()).unwrap();
//! assert_eq!(candidates[0].charts[0].mark, Mark::Bar);
//! ```

pub mod mapper;
pub mod model;
pub mod schema;

pub use mapper::{choose_chart, map_forest, MapError, MapperConfig};
pub use model::*;
pub use schema::{analyze, classify_field, FieldInfo};
