//! Result-schema analysis: classify output fields into visualization field
//! types using engine types plus cardinality statistics.

use crate::model::FieldType;
use pi2_engine::{ColumnStats, DataType, ResultSet};
use serde::{Deserialize, Serialize};

/// A result field with its visualization classification and statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldInfo {
    /// The name.
    pub name: String,
    /// The column's data type.
    pub data_type: DataType,
    /// Visualization field type (quantitative/nominal/ordinal/temporal).
    pub field_type: FieldType,
    /// Number of distinct non-NULL values.
    pub distinct: usize,
    /// Number of NULL values.
    pub nulls: usize,
    /// Total number of rows analyzed.
    pub rows: usize,
}

/// Classify one output field. The rules follow standard visualization
/// practice: dates are temporal; strings and booleans are nominal; numeric
/// fields with very few distinct values behave ordinally (they make good
/// discrete axes); other numerics are quantitative.
pub fn classify_field(stats: &ColumnStats) -> FieldType {
    match stats.data_type {
        DataType::Date => FieldType::Temporal,
        DataType::Str | DataType::Bool => FieldType::Nominal,
        DataType::Int | DataType::Float => {
            if stats.distinct_count <= 12
                && stats.distinct_count > 0
                && stats.data_type == DataType::Int
            {
                FieldType::Ordinal
            } else {
                FieldType::Quantitative
            }
        }
        DataType::Null => FieldType::Nominal,
    }
}

/// Analyze every output column of a result set.
pub fn analyze(result: &ResultSet) -> Vec<FieldInfo> {
    (0..result.schema.len())
        .map(|i| {
            let stats = result.column_stats(i);
            FieldInfo {
                name: stats.name.clone(),
                data_type: stats.data_type,
                field_type: classify_field(&stats),
                distinct: stats.distinct_count,
                nulls: stats.null_count,
                rows: stats.row_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_engine::{Catalog, Table, Value};

    #[test]
    fn classifies_covid_fields() {
        let mut c = Catalog::new();
        let mut t = Table::builder("t")
            .column("date", DataType::Date)
            .column("state", DataType::Str)
            .column("cases", DataType::Int)
            .build();
        for i in 0..40 {
            t.push_row(vec![
                Value::Date(pi2_sql::Date(i)),
                Value::str(if i % 2 == 0 { "NY" } else { "FL" }),
                Value::Int(i as i64 * 17 + 3),
            ])
            .unwrap();
        }
        c.register(t);
        let r = c.execute_sql("SELECT date, state, cases FROM t").unwrap();
        let fields = analyze(&r);
        assert_eq!(fields[0].field_type, FieldType::Temporal);
        assert_eq!(fields[1].field_type, FieldType::Nominal);
        assert_eq!(fields[2].field_type, FieldType::Quantitative);
    }

    #[test]
    fn small_int_domain_is_ordinal() {
        let c = pi2_datasets::toy::default_catalog();
        let r = c.execute_sql("SELECT p, count(*) AS n FROM t GROUP BY p").unwrap();
        let fields = analyze(&r);
        assert_eq!(fields[0].field_type, FieldType::Ordinal, "{fields:?}");
    }
}
