//! Error-path tests for [`InterfaceSession::dispatch`]: every rejected
//! event must surface the *specific* `SessionError` variant the API
//! documents, so notebook frontends can map errors to UI affordances
//! (disable a widget vs. flag a bug) without string matching.

use pi2_core::{Event, Pi2, SearchStrategy, SessionError, WidgetValue};
use pi2_interface::WidgetKind;

/// Full-merge over the Figure 3 pair forces `ANY(a = 1, b = 2)` into the
/// tree, so the interface reliably carries an options widget to probe.
fn toy_session() -> (pi2_core::GeneratedInterface, pi2_core::InterfaceSession) {
    let catalog = pi2_datasets::toy::default_catalog();
    let pi2 = Pi2::builder(catalog.clone()).strategy(SearchStrategy::FullMerge).build();
    let generated = pi2.generate(&pi2_datasets::toy::fig3_queries()).expect("generation succeeds");
    let session = generated.session(&catalog);
    (generated, session)
}

/// An id that collides with no widget and no chart in the interface.
fn unused_id(g: &pi2_core::GeneratedInterface) -> usize {
    let max_widget = g.interface.widgets.iter().map(|w| w.id).max().unwrap_or(0);
    let max_chart = g.interface.charts.iter().map(|c| c.id).max().unwrap_or(0);
    max_widget.max(max_chart) + 1000
}

#[test]
fn set_widget_on_nonexistent_widget_is_unknown_widget() {
    let (generated, mut session) = toy_session();
    let bogus = unused_id(&generated);
    let err = session
        .dispatch(Event::SetWidget { widget: bogus, value: WidgetValue::Pick(0) })
        .expect_err("nonexistent widget must be rejected");
    assert!(
        matches!(err, SessionError::UnknownWidget(id) if id == bogus),
        "expected UnknownWidget({bogus}), got {err:?}"
    );
}

#[test]
fn query_for_unknown_chart_is_unknown_chart() {
    let (generated, session) = toy_session();
    let bogus = unused_id(&generated);
    let err = session.query_for_chart(bogus).expect_err("nonexistent chart must be rejected");
    assert!(
        matches!(err, SessionError::UnknownChart(id) if id == bogus),
        "expected UnknownChart({bogus}), got {err:?}"
    );
}

#[test]
fn brush_on_unknown_chart_is_unknown_chart() {
    let (generated, mut session) = toy_session();
    let bogus = unused_id(&generated);
    let err = session
        .dispatch(Event::Brush { chart: bogus, low: 0.0, high: 1.0 })
        .expect_err("brush on nonexistent chart must be rejected");
    assert!(
        matches!(err, SessionError::UnknownChart(id) if id == bogus),
        "expected UnknownChart({bogus}), got {err:?}"
    );
}

#[test]
fn out_of_range_pick_is_wrong_value() {
    let (generated, mut session) = toy_session();
    // Figure 3's merged tree carries ANY(a = 1, b = 2), mapped to an
    // options widget; picking past its option count is a value-shape error.
    let (id, len) = generated
        .interface
        .widgets
        .iter()
        .find_map(|w| match &w.kind {
            WidgetKind::Radio { options }
            | WidgetKind::ButtonGroup { options }
            | WidgetKind::Dropdown { options }
            | WidgetKind::Tabs { options } => Some((w.id, options.len())),
            _ => None,
        })
        .expect("fig3 interface has an options widget");
    let err = session
        .dispatch(Event::SetWidget { widget: id, value: WidgetValue::Pick(len) })
        .expect_err("out-of-range pick must be rejected");
    assert!(matches!(err, SessionError::WrongValue(_)), "expected WrongValue, got {err:?}");
    // The session survives the rejected event: a valid pick still works.
    session
        .dispatch(Event::SetWidget { widget: id, value: WidgetValue::Pick(len - 1) })
        .expect("valid pick after rejected pick");
}

#[test]
fn mismatched_value_shape_is_wrong_value() {
    let (generated, mut session) = toy_session();
    let id = generated
        .interface
        .widgets
        .iter()
        .find(|w| {
            matches!(
                w.kind,
                WidgetKind::Radio { .. }
                    | WidgetKind::ButtonGroup { .. }
                    | WidgetKind::Dropdown { .. }
                    | WidgetKind::Tabs { .. }
            )
        })
        .map(|w| w.id)
        .expect("fig3 interface has an options widget");
    // A Range delivered to an options widget is the wrong value shape.
    let err = session
        .dispatch(Event::SetWidget { widget: id, value: WidgetValue::Range(0.0, 1.0) })
        .expect_err("range on an options widget must be rejected");
    assert!(matches!(err, SessionError::WrongValue(_)), "expected WrongValue, got {err:?}");
}
