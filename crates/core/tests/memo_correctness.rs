//! Cache-correctness property: for arbitrary reachable forests, the
//! memoized `best_choice` outcome is indistinguishable from a fresh,
//! unmemoized computation — same winning interface, same cost breakdown,
//! same candidate count — and stable across repeated lookups.

use pi2_core::InterfaceSearch;
use pi2_cost::{choose_best, CostWeights};
use pi2_interface::{map_forest, MapperConfig};
use pi2_mcts::SearchProblem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn memoized_cost_equals_fresh_cost(walk in proptest::collection::vec(0usize..1000, 0..6)) {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let search = InterfaceSearch::new(
            &queries,
            &catalog,
            MapperConfig::default(),
            CostWeights::default(),
        );

        // Random walk through the action space: arbitrary interleavings of
        // merges, splits, and rules produce arbitrary reachable forests.
        let mut state = search.initial();
        for pick in &walk {
            let actions = search.actions(&state);
            if actions.is_empty() {
                break;
            }
            if let Some(next) = search.apply(&state, &actions[pick % actions.len()]) {
                state = next;
            }
        }

        let memoized = search.best_choice(&state);

        // Fresh computation, bypassing the memo entirely.
        let fresh = map_forest(&state, &catalog, &queries, &MapperConfig::default())
            .ok()
            .and_then(|candidates| {
                choose_best(&candidates, &state, &queries, &catalog, &CostWeights::default())
                    .map(|(idx, breakdown)| (candidates[idx].clone(), breakdown, candidates.len()))
            });

        match (&memoized, &fresh) {
            (None, None) => {}
            (Some(m), Some((iface, breakdown, n))) => {
                prop_assert_eq!(&m.interface, iface);
                prop_assert_eq!(&m.breakdown, breakdown);
                prop_assert_eq!(m.candidates_considered, *n);
            }
            _ => prop_assert!(
                false,
                "memoized success={} but fresh success={}",
                memoized.is_some(),
                fresh.is_some()
            ),
        }

        // A repeated lookup hits the cache and returns the same entry.
        let again = search.best_choice(&state);
        prop_assert_eq!(memoized.is_some(), again.is_some());
        if let (Some(a), Some(b)) = (memoized, again) {
            prop_assert_eq!(&a.breakdown, &b.breakdown);
            prop_assert_eq!(&a.interface, &b.interface);
        }
        prop_assert!(search.memo().hits() >= 1);
    }
}
