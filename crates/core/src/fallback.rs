//! Deterministic no-search fallback: one static chart per input query.
//!
//! This is the floor the pipeline degrades to when search fails outright
//! (every worker panicked) or produces nothing expressive: a singleton
//! DiffTree per query — which expresses its source query by construction —
//! with a per-result chart recommendation. No search, no widgets, no
//! cross-query merging; the result is always valid and always expressive,
//! just not optimized.

use pi2_cost::{cost, CostBreakdown, CostWeights};
use pi2_difftree::DiffForest;
use pi2_engine::Catalog;
use pi2_interface::{analyze, choose_chart, Chart, Element, Interface, Layout, Mark, ScreenSpec};
use pi2_sql::Query;

/// Build the fallback interface for `queries`.
///
/// Tolerates query execution failures (including engine resource limits):
/// a query whose result cannot be materialized still gets a chart — a bare
/// table mark with no encodings — so the returned forest/interface pair
/// expresses every input query no matter what the engine does.
pub(crate) fn fallback_interface(
    queries: &[Query],
    catalog: &Catalog,
    screen: ScreenSpec,
    weights: &CostWeights,
) -> (DiffForest, Interface, CostBreakdown) {
    let forest = DiffForest::singletons(queries);
    let mut charts = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let (mark, encodings) = match catalog.execute(q) {
            Ok(result) => choose_chart(&analyze(&result)),
            Err(_) => (Mark::Table, Vec::new()),
        };
        charts.push(Chart {
            id: i,
            name: format!("G{}", i + 1),
            title: format!("query {}", i + 1),
            mark,
            encodings,
            tree: i,
            interactions: vec![],
        });
    }
    let layout =
        Layout::Vertical(charts.iter().map(|c| Layout::Leaf(Element::Chart(c.id))).collect());
    let interface = Interface { charts, widgets: vec![], layout, screen };
    let breakdown = cost(&interface, &forest, queries, catalog, weights);
    (forest, interface, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_cost::CostWeights;
    use pi2_interface::ScreenSpec;

    #[test]
    fn fallback_expresses_every_query() {
        let catalog = pi2_datasets::toy::default_catalog();
        let queries = pi2_datasets::toy::fig2_queries();
        let (forest, interface, _) =
            fallback_interface(&queries, &catalog, ScreenSpec::default(), &CostWeights::default());
        assert!(forest.expresses_all(&queries));
        assert_eq!(interface.charts.len(), queries.len());
    }

    #[test]
    fn fallback_tolerates_execution_failure() {
        // Row limit 0 makes every execution fail; the fallback must still
        // produce a chart per query.
        let mut catalog = pi2_datasets::toy::default_catalog();
        catalog.set_limits(pi2_engine::ExecLimits::rows(0));
        let queries = pi2_datasets::toy::fig2_queries();
        let (forest, interface, _) =
            fallback_interface(&queries, &catalog, ScreenSpec::default(), &CostWeights::default());
        assert!(forest.expresses_all(&queries));
        assert_eq!(interface.charts.len(), queries.len());
        assert!(interface.charts.iter().all(|c| c.mark == Mark::Table));
    }
}
