//! Human-readable explanations of a generation result: why each chart,
//! widget, and interaction was chosen. The original demo communicates this
//! visually; a library wants it as text (and it makes review of the
//! generator's decisions scriptable).

use crate::pipeline::GeneratedInterface;
use pi2_difftree::{choices, Choice, ChoiceKind, NodeId};
use pi2_interface::{Channel, VizInteraction};
use std::fmt::Write as _;

impl GeneratedInterface {
    /// A multi-line explanation of the generated interface: the forest
    /// partition, each chart's visualization rationale, and what every
    /// widget and interaction binds to.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Generated from {} queries in {:?} (search: {}); total cost {:.3}.",
            self.queries.len(),
            self.stats.elapsed,
            match &self.stats.search {
                Some(s) => format!(
                    "{} iterations, {} states costed, best at iteration {}",
                    s.iterations, s.states_evaluated, s.best_at_iteration
                ),
                None => "none (full merge)".to_string(),
            },
            self.cost.total,
        );

        // The partition.
        let _ = writeln!(out, "\nQuery partition ({} tree(s)):", self.forest.trees.len());
        let per_tree_choices: Vec<Vec<Choice>> = self.forest.trees.iter().map(choices).collect();
        for (i, tree) in self.forest.trees.iter().enumerate() {
            let covered: Vec<String> =
                tree.source_queries.iter().map(|q| format!("Q{}", q + 1)).collect();
            let _ = writeln!(
                out,
                "  tree {}: covers {} — {} nodes, {} choice node(s)",
                i + 1,
                covered.join(", "),
                tree.root.size(),
                tree.root.choice_count(),
            );
        }

        // Charts.
        let _ = writeln!(out, "\nCharts:");
        for c in &self.interface.charts {
            let x = c.encoding(Channel::X);
            let reason = match (c.mark, x.map(|e| e.field_type)) {
                (pi2_interface::Mark::Line, _) => "temporal x axis → line",
                (pi2_interface::Mark::Bar, _) => "discrete x axis → bar",
                (pi2_interface::Mark::Scatter, _) => "two quantitative axes → scatter",
                (pi2_interface::Mark::Heatmap, _) => "two categorical axes + measure → heatmap",
                (pi2_interface::Mark::Table, _) => "no chartable field pair → table",
                (pi2_interface::Mark::Area, _) => "temporal x axis → area",
            };
            let encs: Vec<String> = c
                .encodings
                .iter()
                .map(|e| format!("{:?}={} ({:?})", e.channel, e.field, e.field_type))
                .collect();
            let _ = writeln!(
                out,
                "  {} «{}» on tree {}: {:?} because {reason}; encodings: {}",
                c.name,
                c.title,
                c.tree + 1,
                c.mark,
                encs.join(", "),
            );
            for i in &c.interactions {
                let _ = writeln!(out, "      ⚡ {}", explain_interaction(i, &per_tree_choices));
            }
        }

        // Widgets.
        if !self.interface.widgets.is_empty() {
            let _ = writeln!(out, "\nWidgets:");
            for w in &self.interface.widgets {
                let target_desc: Vec<String> = w
                    .targets
                    .iter()
                    .map(|t| describe_choice(t.tree, t.node, &per_tree_choices))
                    .collect();
                let _ = writeln!(
                    out,
                    "  [{}] «{}» drives {}",
                    w.kind.kind_name(),
                    w.label,
                    target_desc.join(" and "),
                );
            }
        }

        let _ = writeln!(
            out,
            "\nCost breakdown: viz {:.2}, interaction {:.2}, layout {:.2}, views {:.2}, generalization {:+.2}.",
            self.cost.viz, self.cost.interaction, self.cost.layout, self.cost.views, self.cost.generalization,
        );
        out
    }
}

fn describe_choice(tree: usize, node: NodeId, per_tree: &[Vec<Choice>]) -> String {
    let Some(choice) = per_tree.get(tree).and_then(|cs| cs.iter().find(|c| c.id == node)) else {
        return format!("node {node} of tree {}", tree + 1);
    };
    let what = match &choice.kind {
        ChoiceKind::Any { options } => format!("an ANY over [{}]", options.join(" | ")),
        ChoiceKind::Opt { summary } => format!("an OPT around [{summary}]"),
        ChoiceKind::Hole { domain, source_column } => format!(
            "a hole over {domain:?}{}",
            source_column.as_ref().map(|c| format!(" constraining {c}")).unwrap_or_default()
        ),
    };
    format!("{what} in the {:?} clause of tree {}", choice.context.clause, tree + 1)
}

fn explain_interaction(i: &VizInteraction, per_tree: &[Vec<Choice>]) -> String {
    match i {
        VizInteraction::BrushX { field, low, high } => format!(
            "brushing {field} binds {} / {}",
            describe_choice(low.tree, low.node, per_tree),
            describe_choice(high.tree, high.node, per_tree),
        ),
        VizInteraction::PanZoom { x_field, y_field, .. } => format!(
            "pan/zoom manipulates the {}{} range(s) of this chart's own query",
            x_field.clone().unwrap_or_default(),
            y_field.as_ref().map(|f| format!(" and {f}")).unwrap_or_default(),
        ),
        VizInteraction::ClickBind { field, target } => format!(
            "clicking a {field} mark binds {}",
            describe_choice(target.tree, target.node, per_tree),
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::{Pi2, SearchStrategy};

    #[test]
    fn explains_generated_interface() {
        let pi2 = Pi2::builder(pi2_datasets::toy::default_catalog())
            .strategy(SearchStrategy::FullMerge)
            .build();
        let g = pi2
            .generate_sql(&[
                "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
                "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
                "SELECT a, count(*) FROM t GROUP BY a",
            ])
            .unwrap();
        let text = g.explain();
        assert!(text.contains("Query partition"), "{text}");
        assert!(text.contains("covers Q1, Q2, Q3"), "{text}");
        assert!(text.contains("Widgets:"), "{text}");
        assert!(text.contains("Cost breakdown"), "{text}");
    }

    #[test]
    fn explains_viz_interactions() {
        let catalog =
            pi2_datasets::sdss::catalog(&pi2_datasets::sdss::Config { objects: 200, seed: 6 });
        let pi2 = Pi2::builder(catalog).strategy(SearchStrategy::FullMerge).build();
        let g = pi2.generate(&pi2_datasets::sdss::demo_queries()).unwrap();
        let text = g.explain();
        assert!(text.contains("pan/zoom"), "{text}");
        assert!(text.contains("scatter"), "{text}");
    }
}
