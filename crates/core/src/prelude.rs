//! One-import surface for the common PI2 path.
//!
//! Generating an interface and driving it touches types from several
//! crates (the engine's [`Catalog`], the SQL AST's [`Literal`], the
//! interface model's [`WidgetKind`], …). This module re-exports all of
//! them so applications, examples, and doctests can write
//!
//! ```
//! use pi2_core::prelude::*;
//!
//! let catalog = pi2_datasets::toy::default_catalog();
//! let pi2 = Pi2::builder(catalog).build();
//! let generated = pi2.generate_sql(&["SELECT a, count(*) FROM t GROUP BY a"]).unwrap();
//! let mut session = pi2.session(&generated);
//! assert_eq!(session.refresh_all().unwrap().len(), generated.interface.charts.len());
//! ```
//!
//! instead of importing from five crates. Only the common path lives
//! here; specialized layers (dataset builders, renderers, the search
//! internals) keep their own namespaces.

pub use crate::fleet::{FleetConfig, FleetCounters, FleetHandle, FleetOutcome};
pub use crate::pipeline::{
    DegradationLevel, GeneratedInterface, GenerationStats, Pi2, Pi2Builder, Pi2Error,
    SearchStrategy,
};
pub use crate::scene::{
    ChartPatch, DataPatch, Renderer, SceneCatchup, SceneDelta, SceneGraph, SceneNodeId, SceneState,
    WidgetPatch,
};
pub use crate::session::{
    ChartUpdate, Event, ExecMode, InterfaceSession, SessionBuilder, SessionError, SessionStats,
    WidgetState, WidgetValue,
};
pub use pi2_engine::{Catalog, EngineError, ExecLimits, ResultSet, Table, Value};
pub use pi2_interface::{ChartId, Interface, VizInteraction, Widget, WidgetId, WidgetKind};
pub use pi2_mcts::{GenerationBudget, MctsConfig};
pub use pi2_sql::{Date, Literal, Query};
